"""Command-line interface for running experiments and regenerating figures.

Installed as the ``caesar-repro`` console script::

    caesar-repro run --protocol caesar --conflicts 30 --clients 10
    caesar-repro compare --conflicts 0 10 30
    caesar-repro figure 6
    caesar-repro figure 9 --quick
    caesar-repro topology

The CLI is a thin wrapper over :mod:`repro.harness`; everything it prints can
also be produced programmatically (see ``examples/``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.harness import figures
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.figures import throughput_cost_model
from repro.harness.report import format_series
from repro.sim.batching import BatchingConfig
from repro.sim.topology import EC2_SHORT_LABELS, EC2_SITES, ec2_five_sites

#: Maps ``figure <n>`` to the driver that regenerates it.
FIGURE_DRIVERS = {
    "6": figures.figure6_latency_vs_conflicts,
    "7": figures.figure7_single_leader_comparison,
    "8": figures.figure8_client_scaling,
    "9": figures.figure9_throughput,
    "10": figures.figure10_slow_paths,
    "11": figures.figure11_breakdown,
    "12": figures.figure12_failure_timeline,
}

#: Scaled-down parameters used with ``--quick`` so every figure finishes fast.
QUICK_OVERRIDES = {
    "6": dict(conflict_rates=(0.0, 0.1, 0.3), clients_per_site=5, duration_ms=4000.0,
              warmup_ms=1000.0),
    "7": dict(clients_per_site=5, duration_ms=4000.0, warmup_ms=1000.0),
    "8": dict(client_counts=(5, 50, 250), duration_ms=3000.0, warmup_ms=1000.0),
    "9": dict(conflict_rates=(0.0, 0.1, 0.3), clients_per_site=40, duration_ms=3000.0,
              warmup_ms=1000.0),
    "10": dict(conflict_rates=(0.0, 0.1, 0.3), clients_per_site=15, duration_ms=3000.0,
               warmup_ms=1000.0),
    "11": dict(conflict_rates=(0.0, 0.1, 0.3), clients_per_site=5, duration_ms=4000.0,
               warmup_ms=1000.0),
    "12": dict(clients_per_site=10, crash_at_ms=5000.0, total_ms=12000.0),
}


def build_parser() -> argparse.ArgumentParser:
    """Create the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="caesar-repro",
        description="Reproduction of CAESAR (Speeding up Consensus by Chasing Fast "
                    "Decisions, DSN 2017) on a simulated geo-replicated substrate.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run one protocol on one workload")
    run_parser.add_argument("--protocol", default="caesar",
                            choices=["caesar", "epaxos", "multipaxos", "mencius", "m2paxos"])
    run_parser.add_argument("--conflicts", type=float, default=0.0,
                            help="percentage of conflicting commands (0-100)")
    run_parser.add_argument("--clients", type=int, default=10, help="clients per site")
    run_parser.add_argument("--duration", type=float, default=8000.0,
                            help="measured duration in simulated ms")
    run_parser.add_argument("--seed", type=int, default=1)
    run_parser.add_argument("--batching", action="store_true",
                            help="enable network message batching")
    run_parser.add_argument("--throughput", action="store_true",
                            help="use the saturation CPU cost model (throughput study)")

    compare_parser = subparsers.add_parser("compare",
                                           help="compare all protocols at given conflict rates")
    compare_parser.add_argument("--conflicts", type=float, nargs="+", default=[0.0, 10.0, 30.0])
    compare_parser.add_argument("--clients", type=int, default=10)
    compare_parser.add_argument("--duration", type=float, default=6000.0)
    compare_parser.add_argument("--seed", type=int, default=1)

    figure_parser = subparsers.add_parser("figure", help="regenerate one figure of the paper")
    figure_parser.add_argument("number", choices=sorted(FIGURE_DRIVERS, key=int),
                               help="paper figure number")
    figure_parser.add_argument("--quick", action="store_true",
                               help="use scaled-down parameters (fast, coarser numbers)")

    subparsers.add_parser("topology", help="print the simulated five-site EC2 topology")
    return parser


def _run(args: argparse.Namespace) -> str:
    config = ExperimentConfig(
        protocol=args.protocol, conflict_rate=args.conflicts / 100.0,
        clients_per_site=args.clients, duration_ms=args.duration,
        warmup_ms=min(2000.0, args.duration / 4), seed=args.seed,
        cost_model=throughput_cost_model() if args.throughput else None,
        batching=BatchingConfig() if args.batching else None)
    result = run_experiment(config)
    lines = [f"protocol:           {args.protocol}",
             f"conflict rate:      {args.conflicts:.0f}%",
             f"commands completed: {result.metrics.count}",
             f"throughput:         {result.throughput_per_second:.1f} commands/s"]
    if result.overall_latency is not None:
        lines.append(f"mean latency:       {result.overall_latency.mean:.1f} ms "
                     f"(p95 {result.overall_latency.p95:.1f} ms)")
    ratio = result.slow_path_ratio
    if ratio is not None:
        lines.append(f"slow decisions:     {ratio * 100.0:.1f}%")
    lines.append(f"per-site mean latency (ms):")
    for site in EC2_SITES:
        mean = result.site_mean_latency(site)
        if mean is not None:
            lines.append(f"  {EC2_SHORT_LABELS[site]:<3} {mean:7.1f}")
    lines.append(f"consistency violations: {result.consistency_violations}")
    return "\n".join(lines)


def _compare(args: argparse.Namespace) -> str:
    latency = {}
    slow = {}
    for protocol in ("caesar", "epaxos", "m2paxos", "mencius", "multipaxos"):
        latency[protocol] = {}
        slow[protocol] = {}
        for conflicts in args.conflicts:
            result = run_experiment(ExperimentConfig(
                protocol=protocol, conflict_rate=conflicts / 100.0,
                clients_per_site=args.clients, duration_ms=args.duration,
                warmup_ms=min(2000.0, args.duration / 4), seed=args.seed))
            key = f"{conflicts:.0f}%"
            overall = result.overall_latency
            latency[protocol][key] = overall.mean if overall else None
            ratio = result.slow_path_ratio
            slow[protocol][key] = ratio * 100.0 if ratio is not None else None
    return (format_series("Mean latency (ms) across sites", latency, "conflict")
            + "\n\n"
            + format_series("Slow-path share (%)", slow, "conflict"))


def _figure(args: argparse.Namespace) -> str:
    driver = FIGURE_DRIVERS[args.number]
    overrides = QUICK_OVERRIDES[args.number] if args.quick else {}
    result = driver(**overrides)
    return result.table


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "run":
        output = _run(args)
    elif args.command == "compare":
        output = _compare(args)
    elif args.command == "figure":
        output = _figure(args)
    elif args.command == "topology":
        output = ec2_five_sites().describe()
    else:  # pragma: no cover - argparse enforces the choices
        parser.error(f"unknown command {args.command!r}")
        return 2
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
