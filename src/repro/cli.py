"""Command-line interface for running experiments and regenerating figures.

Installed as the ``repro`` console script (``caesar-repro`` is kept as a
deprecated alias)::

    repro run --protocol caesar --conflicts 30 --clients 10
    repro compare --conflicts 0 10 30
    repro figure 6
    repro figure 9 --quick
    repro sweep 9 --workers 4
    repro sweep all --workers auto --quick
    repro shard --shards 1 2 4 --skew 0 0.99 --sites 20
    repro chaos --protocol caesar --nemesis minority-partition --seed 3
    repro chaos --matrix --quick
    repro serve --protocol caesar --replicas 3
    repro loadgen --launch 3 --clients 3 --commands 10
    repro overload --offered 200 600 1200 --admission deadline:200 --store
    repro profile 9 --quick --cells 'fig9/caesar/*'
    repro report --label overload
    repro topology

The CLI is a thin wrapper over :mod:`repro.api`: argument parsing lives here,
every config is built through its ``from_args`` classmethod, and everything
the CLI prints can also be produced programmatically (see ``examples/``).
Flags shared by several subcommands (``--protocol``, ``--seed``,
``--clients``, ``--conflicts``, ``--duration``) are declared once in
:func:`shared_flags` parent parsers, with per-subcommand defaults.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time
from typing import Optional, Sequence

from repro.harness import figures
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.report import format_protocol_stats, format_series
from repro.metrics.perf import TIMING_EXTRA_KEY, PerfRecord, write_record
from repro.sim.topology import EC2_SHORT_LABELS, EC2_SITES, ec2_five_sites

#: Every registered protocol name, in CLI display order.
PROTOCOL_CHOICES = ["caesar", "epaxos", "multipaxos", "mencius", "m2paxos"]

#: Maps ``figure <n>`` / ``sweep <n>`` to the driver that regenerates it.
FIGURE_DRIVERS = {
    "6": figures.figure6_latency_vs_conflicts,
    "7": figures.figure7_single_leader_comparison,
    "8": figures.figure8_client_scaling,
    "9": figures.figure9_throughput,
    "9b": figures.figure9_throughput_batching,
    "10": figures.figure10_slow_paths,
    "11": figures.figure11_breakdown,
    "12": figures.figure12_failure_timeline,
    "ablation": figures.ablation_wait_condition,
    "shard": figures.shard_scaling,
}

#: Scaled-down parameters used with ``--quick`` so every figure finishes fast.
QUICK_OVERRIDES = {
    "6": dict(conflict_rates=(0.0, 0.1, 0.3), clients_per_site=5, duration_ms=4000.0,
              warmup_ms=1000.0),
    "7": dict(clients_per_site=5, duration_ms=4000.0, warmup_ms=1000.0),
    "8": dict(client_counts=(5, 50, 250), duration_ms=3000.0, warmup_ms=1000.0),
    "9": dict(conflict_rates=(0.0, 0.1, 0.3), clients_per_site=40, duration_ms=3000.0,
              warmup_ms=1000.0),
    "9b": dict(conflict_rates=(0.0, 0.1, 0.3), clients_per_site=40, duration_ms=2500.0,
               warmup_ms=1000.0),
    "10": dict(conflict_rates=(0.0, 0.1, 0.3), clients_per_site=15, duration_ms=3000.0,
               warmup_ms=1000.0),
    "11": dict(conflict_rates=(0.0, 0.1, 0.3), clients_per_site=5, duration_ms=4000.0,
               warmup_ms=1000.0),
    "12": dict(clients_per_site=10, crash_at_ms=5000.0, total_ms=12000.0),
    "ablation": dict(conflict_rates=(0.1, 0.3), clients_per_site=10, duration_ms=2500.0,
                     warmup_ms=500.0),
    "shard": dict(shard_counts=(1, 2), skews=(0.0, 1.2), sites=6, replicas_per_site=1,
                  clients=4, commands_per_client=3, key_space=64, hot_keys=4),
}


def _figure_order(key: str):
    """Sort figure keys numerically, with non-numeric suffixes/names last."""
    return (0, int(key), "") if key.isdigit() else (1, 0, key)


def shared_flags(protocol: Optional[str] = None, seed: int = 1,
                 clients: Optional[int] = None,
                 conflicts: Optional[object] = None,
                 duration: Optional[float] = None) -> argparse.ArgumentParser:
    """Build a parent parser with the flags shared across subcommands.

    Each subcommand passes the defaults it wants (and ``None`` to omit a
    flag entirely), so the flag *vocabulary* — names, types, help strings —
    is declared exactly once.  ``conflicts`` may be a float (single rate) or
    a list (``nargs='+'``, as ``compare`` uses).
    """
    parent = argparse.ArgumentParser(add_help=False)
    if protocol is not None:
        parent.add_argument("--protocol", default=protocol, choices=PROTOCOL_CHOICES)
    parent.add_argument("--seed", type=int, default=seed)
    if clients is not None:
        parent.add_argument("--clients", type=int, default=clients,
                            help="clients per site")
    if conflicts is not None:
        if isinstance(conflicts, (list, tuple)):
            parent.add_argument("--conflicts", type=float, nargs="+",
                                default=list(conflicts),
                                help="percentages of conflicting commands (0-100)")
        else:
            parent.add_argument("--conflicts", type=float, default=conflicts,
                                help="percentage of conflicting commands (0-100)")
    if duration is not None:
        parent.add_argument("--duration", type=float, default=duration,
                            help="measured duration in simulated ms")
    return parent


def add_admission_flag(parser: argparse.ArgumentParser) -> None:
    """Add the admission-control flag (same spec syntax on every subcommand)."""
    parser.add_argument("--admission", default=None, metavar="SPEC",
                        help="admission-control policy on every replica's submit "
                             "path: 'none' (counting baseline), 'inflight:K', "
                             "'deadline:MS' (default: no admission hook)")


def add_history_gc_flag(parser: argparse.ArgumentParser) -> None:
    """Add the history-GC flag (same semantics on every subcommand)."""
    parser.add_argument("--history-gc", type=float, default=None, metavar="MS",
                        help="collect history entries delivered by every replica "
                             "on this virtual-ms cadence (off by default; changes "
                             "wire bytes, so never used for figure reproduction)")


def add_store_flags(parser: argparse.ArgumentParser,
                    label: Optional[str] = None) -> None:
    """Add the results-store flags (``--store`` appends the run to SQLite)."""
    from repro.metrics.store import DEFAULT_STORE_PATH

    parser.add_argument("--store", nargs="?", const=str(DEFAULT_STORE_PATH),
                        default=None, metavar="DB",
                        help="append this run to the SQLite results store "
                             "(default path: %(const)s)")
    if label is not None:
        parser.add_argument("--label", default=label,
                            help="label the stored run is grouped under in "
                                 "'repro report' (default: %(default)s)")


def build_parser() -> argparse.ArgumentParser:
    """Create the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of CAESAR (Speeding up Consensus by Chasing Fast "
                    "Decisions, DSN 2017) on a simulated geo-replicated substrate "
                    "and over real TCP sockets.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="run one protocol on one workload",
        parents=[shared_flags(protocol="caesar", seed=1, clients=10,
                              conflicts=0.0, duration=8000.0)])
    run_parser.add_argument("--batching", action="store_true",
                            help="enable network message batching")
    run_parser.add_argument("--throughput", action="store_true",
                            help="use the saturation CPU cost model (throughput study)")
    add_admission_flag(run_parser)
    add_history_gc_flag(run_parser)
    add_store_flags(run_parser, label="run")

    subparsers.add_parser(
        "compare", help="compare all protocols at given conflict rates",
        parents=[shared_flags(seed=1, clients=10, conflicts=[0.0, 10.0, 30.0],
                              duration=6000.0)])

    figure_parser = subparsers.add_parser("figure", help="regenerate one figure of the paper")
    figure_parser.add_argument("number", choices=sorted(FIGURE_DRIVERS, key=_figure_order),
                               help="paper figure number")
    figure_parser.add_argument("--quick", action="store_true",
                               help="use scaled-down parameters (fast, coarser numbers)")

    sweep_parser = subparsers.add_parser(
        "sweep",
        help="run figure sweeps through the parallel orchestrator and write "
             "figure tables + BENCH perf records")
    sweep_parser.add_argument("figures", nargs="+",
                              choices=sorted(FIGURE_DRIVERS, key=_figure_order) + ["all"],
                              metavar="figure",
                              help="figure sweeps to run (%(choices)s)")
    sweep_parser.add_argument("--workers", default=None,
                              help="worker processes per sweep: a count, or 'auto' for one "
                                   "per CPU (default: $REPRO_SWEEP_WORKERS, else serial)")
    sweep_parser.add_argument("--serial", action="store_true",
                              help="force serial in-process execution (same output bytes "
                                   "as any --workers value)")
    sweep_parser.add_argument("--cells", nargs="+", default=None, metavar="PATTERN",
                              help="only run cells whose key matches one of these globs, "
                                   "e.g. 'fig9/caesar/*' (unmatched cells report '-')")
    sweep_parser.add_argument("--list-cells", action="store_true",
                              help="print the resolved cell grid (with --cells matches "
                                   "marked) and exit without running anything")
    sweep_parser.add_argument("--quick", action="store_true",
                              help="use scaled-down parameters (fast, coarser numbers)")
    sweep_parser.add_argument("--out", type=pathlib.Path,
                              default=pathlib.Path("benchmarks/results"),
                              help="directory for sweep_<name>.txt tables and "
                                   "BENCH_sweep_<name>.json records (default: %(default)s)")
    sweep_parser.add_argument("--stable-records", action="store_true",
                              help="omit wall-clock fields from BENCH records so identical "
                                   "sweeps serialize byte-identically")
    add_store_flags(sweep_parser)

    shard_parser = subparsers.add_parser(
        "shard",
        help="run the sharded-keyspace study: protocol x shards x zipf skew "
             "over independent consensus groups (exit code 1 unless every "
             "command decided with 0 conflict-order violations)",
        parents=[shared_flags(protocol="caesar", seed=21)])
    shard_parser.add_argument("--shards", type=int, nargs="+", default=[1, 2, 4],
                              metavar="N", help="shard counts to sweep")
    shard_parser.add_argument("--skew", type=float, nargs="+", default=[0.0, 0.99],
                              metavar="S",
                              help="zipf exponents to sweep (0 = uniform)")
    shard_parser.add_argument("--sites", type=int, default=20,
                              help="WAN sites per consensus group")
    shard_parser.add_argument("--replicas-per-site", type=int, default=1,
                              help="co-located replicas per site (group size = "
                                   "sites x this)")
    shard_parser.add_argument("--clients", type=int, default=8,
                              help="clients whose streams are split across shards")
    shard_parser.add_argument("--commands", type=int, default=4,
                              help="commands per client stream")
    shard_parser.add_argument("--key-space", type=int, default=1000,
                              help="distinct keys in the zipf key space")
    shard_parser.add_argument("--hot-keys", type=int, default=10,
                              help="size of the hot-key pool (reporting only)")
    shard_parser.add_argument("--workers", default=None,
                              help="worker processes for the sweep grid: a count, or "
                                   "'auto' (default: $REPRO_SWEEP_WORKERS, else serial)")
    shard_parser.add_argument("--serial", action="store_true",
                              help="force serial execution (same output bytes as any "
                                   "--workers value)")
    add_store_flags(shard_parser, label="shard")

    chaos_parser = subparsers.add_parser(
        "chaos",
        help="run a protocol under a nemesis fault schedule and check the "
             "client history for linearizability",
        parents=[shared_flags(protocol="caesar", seed=1, clients=2,
                              conflicts=50.0)])
    chaos_parser.add_argument("--nemesis", default="minority-partition",
                              help="named nemesis schedule (see --list-schedules)")
    chaos_parser.add_argument("--fault-at", type=float, default=None,
                              help="virtual ms at which the faults begin "
                                   "(default: 1000, or 500 with --quick)")
    chaos_parser.add_argument("--hold", type=float, default=None,
                              help="virtual ms until the schedule has fully healed "
                                   "(default: 2000, or 1000 with --quick)")
    chaos_parser.add_argument("--recovery", action="store_true",
                              help="run failure detectors / recovery machinery")
    chaos_parser.add_argument("--no-retransmit", action="store_true",
                              help="disable the runtime retransmission + catch-up layer "
                                   "(reproduces the pre-retransmission safe-but-not-live "
                                   "split under lossy schedules)")
    chaos_parser.add_argument("--matrix", action="store_true",
                              help="run the protocols x schedules conformance matrix "
                                   "(exit code 1 when any cell fails)")
    chaos_parser.add_argument("--protocols", nargs="+", default=None, metavar="PROTO",
                              help="protocols for --matrix (default: all five)")
    chaos_parser.add_argument("--schedules", nargs="+", default=None, metavar="NAME",
                              help="schedules for --matrix (default: the full "
                                   "conformance library, lossy schedules included)")
    chaos_parser.add_argument("--random", type=int, default=None, metavar="N",
                              help="run N generated random schedules instead of a "
                                   "named one")
    chaos_parser.add_argument("--include-lossy", action="store_true",
                              help="let --random draw message-loss and crash faults")
    chaos_parser.add_argument("--list-schedules", action="store_true",
                              help="print the named schedule library and exit")
    chaos_parser.add_argument("--quick", action="store_true",
                              help="scaled-down fault window (fast smoke run)")

    serve_parser = subparsers.add_parser(
        "serve",
        help="run replicas as real processes speaking the wire format over TCP",
        parents=[shared_flags(protocol="caesar", seed=0)])
    serve_parser.add_argument("--replicas", type=int, default=3,
                              help="cluster size for single-host mode")
    serve_parser.add_argument("--host", default="127.0.0.1",
                              help="bind address for auto-allocated ports")
    serve_parser.add_argument("--peer", action="append", default=None,
                              metavar="ID=HOST:PORT",
                              help="explicit peer map entry (repeat per replica; "
                                   "required for multi-host mode)")
    serve_parser.add_argument("--node-id", type=int, default=None,
                              help="run only this replica in the foreground "
                                   "(multi-host mode; requires --peer entries)")
    serve_parser.add_argument("--recovery", action="store_true",
                              help="run failure detectors / recovery machinery")
    serve_parser.add_argument("--no-retransmit", action="store_true",
                              help="disable the runtime retransmission + catch-up "
                                   "layer (not recommended over real sockets)")
    add_admission_flag(serve_parser)

    loadgen_parser = subparsers.add_parser(
        "loadgen",
        help="drive a live cluster with the seeded workload over TCP",
        parents=[shared_flags(protocol="caesar", seed=0, clients=3,
                              conflicts=2.0)])
    loadgen_parser.add_argument("--endpoint", action="append", default=None,
                                metavar="ID=HOST:PORT",
                                help="replica endpoint (repeat per replica)")
    loadgen_parser.add_argument("--launch", type=int, default=None, metavar="N",
                                help="launch an N-replica local cluster first, "
                                     "drive it, then tear it down")
    loadgen_parser.add_argument("--commands", type=int, default=10,
                                help="closed-loop commands per client")
    loadgen_parser.add_argument("--open-loop", action="store_true",
                                help="Poisson open-loop injection instead of "
                                     "closed loop")
    loadgen_parser.add_argument("--rate", type=float, default=50.0,
                                help="open-loop rate per client (commands/s)")
    loadgen_parser.add_argument("--duration", type=float, default=2000.0,
                                help="open-loop injection window (real ms)")
    loadgen_parser.add_argument("--warmup-ms", type=float, default=0.0,
                                help="discard latency samples completing within "
                                     "this many real ms after start")
    loadgen_parser.add_argument("--timeout", type=float, default=60.0,
                                help="overall wall-clock budget (seconds)")
    loadgen_parser.add_argument("--json", action="store_true",
                                help="print the report as JSON")
    add_admission_flag(loadgen_parser)
    add_store_flags(loadgen_parser, label="loadgen")

    overload_parser = subparsers.add_parser(
        "overload",
        help="sweep open-loop offered load past the saturation knee and "
             "report goodput + latency tail per point",
        parents=[shared_flags(protocol="caesar", seed=1, clients=4,
                              conflicts=2.0, duration=4000.0)])
    overload_parser.add_argument("--offered", type=float, nargs="+", default=None,
                                 metavar="RATE",
                                 help="total offered loads to sweep, in commands/s "
                                      "across the cluster (default: 200 400 800 1600)")
    overload_parser.add_argument("--substrate", choices=["sim", "tcp"], default="sim",
                                 help="run on the simulator or over real sockets")
    overload_parser.add_argument("--warmup-ms", type=float, default=1000.0,
                                 help="per-point warm-up window (samples discarded)")
    overload_parser.add_argument("--replicas", type=int, default=3,
                                 help="tcp-substrate cluster size")
    overload_parser.add_argument("--workers", default=None,
                                 help="sweep worker processes for the sim substrate "
                                      "(a count or 'auto')")
    overload_parser.add_argument("--json", action="store_true",
                                 help="print the sweep as JSON")
    add_admission_flag(overload_parser)
    add_history_gc_flag(overload_parser)
    add_store_flags(overload_parser, label="overload")

    profile_parser = subparsers.add_parser(
        "profile",
        help="profile a figure sweep under cProfile and summarize where the "
             "simulator spends its time")
    profile_parser.add_argument("number", nargs="?", default="9",
                                choices=sorted(FIGURE_DRIVERS, key=_figure_order),
                                help="figure sweep to profile (default: %(default)s)")
    profile_parser.add_argument("--quick", action="store_true",
                                help="use scaled-down parameters (fast, coarser numbers)")
    profile_parser.add_argument("--cells", nargs="+", default=None, metavar="PATTERN",
                                help="only run cells whose key matches one of these "
                                     "globs, e.g. 'fig9/caesar/*'")
    profile_parser.add_argument("--top", type=int, default=20,
                                help="functions to show in the hot-spot table "
                                     "(default: %(default)s)")
    profile_parser.add_argument("--sort", default="cumulative",
                                choices=["cumulative", "tottime", "calls"],
                                help="pstats sort order (default: %(default)s)")
    add_store_flags(profile_parser, label="profile")

    report_parser = subparsers.add_parser(
        "report",
        help="render run listings and cross-commit trend tables from the "
             "results store")
    from repro.metrics.store import DEFAULT_STORE_PATH

    report_parser.add_argument("--store", default=str(DEFAULT_STORE_PATH), metavar="DB",
                               help="results store to read (default: %(default)s)")
    report_parser.add_argument("--kind", default=None,
                               help="only runs of this kind (experiment, sweep, "
                                    "loadgen, overload, bench)")
    report_parser.add_argument("--label", default=None,
                               help="only runs with this label")
    report_parser.add_argument("--limit", type=int, default=20,
                               help="newest runs per label to include")
    report_parser.add_argument("--points", action="store_true",
                               help="also render each overload run's per-load-point "
                                    "saturation curve")

    subparsers.add_parser("topology", help="print the simulated five-site EC2 topology")
    return parser


def _open_store(args: argparse.Namespace):
    """Open the results store when ``--store`` was given (``None`` otherwise)."""
    path = getattr(args, "store", None)
    if path is None:
        return None
    from repro.metrics.store import ResultsStore

    return ResultsStore(pathlib.Path(path))


def _run(args: argparse.Namespace) -> str:
    result = run_experiment(ExperimentConfig.from_args(args))
    lines = [f"protocol:           {args.protocol}",
             f"conflict rate:      {args.conflicts:.0f}%",
             f"commands completed: {result.metrics.count}",
             f"throughput:         {result.throughput_per_second:.1f} commands/s"]
    if result.overall_latency is not None:
        lines.append(f"mean latency:       {result.overall_latency.mean:.1f} ms "
                     f"(p95 {result.overall_latency.p95:.1f} ms)")
    ratio = result.slow_path_ratio
    if ratio is not None:
        lines.append(f"slow decisions:     {ratio * 100.0:.1f}%")
    lines.append("per-site mean latency (ms):")
    for site in EC2_SITES:
        mean = result.site_mean_latency(site)
        if mean is not None:
            lines.append(f"  {EC2_SHORT_LABELS[site]:<3} {mean:7.1f}")
    lines.append(f"consistency violations: {result.consistency_violations}")
    compactor = result.cluster.compactor
    if compactor is not None:
        live = sum(len(replica.history) for replica in result.cluster.replicas
                   if hasattr(replica, "history"))
        lines.append(f"history GC:         {compactor.commands_removed} commands "
                     f"collected, {live} entries still live")
    # The unified runtime stats record means no per-protocol formatting here:
    # whatever counters moved are reported, regardless of the protocol.
    counters = format_protocol_stats([replica.stats for replica in result.cluster.replicas])
    if counters:
        lines.append(counters)
    store = _open_store(args)
    if store is not None:
        from repro.harness.experiment import summarize_experiment

        with store:
            run_id = store.record_run(
                "experiment", args.label, protocol=args.protocol, substrate="sim",
                seed=args.seed,
                config={"conflicts": args.conflicts, "clients": args.clients,
                        "duration_ms": args.duration, "admission": args.admission,
                        "batching": args.batching, "throughput": args.throughput},
                metrics=summarize_experiment(result))
        lines.append(f"[stored as run {run_id} in {args.store}]")
    return "\n".join(lines)


def _compare(args: argparse.Namespace) -> str:
    latency = {}
    slow = {}
    for protocol in ("caesar", "epaxos", "m2paxos", "mencius", "multipaxos"):
        latency[protocol] = {}
        slow[protocol] = {}
        for conflicts in args.conflicts:
            result = run_experiment(ExperimentConfig.from_args(
                args, protocol=protocol, conflict_rate=conflicts / 100.0))
            key = f"{conflicts:.0f}%"
            overall = result.overall_latency
            latency[protocol][key] = overall.mean if overall else None
            ratio = result.slow_path_ratio
            slow[protocol][key] = ratio * 100.0 if ratio is not None else None
    return (format_series("Mean latency (ms) across sites", latency, "conflict")
            + "\n\n"
            + format_series("Slow-path share (%)", slow, "conflict"))


def _figure(args: argparse.Namespace) -> str:
    driver = FIGURE_DRIVERS[args.number]
    overrides = QUICK_OVERRIDES[args.number] if args.quick else {}
    result = driver(**overrides)
    return result.table


def _sweeps_behind(result) -> list:
    """The SweepResults behind one FigureResult (two for Figure 9b)."""
    if "sweep" in result.extra:
        return [result.extra["sweep"]]
    return [result.extra[key].extra["sweep"]
            for key in ("without", "with_batching") if key in result.extra]


def _combined_record(name: str, sweeps, wall_seconds: float) -> PerfRecord:
    """One BENCH record aggregating every sweep a figure driver ran.

    ``wall_seconds`` is the observed wall time across all of them, so the
    merged events/second and speedup estimate describe the whole figure
    regeneration, not just the first sub-sweep.
    """
    events = sum(sweep.events_executed for sweep in sweeps)
    cells = sum(len(sweep.outcomes) for sweep in sweeps)
    cell_wall = sum(sweep.cell_wall_seconds for sweep in sweeps)
    skipped = sum(sweep.skipped for sweep in sweeps)
    timing = {
        "parts": cells,
        "cell_wall_seconds": round(cell_wall, 3),
        "workers": max(sweep.workers for sweep in sweeps),
        "cpus": os.cpu_count(),
    }
    if wall_seconds > 0:
        timing["parallel_speedup_estimate"] = round(cell_wall / wall_seconds, 2)
    extra = {"cells": cells, TIMING_EXTRA_KEY: timing}
    if skipped:
        extra["cells_skipped"] = skipped
    return PerfRecord(
        name=name, wall_seconds=wall_seconds, events_executed=events,
        events_per_second=(events / wall_seconds) if wall_seconds > 0 else 0.0,
        extra=extra)


def _list_cells(args: argparse.Namespace, targets: list) -> str:
    """Resolve every target's cell grid without running any experiment."""
    from repro.harness.sweep import planning_sweeps

    outputs = []
    for target in targets:
        driver = FIGURE_DRIVERS[target]
        overrides = dict(QUICK_OVERRIDES[target]) if args.quick else {}
        with planning_sweeps() as plan:
            driver(serial=True, cell_filter=args.cells, **overrides)
        selected = len(plan.selected)
        lines = [f"sweep {target} — {len(plan.cells)} cells, "
                 f"{selected} selected, {len(plan.cells) - selected} filtered out"]
        lines.extend(f"  {'*' if chosen else '-'} {key}" for key, chosen in plan.cells)
        outputs.append("\n".join(lines))
    return "\n\n".join(outputs)


def _sweep(args: argparse.Namespace) -> str:
    targets = list(FIGURE_DRIVERS) if "all" in args.figures else list(args.figures)
    # Preserve figure order, drop duplicates.
    targets = sorted(set(targets), key=_figure_order)
    if args.list_cells:
        return _list_cells(args, targets)
    store = _open_store(args)
    outputs = []
    for target in targets:
        driver = FIGURE_DRIVERS[target]
        overrides = dict(QUICK_OVERRIDES[target]) if args.quick else {}
        started = time.perf_counter()
        result = driver(workers=args.workers, serial=args.serial,
                        cell_filter=args.cells, **overrides)
        wall = time.perf_counter() - started
        name = driver.__name__

        record = _combined_record(f"sweep_{name}", _sweeps_behind(result), wall)
        record.series = {label: {str(x): y for x, y in points.items()}
                         for label, points in result.series.items()}

        args.out.mkdir(parents=True, exist_ok=True)
        table_path = args.out / f"sweep_{name}.txt"
        table_path.write_text(result.table + "\n")
        record_path = write_record(record, args.out, stable=args.stable_records)
        stored = ""
        if store is not None:
            # The store row carries the same payload as the BENCH file and is
            # keyed by its exact name, so the perf gate can use the latest
            # stored row per record as its baseline.
            run_id = store.record_run(
                "bench", record_path.name, substrate="sim",
                config={"figure": target, "quick": args.quick},
                metrics=record.to_json())
            stored = f"; stored as run {run_id}"
        outputs.append(f"{result.table}\n\n"
                       f"[sweep {target}: {len(record.series)} series, "
                       f"{record.extra['cells']} cells, wall {wall:.1f}s; "
                       f"wrote {table_path} and {record_path}{stored}]")
    if store is not None:
        store.close()
    return "\n\n".join(outputs)


def _shard(args: argparse.Namespace) -> tuple:
    """Run the sharded-keyspace study; returns ``(output, exit_code)``.

    Exit code 1 unless every submitted command was decided on every live
    replica of its shard and no shard saw a conflict-order violation — the
    same hard gate the sharded CI smoke relies on.
    """
    result = figures.shard_scaling(
        protocols=(args.protocol,), shard_counts=tuple(args.shards),
        skews=tuple(args.skew), sites=args.sites,
        replicas_per_site=args.replicas_per_site, clients=args.clients,
        commands_per_client=args.commands, key_space=args.key_space,
        hot_keys=args.hot_keys, seed=args.seed, workers=args.workers,
        serial=args.serial)
    violations = result.extra["total_violations"]
    undecided = result.extra["total_undecided"]
    lines = [result.table, "",
             f"conflict-order violations: {violations}",
             f"undecided commands:        {undecided}"]
    store = _open_store(args)
    if store is not None:
        with store:
            run_id = store.record_run(
                "sweep", args.label, protocol=args.protocol, substrate="sim",
                seed=args.seed,
                config={"shards": list(args.shards), "skew": list(args.skew),
                        "sites": args.sites,
                        "replicas_per_site": args.replicas_per_site,
                        "clients": args.clients, "commands": args.commands},
                metrics={"series": {label: {str(x): y for x, y in points.items()}
                                    for label, points in result.series.items()},
                         "total_violations": violations,
                         "total_undecided": undecided})
        lines.append(f"[stored as run {run_id} in {args.store}]")
    ok = violations == 0 and undecided == 0
    lines.append(f"verdict: {'PASS' if ok else 'FAIL'}")
    return "\n".join(lines), 0 if ok else 1


def _chaos_single(result) -> str:
    """Render one ChaosResult in full detail."""
    lines = [result.plan.describe(), ""]
    lines.append("nemesis log:")
    lines.extend(f"  t={when:>7.0f}ms  {what}" for when, what in result.nemesis_log)
    stats = result.client_stats
    lines.append("")
    lines.append(f"client operations:  {stats.total} taped, {stats.completed} completed, "
                 f"{stats.pending} pending, {stats.keys} keys")
    lines.append(f"decisions:          {result.fast_decisions} fast, "
                 f"{result.slow_decisions} slow, {result.recoveries} recoveries")
    if result.fault_stats:
        lines.append("fault plane:        "
                     + ", ".join(f"{k}={v}" for k, v in sorted(result.fault_stats.items())))
    lines.append(f"progress after heal: {result.probes_completed}/{result.probes_submitted}"
                 f" probes completed")
    lines.append(f"linearizability:    {result.report.describe()}")
    if result.internal_violations:
        lines.append(f"internal divergence: {len(result.internal_violations)} violations")
    lines.append("")
    lines.append(f"verdict: {result.verdict()}")
    return "\n".join(lines)


def _chaos(args: argparse.Namespace) -> tuple:
    """Run the chaos subcommand; returns ``(output, exit_code)``."""
    from repro.chaos.nemesis import NEMESIS_SCHEDULES, random_plan
    from repro.harness.chaos import (ChaosConfig, default_conformance_schedules,
                                     format_matrix, run_chaos, run_conformance_matrix)
    from repro.sim.random import DeterministicRandom

    if args.list_schedules:
        from repro.chaos.nemesis import CONFORMANCE_SCHEDULES

        lines = ["named nemesis schedules ('*' = in the conformance set):"]
        for name, builder in sorted(NEMESIS_SCHEDULES.items()):
            marker = "*" if name in CONFORMANCE_SCHEDULES else " "
            lines.append(f"  {marker} {name:22s} {(builder.__doc__ or '').strip()}")
        return "\n".join(lines), 0

    kwargs = ChaosConfig.kwargs_from_args(args)
    if args.matrix:
        protocols = args.protocols or ["caesar", "epaxos", "m2paxos", "mencius",
                                       "multipaxos"]
        schedules = args.schedules or default_conformance_schedules()
        results = run_conformance_matrix(protocols, schedules, **kwargs)
        ok = all(result.ok for result in results)
        return format_matrix(results), 0 if ok else 1

    if args.random is not None:
        root = DeterministicRandom(args.seed)
        outputs = []
        failures = 0
        for index in range(args.random):
            rng = root.fork_cell(("chaos-random", args.seed, index))
            plan = random_plan(rng, 5, kwargs["fault_at_ms"], kwargs["fault_hold_ms"],
                               include_lossy=args.include_lossy)
            result = run_chaos(ChaosConfig(protocol=args.protocol, plan=plan, **kwargs))
            failures += 0 if result.ok else 1
            outputs.append(f"[{index}] {result.verdict():24s} "
                           f"{len(plan.faults)} faults, "
                           f"{result.client_stats.completed} ops, "
                           f"probes {result.probes_completed}/{result.probes_submitted}")
        outputs.append(f"{args.random - failures}/{args.random} random schedules passed")
        return "\n".join(outputs), 0 if failures == 0 else 1

    result = run_chaos(ChaosConfig.from_args(args))
    return _chaos_single(result), 0 if result.ok else 1


def _serve(args: argparse.Namespace) -> int:
    """Run the serve subcommand; blocks until interrupted."""
    from repro.net.cluster import ServeConfig, serve_cluster
    from repro.net.replica import ReplicaConfig, serve_replica

    config = ServeConfig.from_args(args)
    if args.node_id is not None:
        # Multi-host mode: one replica in the foreground of this process.
        if config.peers is None:
            print("serve --node-id requires an explicit --peer map", file=sys.stderr)
            return 2
        import asyncio

        replica_config = ReplicaConfig(
            node_id=args.node_id, peers=config.peers, protocol=config.protocol,
            seed=config.seed, retransmit=config.retransmit, recovery=config.recovery,
            admission=config.admission)
        host, port = config.peers[args.node_id]
        print(f"replica {args.node_id} ({config.protocol}) listening on {host}:{port}")
        try:
            asyncio.run(serve_replica(replica_config))
        except KeyboardInterrupt:
            pass
        return 0

    cluster = serve_cluster(config)
    try:
        print(f"{config.protocol} cluster up — {len(cluster.peers)} replicas:")
        for node_id, (host, port) in sorted(cluster.peers.items()):
            print(f"  --endpoint {node_id}={host}:{port}")
        print("press Ctrl-C to stop")
        for process in cluster.processes.values():
            process.join()
        return 0
    except KeyboardInterrupt:
        return 0
    finally:
        cluster.stop()


def _loadgen(args: argparse.Namespace) -> int:
    """Run the loadgen subcommand; exit code 1 on missing decisions."""
    from repro.net.client import LoadgenConfig, run_loadgen
    from repro.net.cluster import ServeConfig, parse_peers, serve_cluster

    cluster = None
    if args.launch is not None:
        cluster = serve_cluster(ServeConfig.from_args(args, replicas=args.launch,
                                                      peers=None))
        endpoints = cluster.peers
    else:
        endpoints = parse_peers(args.endpoint or [])
        if not endpoints:
            print("loadgen needs --endpoint entries or --launch N", file=sys.stderr)
            return 2
    try:
        report = run_loadgen(LoadgenConfig.from_args(args, endpoints))
    finally:
        if cluster is not None:
            cluster.stop()
    store = _open_store(args)
    if store is not None:
        metrics = {key: value for key, value in report.as_dict().items()
                   if key != "per_replica"}
        with store:
            run_id = store.record_run(
                "loadgen", args.label, protocol=args.protocol, substrate="tcp",
                seed=args.seed,
                config={"clients": args.clients, "commands": args.commands,
                        "open_loop": args.open_loop, "rate": args.rate,
                        "duration_ms": args.duration, "warmup_ms": args.warmup_ms,
                        "admission": args.admission},
                metrics=metrics)
        print(f"[stored as run {run_id} in {args.store}]", file=sys.stderr)
    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
    else:
        lines = [f"completed:  {report.completed}/{report.submitted} commands "
                 f"in {report.wall_seconds:.1f}s "
                 f"({report.throughput_per_second:.1f}/s)"]
        if report.mean_latency_ms is not None:
            lines.append(f"latency:    mean {report.mean_latency_ms:.1f} ms, "
                         f"p99 {report.p99_latency_ms:.1f} ms")
        for node_id, stats in sorted(report.per_replica.items()):
            executed = stats.get("commands_executed", "n/a")
            lines.append(f"replica {node_id}:  executed {executed}, "
                         f"handled {stats.get('messages_handled', 'n/a')} messages")
        lines.append("result:     " + ("ok" if report.ok else "FAILED"))
        lines.extend(f"  - {failure}" for failure in report.failures)
        print("\n".join(lines))
    return 0 if report.ok else 1


def _overload(args: argparse.Namespace) -> str:
    """Run the overload subcommand (offered-load sweep + optional store)."""
    from repro.harness.overload import (OverloadConfig, run_overload_sweep,
                                        store_overload_result)

    config = OverloadConfig.from_args(args)
    result = run_overload_sweep(config)
    if args.json:
        output = json.dumps({"config": {"protocol": config.protocol,
                                        "substrate": config.substrate,
                                        "admission": config.admission,
                                        "offered_loads": list(config.offered_loads)},
                             "summary": result.summary_metrics(),
                             "points": [point.as_dict() for point in result.points]},
                            indent=2)
    else:
        output = result.table()
    store = _open_store(args)
    if store is not None:
        with store:
            run_id = store_overload_result(store, result, label=args.label)
        output += f"\n[stored as run {run_id} in {args.store}]"
    return output


#: Decision-path modules summarized by ``repro profile`` (path fragments
#: matched against pstats entries).
DECISION_PATH_MODULES = ("repro/core/history", "repro/core/predecessors",
                         "repro/core/delivery", "repro/core/caesar")


def _profile(args: argparse.Namespace) -> str:
    """Run the profile subcommand: cProfile one figure sweep and summarize it.

    Prints the pstats top-N table plus a decision-path section (call counts
    and ops/second for the history / predecessor / wait / delivery layers).
    Wall-clock numbers are measured *under the profiler*, which inflates
    call-heavy code — use them to compare shapes, not as absolute throughput.
    """
    import cProfile
    import io
    import pstats

    from repro.metrics.perf import PerfTracker

    driver = FIGURE_DRIVERS[args.number]
    overrides = dict(QUICK_OVERRIDES[args.number]) if args.quick else {}
    profiler = cProfile.Profile()
    with PerfTracker(f"profile_{driver.__name__}") as tracker:
        profiler.enable()
        try:
            driver(serial=True, cell_filter=args.cells, **overrides)
        finally:
            profiler.disable()
    record = tracker.record

    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats(args.sort).print_stats(args.top)

    # Decision-path summary: every profiled function in the core modules,
    # by cumulative time.  pstats keys are (file, line, function) and values
    # start with (primitive_calls, total_calls, tottime, cumtime, ...).
    wall = record.wall_seconds
    decision_rows = []
    for (filename, _line, function), row in stats.stats.items():
        normalized = filename.replace("\\", "/")
        if any(fragment in normalized for fragment in DECISION_PATH_MODULES):
            calls, tottime, cumtime = row[1], row[2], row[3]
            decision_rows.append((cumtime, calls, tottime, normalized, function))
    decision_rows.sort(reverse=True)

    lines = [f"profiled {driver.__name__}"
             + (f" (cells: {' '.join(args.cells)})" if args.cells else "")
             + (" [--quick]" if args.quick else ""),
             f"wall {wall:.2f}s under cProfile, "
             f"{record.events_executed:,} simulator events "
             f"({record.events_per_second:,.0f} events/s profiled)",
             "",
             f"top {args.top} by {args.sort}:",
             stream.getvalue().rstrip(),
             "",
             "decision path (repro/core/*), by cumulative time:"]
    decision_path_metrics = {}
    for cumtime, calls, tottime, filename, function in decision_rows[:15]:
        module = filename.rsplit("/", 1)[-1]
        ops = calls / wall if wall > 0 else 0.0
        lines.append(f"  {module + ':' + function:<44} {calls:>9,} calls "
                     f"{ops:>12,.0f} ops/s  tot {tottime:6.2f}s  cum {cumtime:6.2f}s")
        decision_path_metrics[f"{module}:{function}"] = {
            "calls": calls, "ops_per_second": round(ops, 1),
            "tottime_s": round(tottime, 3), "cumtime_s": round(cumtime, 3)}

    store = _open_store(args)
    if store is not None:
        with store:
            run_id = store.record_run(
                "bench", args.label, substrate="sim",
                config={"figure": args.number, "quick": args.quick,
                        "cells": args.cells},
                metrics={"wall_seconds": round(wall, 3),
                         "events_executed": record.events_executed,
                         "events_per_second": round(record.events_per_second, 1),
                         "decision_path": decision_path_metrics})
        lines.append(f"\n[stored as run {run_id} in {args.store}]")
    return "\n".join(lines)


def _report(args: argparse.Namespace) -> str:
    """Run the report subcommand (read-only over the results store)."""
    from repro.metrics.report import render_report
    from repro.metrics.store import ResultsStore

    path = pathlib.Path(args.store)
    if not path.exists():
        return (f"no results store at {path} — run a subcommand with --store "
                "first (e.g. 'repro overload --store')")
    with ResultsStore(path) as store:
        return render_report(store, kind=args.kind, label=args.label,
                             limit=args.limit, points=args.points)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "run":
        output = _run(args)
    elif args.command == "compare":
        output = _compare(args)
    elif args.command == "figure":
        output = _figure(args)
    elif args.command == "sweep":
        output = _sweep(args)
    elif args.command == "shard":
        output, code = _shard(args)
        print(output)
        return code
    elif args.command == "chaos":
        output, code = _chaos(args)
        print(output)
        return code
    elif args.command == "serve":
        return _serve(args)
    elif args.command == "loadgen":
        return _loadgen(args)
    elif args.command == "overload":
        output = _overload(args)
    elif args.command == "profile":
        output = _profile(args)
    elif args.command == "report":
        output = _report(args)
    elif args.command == "topology":
        output = ec2_five_sites().describe()
    else:  # pragma: no cover - argparse enforces the choices
        parser.error(f"unknown command {args.command!r}")
        return 2
    print(output)
    return 0


def main_deprecated(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the deprecated ``caesar-repro`` alias."""
    print("caesar-repro is deprecated; use the 'repro' command instead",
          file=sys.stderr)
    return main(argv)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
