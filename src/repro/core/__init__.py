"""CAESAR: the paper's primary contribution.

The protocol is split across focused modules:

* :mod:`repro.core.messages` -- wire messages (FASTPROPOSE, SLOWPROPOSE,
  RETRY, STABLE, RECOVERY and their replies).
* :mod:`repro.core.history` -- the per-node command history ``H_i``.
* :mod:`repro.core.predecessors` -- predecessor computation and the wait
  condition (Sections IV-A and V-B).
* :mod:`repro.core.delivery` -- stable-command delivery with loop breaking.
* :mod:`repro.core.recovery` -- the ballot-based recovery phase (Section V-E).
* :mod:`repro.core.caesar` -- the replica tying everything together.
"""

from repro.core.caesar import CaesarReplica
from repro.core.config import CaesarConfig
from repro.core.history import CommandHistory, CommandStatus, HistoryEntry

__all__ = ["CaesarReplica", "CaesarConfig", "CommandHistory", "CommandStatus", "HistoryEntry"]
