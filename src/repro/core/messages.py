"""Wire messages exchanged by CAESAR replicas.

Each message carries the command (or its id), the ballot identifying the
current leader for that command, and phase-specific payload.  Predecessor
sets travel as frozensets of command ids, never as command bodies: the paper
notes that only ids need to be exchanged because every node eventually
receives every command via its own PROPOSE/STABLE messages.

Every message type is registered with the runtime's message registry
(:mod:`repro.runtime.registry`), which supplies the exact-type dispatch used
by the kernel and the byte-accurate codec behind the footprint benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from repro.consensus.ballots import Ballot
from repro.consensus.command import Command, CommandId
from repro.consensus.timestamps import LogicalTimestamp
from repro.runtime.codec import BOOL, OptionalCodec
from repro.runtime.fields import (
    BALLOT,
    COMMAND,
    COMMAND_ID,
    COMMAND_ID_SET,
    OPTIONAL_BALLOT,
    OPTIONAL_STRING,
    OPTIONAL_TIMESTAMP,
    TIMESTAMP,
)
from repro.runtime.registry import register_message


@register_message(command=COMMAND, ballot=BALLOT, timestamp=TIMESTAMP,
                  whitelist=OptionalCodec(COMMAND_ID_SET))
@dataclass(frozen=True, slots=True)
class FastPropose:
    """Leader -> all: propose ``command`` at ``timestamp`` (fast proposal phase)."""

    command: Command
    ballot: Ballot
    timestamp: LogicalTimestamp
    whitelist: Optional[FrozenSet[CommandId]] = None


@register_message(command_id=COMMAND_ID, ballot=BALLOT, timestamp=TIMESTAMP,
                  predecessors=COMMAND_ID_SET, ok=BOOL)
@dataclass(frozen=True, slots=True)
class FastProposeReply:
    """Acceptor -> leader: confirm (``ok=True``) or reject the fast proposal.

    On rejection ``timestamp`` is the acceptor's suggested greater timestamp.
    ``predecessors`` always reflects the acceptor's view of commands that must
    precede the command.
    """

    command_id: CommandId
    ballot: Ballot
    timestamp: LogicalTimestamp
    predecessors: FrozenSet[CommandId]
    ok: bool


@register_message(command=COMMAND, ballot=BALLOT, timestamp=TIMESTAMP,
                  predecessors=COMMAND_ID_SET)
@dataclass(frozen=True, slots=True)
class SlowPropose:
    """Leader -> all: proposal re-issued on a classic quorum after a fast-quorum timeout."""

    command: Command
    ballot: Ballot
    timestamp: LogicalTimestamp
    predecessors: FrozenSet[CommandId]


@register_message(command_id=COMMAND_ID, ballot=BALLOT, timestamp=TIMESTAMP,
                  predecessors=COMMAND_ID_SET, ok=BOOL)
@dataclass(frozen=True, slots=True)
class SlowProposeReply:
    """Acceptor -> leader: confirm or reject a slow proposal."""

    command_id: CommandId
    ballot: Ballot
    timestamp: LogicalTimestamp
    predecessors: FrozenSet[CommandId]
    ok: bool


@register_message(command=COMMAND, ballot=BALLOT, timestamp=TIMESTAMP,
                  predecessors=COMMAND_ID_SET)
@dataclass(frozen=True, slots=True)
class Retry:
    """Leader -> all: ask acceptance of the retried timestamp (never rejected)."""

    command: Command
    ballot: Ballot
    timestamp: LogicalTimestamp
    predecessors: FrozenSet[CommandId]


@register_message(command_id=COMMAND_ID, ballot=BALLOT, timestamp=TIMESTAMP,
                  predecessors=COMMAND_ID_SET)
@dataclass(frozen=True, slots=True)
class RetryReply:
    """Acceptor -> leader: acknowledgement of a retry, with extra predecessors."""

    command_id: CommandId
    ballot: Ballot
    timestamp: LogicalTimestamp
    predecessors: FrozenSet[CommandId]


@register_message(command=COMMAND, ballot=BALLOT, timestamp=TIMESTAMP,
                  predecessors=COMMAND_ID_SET)
@dataclass(frozen=True, slots=True)
class Stable:
    """Leader -> all: the command's final timestamp and predecessor set."""

    command: Command
    ballot: Ballot
    timestamp: LogicalTimestamp
    predecessors: FrozenSet[CommandId]


@register_message(command=COMMAND, ballot=BALLOT)
@dataclass(frozen=True, slots=True)
class Recovery:
    """Recovering node -> all: Paxos-like prepare for a suspected command."""

    command: Command
    ballot: Ballot


@register_message(command_id=COMMAND_ID, ballot=BALLOT, known=BOOL,
                  entry_ballot=OPTIONAL_BALLOT, timestamp=OPTIONAL_TIMESTAMP,
                  predecessors=COMMAND_ID_SET, status=OPTIONAL_STRING, forced=BOOL)
@dataclass(frozen=True, slots=True)
class RecoveryReply:
    """Acceptor -> recovering node: the acceptor's current tuple for the command.

    ``known`` is ``False`` when the acceptor has never seen the command (the
    NOP case in the paper's pseudocode); the remaining fields are then
    meaningless.
    """

    command_id: CommandId
    ballot: Ballot
    known: bool
    entry_ballot: Optional[Ballot] = None
    timestamp: Optional[LogicalTimestamp] = None
    predecessors: FrozenSet[CommandId] = frozenset()
    status: Optional[str] = None
    forced: bool = False
