"""Predecessor computation and the wait condition.

These are the two auxiliary functions of Figure 3 in the paper:

* :func:`compute_predecessor_mask` — the set of conflicting commands that
  must be ordered before a command proposed at a given timestamp, optionally
  constrained by a recovery whitelist.  Returns an interned bitmask (see
  :mod:`repro.core.history`); :func:`compute_predecessors` is the
  id-set-returning wrapper kept for cold paths and tests.
* :class:`WaitManager` — the WAIT function.  In the paper WAIT blocks the
  acceptor thread; in the discrete-event simulation it is implemented as a
  registry of *parked* proposals.  Each parked proposal carries the bitmask
  of the conflicting entries currently blocking it and of the accepted/stable
  *NACK witnesses*; :meth:`WaitManager.notify_entry` reclassifies exactly the
  entry that changed instead of re-scanning every parked proposal's whole
  bucket, so a history change costs O(parked-on-key) bit operations.  When
  the blocker mask empties, the manager reports OK or NACK to a callback
  supplied by the replica.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional, Set

from repro.consensus.command import Command, CommandId
from repro.consensus.timestamps import LogicalTimestamp
from repro.core.history import CommandHistory, HistoryEntry


def compute_predecessor_mask(history: CommandHistory, command: Command,
                             timestamp: LogicalTimestamp,
                             whitelist_mask: Optional[int] = None) -> int:
    """COMPUTEPREDECESSORS from Figure 3, as an interned bitmask.

    With no whitelist, the predecessors of ``command`` at ``timestamp`` are
    every conflicting command the node has seen with a smaller timestamp —
    the bucket's ``< timestamp`` prefix, taken by binary search.

    With a whitelist (only used during recovery of a possibly fast-decided
    command), a conflicting command is a predecessor if it is in the
    whitelist, or if it has progressed past the proposal phases
    (slow-pending / accepted / stable) with a smaller timestamp.
    """
    bucket = history.bucket(command.key)
    if bucket is None:
        return 0
    index = history.index_of(command.command_id)
    self_bit = (1 << index) if index is not None else 0
    if whitelist_mask is None:
        mask = bucket.prefix_mask(timestamp, writes_only=not command.is_write)
        return mask & ~self_bit
    command_is_write = command.is_write
    mask = 0
    for entry in bucket.entries:
        if not (command_is_write or entry.command.is_write):
            continue
        bit = 1 << entry.index
        if bit & whitelist_mask:
            mask |= bit
        elif entry.status.survived_proposal and entry.timestamp < timestamp:
            mask |= bit
    return mask & ~self_bit


def compute_predecessors(history: CommandHistory, command: Command,
                         timestamp: LogicalTimestamp,
                         whitelist: Optional[FrozenSet[CommandId]]) -> Set[CommandId]:
    """Id-set wrapper around :func:`compute_predecessor_mask`."""
    whitelist_mask = None if whitelist is None else history.mask_from_ids(whitelist)
    mask = compute_predecessor_mask(history, command, timestamp, whitelist_mask)
    return set(history.ids_from_mask(mask))


class _ParkedProposal:
    """A proposal whose reply is delayed by the wait condition."""

    __slots__ = ("command", "command_id", "is_write", "bit", "ts_counter",
                 "ts_node", "timestamp", "on_resolved", "parked_at",
                 "blocker_mask", "witness_mask")

    def __init__(self, command: Command, bit: int, timestamp: LogicalTimestamp,
                 on_resolved: Callable[[bool, float], None], parked_at: float,
                 blocker_mask: int, witness_mask: int) -> None:
        self.command = command
        self.command_id = command.command_id
        self.is_write = command.is_write
        self.bit = bit
        self.ts_counter = timestamp.counter
        self.ts_node = timestamp.node_id
        self.timestamp = timestamp
        self.on_resolved = on_resolved
        self.parked_at = parked_at
        self.blocker_mask = blocker_mask
        self.witness_mask = witness_mask


class WaitManager:
    """Implements WAIT (Figure 3, lines 4-8) without blocking threads.

    The manager is owned by a replica.  ``evaluate`` either resolves the
    proposal immediately or parks it.  The replica notifies the manager on
    every history change: :meth:`notify_entry` (hot path, after a
    ``history.update``) reclassifies the single changed entry against each
    proposal parked on its key; :meth:`notify_change` (compatibility API)
    rebuilds every parked proposal's masks from the bucket.  Both resolve the
    proposals whose blocker mask emptied, in parking order.

    The resolution callback receives ``(ok, waited_ms)`` where ``ok`` is the
    OK/NACK outcome of WAIT and ``waited_ms`` is how long the proposal was
    parked (0 for immediate resolutions) — the latter feeds Figure 11(b).
    """

    def __init__(self, history: CommandHistory, now: Callable[[], float],
                 enabled: bool = True) -> None:
        self._history = history
        self._now = now
        self._enabled = enabled
        self._parked_by_key: Dict[str, List[_ParkedProposal]] = {}
        self._parked = 0
        self.total_waits = 0
        self.total_wait_ms = 0.0

    # ------------------------------------------------------------ predicates

    def _scan_masks(self, command: Command, timestamp: LogicalTimestamp,
                    self_bit: int) -> tuple:
        """One pass over the ``> timestamp`` bucket suffix: the blocker and
        NACK-witness masks.

        A conflicting command *blocks* when it has a greater timestamp, does
        not list ``command`` among its predecessors, and has not yet reached
        an accepted/stable status; candidates that have are *NACK witnesses*.
        The two partition the same candidate set, and the timestamp-sorted
        bucket means only entries past the binary-searched suffix start are
        ever examined.
        """
        bucket = self._history.bucket(command.key)
        if bucket is None:
            return 0, 0
        blocker_mask = 0
        witness_mask = 0
        command_is_write = command.is_write
        entries = bucket.entries
        for i in range(bucket.suffix_start(timestamp), len(entries)):
            entry = entries[i]
            if not (command_is_write or entry.command.is_write):
                continue
            if entry.pred_mask & self_bit:
                continue
            bit = 1 << entry.index
            if bit == self_bit:
                continue
            if entry.status.is_finalizing:
                witness_mask |= bit
            else:
                blocker_mask |= bit
        return blocker_mask, witness_mask

    # -------------------------------------------------------------- main API

    def evaluate(self, command: Command, timestamp: LogicalTimestamp,
                 on_resolved: Callable[[bool, float], None]) -> None:
        """Run WAIT for a proposal, resolving now or parking it.

        Args:
            command: the proposed command.
            timestamp: the proposed timestamp.
            on_resolved: called with ``(ok, waited_ms)`` once WAIT terminates.
        """
        self_bit = 1 << self._history.intern(command.command_id)
        blocker_mask, witness_mask = self._scan_masks(command, timestamp, self_bit)
        if blocker_mask and self._enabled:
            parked = _ParkedProposal(command=command, bit=self_bit,
                                     timestamp=timestamp, on_resolved=on_resolved,
                                     parked_at=self._now(),
                                     blocker_mask=blocker_mask,
                                     witness_mask=witness_mask)
            self._parked_by_key.setdefault(command.key, []).append(parked)
            self._parked += 1
            return
        if blocker_mask and not self._enabled:
            # Ablation mode: a proposal that would have waited is rejected outright.
            on_resolved(False, 0.0)
            return
        on_resolved(not witness_mask, 0.0)

    def notify_entry(self, entry: HistoryEntry) -> None:
        """Reclassify one changed entry against the proposals parked on its key.

        Called by the replica right after every ``history.update`` (and after
        a delivery) with the entry that changed — the incremental counterpart
        of :meth:`notify_change`.
        """
        parked_list = self._parked_by_key.get(entry.command.key)
        if not parked_list:
            return
        bit = 1 << entry.index
        entry_counter = entry.timestamp.counter
        entry_node = entry.timestamp.node_id
        entry_is_write = entry.command.is_write
        pred_mask = entry.pred_mask
        finalizing = entry.status.is_finalizing
        resolved: Optional[List[_ParkedProposal]] = None
        for parked in parked_list:
            if parked.bit == bit:
                continue
            blocks = ((entry_is_write or parked.is_write)
                      and (entry_counter, entry_node) > (parked.ts_counter, parked.ts_node)
                      and not (pred_mask & parked.bit))
            if blocks:
                if finalizing:
                    parked.witness_mask |= bit
                    new_blockers = parked.blocker_mask & ~bit
                else:
                    parked.blocker_mask |= bit
                    parked.witness_mask &= ~bit
                    continue
            else:
                parked.witness_mask &= ~bit
                new_blockers = parked.blocker_mask & ~bit
            if new_blockers != parked.blocker_mask:
                parked.blocker_mask = new_blockers
                if not new_blockers:
                    if resolved is None:
                        resolved = []
                    resolved.append(parked)
        if resolved:
            self._finish(entry.command.key, parked_list, resolved)

    def notify_change(self, key: str) -> None:
        """Re-evaluate proposals parked on ``key`` after a history change.

        Compatibility API (tests and external callers): rebuilds each parked
        proposal's masks with a full suffix scan, which also resynchronizes
        the incremental state after arbitrary external history mutations.
        """
        parked_list = self._parked_by_key.get(key)
        if not parked_list:
            return
        resolved: Optional[List[_ParkedProposal]] = None
        for parked in parked_list:
            blocker_mask, witness_mask = self._scan_masks(
                parked.command, parked.timestamp, parked.bit)
            parked.blocker_mask = blocker_mask
            parked.witness_mask = witness_mask
            if not blocker_mask:
                if resolved is None:
                    resolved = []
                resolved.append(parked)
        if resolved:
            self._finish(key, parked_list, resolved)

    def _finish(self, key: str, parked_list: List[_ParkedProposal],
                resolved: List[_ParkedProposal]) -> None:
        """Unpark ``resolved`` and fire their callbacks, in parking order.

        The parked map is updated *before* any callback runs: callbacks
        mutate the history and re-enter the notify path, and must observe a
        consistent registry.
        """
        if len(resolved) == len(parked_list):
            self._parked_by_key.pop(key, None)
        else:
            remaining = [p for p in parked_list if p.blocker_mask]
            self._parked_by_key[key] = remaining
        self._parked -= len(resolved)
        now = self._now()
        for parked in resolved:
            waited = now - parked.parked_at
            self.total_waits += 1
            self.total_wait_ms += waited
            parked.on_resolved(not parked.witness_mask, waited)

    def parked_count(self) -> int:
        """Number of proposals currently delayed by the wait condition.

        Maintained as a running counter — this is sampled per tick by the
        overload stats, so it must not rescan the parked map.
        """
        return self._parked

    def has_parked(self, key: str) -> bool:
        """Whether any proposal is parked on ``key`` (used by the history GC)."""
        return key in self._parked_by_key

    def drop_command(self, command_id: CommandId, key: str) -> None:
        """Remove any parked proposal for a command (used on ballot preemption)."""
        parked_list = self._parked_by_key.get(key)
        if not parked_list:
            return
        remaining = [p for p in parked_list if p.command_id != command_id]
        if len(remaining) != len(parked_list):
            self._parked -= len(parked_list) - len(remaining)
            if remaining:
                self._parked_by_key[key] = remaining
            else:
                self._parked_by_key.pop(key, None)
