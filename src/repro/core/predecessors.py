"""Predecessor computation and the wait condition.

These are the two auxiliary functions of Figure 3 in the paper:

* :func:`compute_predecessors` — the set of conflicting commands that must be
  ordered before a command proposed at a given timestamp, optionally
  constrained by a recovery whitelist.
* :class:`WaitManager` — the WAIT function.  In the paper WAIT blocks the
  acceptor thread; in the discrete-event simulation it is implemented as a
  registry of *parked* proposals that are re-evaluated every time the status
  or predecessor set of a conflicting command changes.  When the blocking
  condition clears, the manager reports OK or NACK to a callback supplied by
  the replica.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Set

from repro.consensus.command import Command, CommandId
from repro.consensus.timestamps import LogicalTimestamp
from repro.core.history import CommandHistory


def compute_predecessors(history: CommandHistory, command: Command,
                         timestamp: LogicalTimestamp,
                         whitelist: Optional[FrozenSet[CommandId]]) -> Set[CommandId]:
    """COMPUTEPREDECESSORS from Figure 3.

    With no whitelist, the predecessors of ``command`` at ``timestamp`` are
    every conflicting command the node has seen with a smaller timestamp.

    With a whitelist (only used during recovery of a possibly fast-decided
    command), a conflicting command is a predecessor if it is in the
    whitelist, or if it has progressed past the proposal phases
    (slow-pending / accepted / stable) with a smaller timestamp.
    """
    predecessors: Set[CommandId] = set()
    for entry in history.conflicting_with(command):
        if whitelist is None:
            if entry.timestamp < timestamp:
                predecessors.add(entry.command_id)
        else:
            if entry.command_id in whitelist:
                predecessors.add(entry.command_id)
            elif entry.status.survived_proposal and entry.timestamp < timestamp:
                predecessors.add(entry.command_id)
    return predecessors


@dataclass
class _ParkedProposal:
    """A proposal whose reply is delayed by the wait condition."""

    command: Command
    timestamp: LogicalTimestamp
    on_resolved: Callable[[bool, float], None]
    parked_at: float


class WaitManager:
    """Implements WAIT (Figure 3, lines 4-8) without blocking threads.

    The manager is owned by a replica.  ``evaluate`` either resolves the
    proposal immediately or parks it; ``notify_change(key)`` must be called by
    the replica whenever a command on ``key`` changes status or predecessor
    set, so parked proposals can be re-checked.

    The resolution callback receives ``(ok, waited_ms)`` where ``ok`` is the
    OK/NACK outcome of WAIT and ``waited_ms`` is how long the proposal was
    parked (0 for immediate resolutions) — the latter feeds Figure 11(b).
    """

    def __init__(self, history: CommandHistory, now: Callable[[], float],
                 enabled: bool = True) -> None:
        self._history = history
        self._now = now
        self._enabled = enabled
        self._parked_by_key: Dict[str, List[_ParkedProposal]] = {}
        self.total_waits = 0
        self.total_wait_ms = 0.0

    # ------------------------------------------------------------ predicates

    def _scan(self, command: Command, timestamp: LogicalTimestamp) -> tuple:
        """One pass over the conflicting entries: ``(blockers, nack_witnesses)``.

        A conflicting command *blocks* when it has a greater timestamp, does
        not list ``command`` among its predecessors, and has not yet reached
        an accepted/stable status; candidates that have are *NACK witnesses*.
        The two partition the same candidate set, so the wait condition needs
        only one scan of the per-key history bucket to decide park/OK/NACK.
        """
        blockers: List = []
        witnesses: List = []
        command_id = command.command_id
        for entry in self._history.conflicting_with(command):
            if entry.timestamp <= timestamp:
                continue
            if command_id in entry.predecessors:
                continue
            if entry.status.is_finalizing:
                witnesses.append(entry)
            else:
                blockers.append(entry)
        return blockers, witnesses

    # -------------------------------------------------------------- main API

    def evaluate(self, command: Command, timestamp: LogicalTimestamp,
                 on_resolved: Callable[[bool, float], None]) -> None:
        """Run WAIT for a proposal, resolving now or parking it.

        Args:
            command: the proposed command.
            timestamp: the proposed timestamp.
            on_resolved: called with ``(ok, waited_ms)`` once WAIT terminates.
        """
        blockers, witnesses = self._scan(command, timestamp)
        if blockers and self._enabled:
            parked = _ParkedProposal(command=command, timestamp=timestamp,
                                     on_resolved=on_resolved, parked_at=self._now())
            self._parked_by_key.setdefault(command.key, []).append(parked)
            return
        if blockers and not self._enabled:
            # Ablation mode: a proposal that would have waited is rejected outright.
            on_resolved(False, 0.0)
            return
        on_resolved(not witnesses, 0.0)

    def notify_change(self, key: str) -> None:
        """Re-evaluate proposals parked on ``key`` after a history change."""
        parked_list = self._parked_by_key.get(key)
        if not parked_list:
            return
        still_parked: List[_ParkedProposal] = []
        resolved: List[tuple] = []
        for parked in parked_list:
            blockers, witnesses = self._scan(parked.command, parked.timestamp)
            if blockers:
                still_parked.append(parked)
                continue
            waited = self._now() - parked.parked_at
            resolved.append((parked, not witnesses, waited))
        if still_parked:
            self._parked_by_key[key] = still_parked
        else:
            self._parked_by_key.pop(key, None)
        for parked, ok, waited in resolved:
            self.total_waits += 1
            self.total_wait_ms += waited
            parked.on_resolved(ok, waited)

    def parked_count(self) -> int:
        """Number of proposals currently delayed by the wait condition."""
        return sum(len(v) for v in self._parked_by_key.values())

    def drop_command(self, command_id: CommandId, key: str) -> None:
        """Remove any parked proposal for a command (used on ballot preemption)."""
        parked_list = self._parked_by_key.get(key)
        if not parked_list:
            return
        remaining = [p for p in parked_list if p.command.command_id != command_id]
        if remaining:
            self._parked_by_key[key] = remaining
        else:
            self._parked_by_key.pop(key, None)
