"""Naive reference implementations of the decision-path data structures.

These are the pre-optimization ``CommandHistory`` / ``compute_predecessors`` /
``WaitManager`` implementations, kept verbatim as an executable specification:
plain ``Set[CommandId]`` predecessor sets, an unordered per-key index, and a
wait condition that re-scans every parked proposal on every history change.

The production implementations in :mod:`repro.core.history` and
:mod:`repro.core.predecessors` replace the sets with interned integer bitsets,
the per-key index with timestamp-sorted buckets, and the full re-scan with
incremental blocker bookkeeping.  The differential test
(``tests/test_core_bitset_differential.py``) drives both against random
command streams and asserts identical predecessor sets, park/OK/NACK
outcomes and GC behaviour — which is what makes the optimized structures
trustworthy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, Iterator, List, Optional, Set

from repro.consensus.ballots import Ballot
from repro.consensus.command import Command, CommandId
from repro.consensus.timestamps import LogicalTimestamp
from repro.core.history import CommandStatus


@dataclass(slots=True)
class ReferenceHistoryEntry:
    """One row of ``H_i`` in the naive representation."""

    command: Command
    timestamp: LogicalTimestamp
    predecessors: Set[CommandId]
    status: CommandStatus
    ballot: Ballot
    forced: bool = False

    @property
    def command_id(self) -> CommandId:
        """Id of the command this entry describes."""
        return self.command.command_id


class ReferenceCommandHistory:
    """Set-based command history with an unordered per-key index."""

    def __init__(self) -> None:
        self._entries: Dict[CommandId, ReferenceHistoryEntry] = {}
        self._by_key: Dict[str, Set[CommandId]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, command_id: CommandId) -> bool:
        return command_id in self._entries

    def get(self, command_id: CommandId) -> Optional[ReferenceHistoryEntry]:
        return self._entries.get(command_id)

    def update(self, command: Command, timestamp: LogicalTimestamp,
               predecessors: Iterable[CommandId], status: CommandStatus,
               ballot: Ballot, forced: bool = False) -> ReferenceHistoryEntry:
        entry = self._entries.get(command.command_id)
        if entry is None:
            entry = ReferenceHistoryEntry(command=command, timestamp=timestamp,
                                          predecessors=set(predecessors), status=status,
                                          ballot=ballot, forced=forced)
            self._entries[command.command_id] = entry
            self._by_key.setdefault(command.key, set()).add(command.command_id)
        else:
            entry.command = command
            entry.timestamp = timestamp
            entry.predecessors = set(predecessors)
            entry.status = status
            entry.ballot = ballot
            entry.forced = forced
        return entry

    def remove(self, command_id: CommandId) -> None:
        entry = self._entries.pop(command_id, None)
        if entry is not None:
            bucket = self._by_key.get(entry.command.key)
            if bucket is not None:
                bucket.discard(command_id)
                if not bucket:
                    del self._by_key[entry.command.key]

    def entries(self) -> Iterator[ReferenceHistoryEntry]:
        return iter(self._entries.values())

    def conflicting_with(self, command: Command) -> Iterator[ReferenceHistoryEntry]:
        for command_id in self._by_key.get(command.key, ()):  # same key = candidate conflict
            if command_id == command.command_id:
                continue
            entry = self._entries[command_id]
            if entry.command.conflicts_with(command):
                yield entry

    def predecessors_of(self, command_id: CommandId) -> Set[CommandId]:
        entry = self._entries.get(command_id)
        if entry is None:
            return set()
        return set(entry.predecessors)

    def status_of(self, command_id: CommandId) -> Optional[CommandStatus]:
        entry = self._entries.get(command_id)
        return entry.status if entry is not None else None


def reference_compute_predecessors(history: ReferenceCommandHistory, command: Command,
                                   timestamp: LogicalTimestamp,
                                   whitelist: Optional[FrozenSet[CommandId]]) -> Set[CommandId]:
    """COMPUTEPREDECESSORS over the naive history (Figure 3)."""
    predecessors: Set[CommandId] = set()
    for entry in history.conflicting_with(command):
        if whitelist is None:
            if entry.timestamp < timestamp:
                predecessors.add(entry.command_id)
        else:
            if entry.command_id in whitelist:
                predecessors.add(entry.command_id)
            elif entry.status.survived_proposal and entry.timestamp < timestamp:
                predecessors.add(entry.command_id)
    return predecessors


@dataclass
class _ReferenceParked:
    """A proposal whose reply is delayed by the wait condition."""

    command: Command
    timestamp: LogicalTimestamp
    on_resolved: Callable[[bool, float], None]
    parked_at: float


class ReferenceWaitManager:
    """WAIT implemented as a full re-scan of every parked proposal."""

    def __init__(self, history: ReferenceCommandHistory, now: Callable[[], float],
                 enabled: bool = True) -> None:
        self._history = history
        self._now = now
        self._enabled = enabled
        self._parked_by_key: Dict[str, List[_ReferenceParked]] = {}
        self.total_waits = 0
        self.total_wait_ms = 0.0

    def _scan(self, command: Command, timestamp: LogicalTimestamp) -> tuple:
        blockers: List = []
        witnesses: List = []
        command_id = command.command_id
        for entry in self._history.conflicting_with(command):
            if entry.timestamp <= timestamp:
                continue
            if command_id in entry.predecessors:
                continue
            if entry.status.is_finalizing:
                witnesses.append(entry)
            else:
                blockers.append(entry)
        return blockers, witnesses

    def evaluate(self, command: Command, timestamp: LogicalTimestamp,
                 on_resolved: Callable[[bool, float], None]) -> None:
        blockers, witnesses = self._scan(command, timestamp)
        if blockers and self._enabled:
            parked = _ReferenceParked(command=command, timestamp=timestamp,
                                      on_resolved=on_resolved, parked_at=self._now())
            self._parked_by_key.setdefault(command.key, []).append(parked)
            return
        if blockers and not self._enabled:
            # Ablation mode: a proposal that would have waited is rejected outright.
            on_resolved(False, 0.0)
            return
        on_resolved(not witnesses, 0.0)

    def notify_change(self, key: str) -> None:
        parked_list = self._parked_by_key.get(key)
        if not parked_list:
            return
        still_parked: List[_ReferenceParked] = []
        resolved: List[tuple] = []
        for parked in parked_list:
            blockers, witnesses = self._scan(parked.command, parked.timestamp)
            if blockers:
                still_parked.append(parked)
                continue
            waited = self._now() - parked.parked_at
            resolved.append((parked, not witnesses, waited))
        if still_parked:
            self._parked_by_key[key] = still_parked
        else:
            self._parked_by_key.pop(key, None)
        for parked, ok, waited in resolved:
            self.total_waits += 1
            self.total_wait_ms += waited
            parked.on_resolved(ok, waited)

    def parked_count(self) -> int:
        return sum(len(v) for v in self._parked_by_key.values())

    def has_parked(self, key: str) -> bool:
        return key in self._parked_by_key

    def drop_command(self, command_id: CommandId, key: str) -> None:
        parked_list = self._parked_by_key.get(key)
        if not parked_list:
            return
        remaining = [p for p in parked_list if p.command.command_id != command_id]
        if remaining:
            self._parked_by_key[key] = remaining
        else:
            self._parked_by_key.pop(key, None)
