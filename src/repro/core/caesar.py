"""The CAESAR replica: multi-leader Generalized Consensus by timestamp agreement.

One :class:`CaesarReplica` instance plays both roles the paper describes:

* **command leader** for the commands its co-located clients submit — it runs
  the fast proposal phase, and when needed the slow proposal and retry
  phases, before broadcasting the STABLE decision;
* **acceptor** for every command in the system — it evaluates proposals
  against its history ``H``, enforces the wait condition, and delivers stable
  commands in predecessor order.

The phase structure, message names and decision rules follow the pseudocode
of Figures 3-5 of the paper; the recovery phase lives in
:mod:`repro.core.recovery`.  Dispatch, quorum tracking, ballot bookkeeping
and the failure detector come from the runtime kernel
(:mod:`repro.runtime.kernel`) — this module contains protocol logic only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set

from repro.consensus.ballots import Ballot
from repro.consensus.command import Command, CommandId
from repro.consensus.interface import DecisionKind
from repro.consensus.quorums import QuorumSystem
from repro.consensus.timestamps import LogicalTimestamp, TimestampGenerator
from repro.core.config import CaesarConfig
from repro.core.delivery import DeliveryManager
from repro.core.history import CommandHistory, CommandStatus
from repro.core.messages import (
    FastPropose,
    FastProposeReply,
    Recovery,
    RecoveryReply,
    Retry,
    RetryReply,
    SlowPropose,
    SlowProposeReply,
    Stable,
)
from repro.core.predecessors import WaitManager, compute_predecessor_mask
from repro.core.recovery import RecoveryManager
from repro.kvstore.state_machine import StateMachine
from repro.runtime.kernel import BallotRegister, ProtocolKernel, QuorumTracker, handles
from repro.sim.costs import CostModel
from repro.sim.network import Network
from repro.sim.node import Timer
from repro.sim.simulator import Simulator

#: Leader-side phases a command can be in.
PHASE_FAST = "fast_proposal"
PHASE_SLOW = "slow_proposal"
PHASE_RETRY = "retry"
PHASE_DONE = "done"

#: Shared instance for the (very common) empty predecessor set carried by
#: wire messages, so the hot path does not allocate a fresh frozenset per
#: broadcast at low conflict rates.
_EMPTY_FROZENSET: FrozenSet = frozenset()


def _freeze(ids) -> FrozenSet:
    """Frozen copy of ``ids``, reusing one shared object when empty."""
    return frozenset(ids) if ids else _EMPTY_FROZENSET


@dataclass
class LeaderState:
    """Book-keeping the command leader keeps while driving one command."""

    command: Command
    ballot: Ballot
    phase: str
    timestamp: LogicalTimestamp
    whitelist: Optional[FrozenSet[CommandId]]
    votes: QuorumTracker = field(default_factory=QuorumTracker.unreachable)
    predecessors: Set[CommandId] = field(default_factory=set)
    timer: Optional[Timer] = None
    started_at: float = 0.0
    phase_started_at: float = 0.0
    went_slow: bool = False
    recovered: bool = False


class CaesarReplica(ProtocolKernel):
    """A CAESAR node (command leader + acceptor) on the simulated substrate.

    Args:
        node_id: index of this replica in the cluster.
        sim: shared simulator.
        network: shared network.
        quorums: quorum sizes (classic and fast) for the cluster size.
        state_machine: local replicated state machine.
        config: protocol configuration.
        cost_model: CPU cost model.
    """

    protocol_name = "caesar"

    def __init__(self, node_id: int, sim: Simulator, network: Network, quorums: QuorumSystem,
                 state_machine: StateMachine, config: Optional[CaesarConfig] = None,
                 cost_model: Optional[CostModel] = None) -> None:
        super().__init__(node_id, sim, network, quorums, state_machine, cost_model)
        self.config = config or CaesarConfig()
        self.timestamps = TimestampGenerator(node_id)
        self.history = CommandHistory()
        self.wait_manager = WaitManager(self.history, lambda: self.sim.now,
                                        enabled=self.config.wait_condition_enabled)
        self.delivery = DeliveryManager(self.history, self._execute_stable,
                                        on_delivered=self._after_delivery)
        self.leader_states: Dict[CommandId, LeaderState] = {}
        self.ballots = BallotRegister()
        self.wait_time_samples: List[float] = []
        self.recovery = RecoveryManager(self)
        if self.config.recovery_enabled:
            self.use_failure_detector(self.config.heartbeat_every_ms,
                                      self.config.suspect_after_ms,
                                      self.recovery.on_suspect)

    # ----------------------------------------------------------- client path

    def propose(self, command: Command) -> None:
        """Become the leader of ``command`` and start its fast proposal phase."""
        timestamp = self.timestamps.next_timestamp()
        ballot = Ballot.initial(self.node_id)
        self.ballots.setdefault(command.command_id, ballot)
        self._start_fast_proposal(command, ballot, timestamp, whitelist=None)

    # ------------------------------------------------------- leader: phases

    def _start_fast_proposal(self, command: Command, ballot: Ballot,
                             timestamp: LogicalTimestamp,
                             whitelist: Optional[FrozenSet[CommandId]],
                             recovered: bool = False) -> None:
        """FASTPROPOSALPHASE (Figure 4, lines P1-P10)."""
        state = LeaderState(command=command, ballot=ballot, phase=PHASE_FAST,
                            timestamp=timestamp, whitelist=whitelist,
                            votes=QuorumTracker(self.quorums.fast),
                            started_at=self.sim.now, phase_started_at=self.sim.now,
                            recovered=recovered)
        self.leader_states[command.command_id] = state
        state.timer = self.set_timer(self.config.fast_proposal_timeout_ms,
                                     lambda: self._on_fast_proposal_timeout(command.command_id))
        proposal = FastPropose(command=command, ballot=ballot, timestamp=timestamp,
                               whitelist=whitelist)
        self.broadcast(proposal, size_bytes=64 + command.payload_size)
        self.track_retransmit(("lead", command.command_id), proposal,
                              size_bytes=64 + command.payload_size,
                              tracker=state.votes,
                              done=lambda s=state: s.phase == PHASE_DONE)

    def _start_slow_proposal(self, state: LeaderState) -> None:
        """SLOWPROPOSALPHASE (Figure 4, lines P21-P30), after a fast-quorum timeout."""
        self.stats.slow_proposals += 1
        state.phase = PHASE_SLOW
        state.votes = QuorumTracker(self.quorums.classic)
        state.phase_started_at = self.sim.now
        state.went_slow = True
        proposal = SlowPropose(command=state.command, ballot=state.ballot,
                               timestamp=state.timestamp,
                               predecessors=_freeze(state.predecessors))
        self.broadcast(proposal, size_bytes=64 + state.command.payload_size)
        self.track_retransmit(("lead", state.command.command_id), proposal,
                              size_bytes=64 + state.command.payload_size,
                              tracker=state.votes,
                              done=lambda s=state: s.phase == PHASE_DONE)

    def _start_retry(self, state: LeaderState) -> None:
        """RETRYPHASE (Figure 4, lines R1-R4)."""
        self.stats.retries += 1
        state.phase = PHASE_RETRY
        state.votes = QuorumTracker(self.quorums.classic)
        state.went_slow = True
        command_id = state.command.command_id
        self.record_phase_time(command_id, "propose", self.sim.now - state.phase_started_at)
        state.phase_started_at = self.sim.now
        retry = Retry(command=state.command, ballot=state.ballot,
                      timestamp=state.timestamp,
                      predecessors=_freeze(state.predecessors))
        self.broadcast(retry, size_bytes=64 + state.command.payload_size)
        self.track_retransmit(("lead", command_id), retry,
                              size_bytes=64 + state.command.payload_size,
                              tracker=state.votes,
                              done=lambda s=state: s.phase == PHASE_DONE)

    def _start_stable(self, state: LeaderState) -> None:
        """STABLEPHASE (Figure 4, lines S1): broadcast the final decision."""
        command_id = state.command.command_id
        if state.phase == PHASE_RETRY:
            self.record_phase_time(command_id, "retry", self.sim.now - state.phase_started_at)
        else:
            self.record_phase_time(command_id, "propose", self.sim.now - state.phase_started_at)
        if state.timer is not None:
            state.timer.cancel()
        state.phase = PHASE_DONE
        self.resolve_retransmit(("lead", command_id))
        if state.recovered:
            kind = DecisionKind.RECOVERED
        elif state.went_slow:
            kind = DecisionKind.SLOW
        else:
            kind = DecisionKind.FAST
        if kind is DecisionKind.FAST:
            self.stats.fast_decisions += 1
        else:
            self.stats.slow_decisions += 1
        self.record_decided(command_id, kind)
        self.record_phase_time(command_id, "deliver_start", 0.0)
        self.decisions.get(command_id)  # ensure record exists for local proposals
        self.broadcast(Stable(command=state.command, ballot=state.ballot,
                              timestamp=state.timestamp,
                              predecessors=_freeze(state.predecessors)),
                       size_bytes=64 + state.command.payload_size)

    def _on_fast_proposal_timeout(self, command_id: CommandId) -> None:
        """Fall back to the slow proposal phase when a fast quorum is unavailable."""
        state = self.leader_states.get(command_id)
        if state is None or state.phase != PHASE_FAST:
            return
        replies = state.votes.payloads()
        if len(replies) < self.quorums.classic:
            # Not even a classic quorum yet: keep waiting (the cluster may have
            # more than f slow/crashed nodes right now).
            state.timer = self.set_timer(self.config.fast_proposal_timeout_ms,
                                         lambda: self._on_fast_proposal_timeout(command_id))
            return
        self._merge_fast_replies(state)
        if any(not reply.ok for reply in replies):
            self._start_retry(state)
        else:
            self._start_slow_proposal(state)

    def _merge_fast_replies(self, state: LeaderState) -> List[FastProposeReply]:
        """Aggregate reply timestamps/predecessors (Figure 4, lines P3-P4)."""
        replies = state.votes.payloads()
        timestamps = [reply.timestamp for reply in replies]
        if timestamps:
            state.timestamp = max(timestamps + [state.timestamp])
        for reply in replies:
            state.predecessors.update(reply.predecessors)
        state.predecessors.discard(state.command.command_id)
        return replies

    # -------------------------------------------------- acceptor: proposals

    @handles(FastPropose)
    def _on_fast_propose(self, src: int, message: FastPropose) -> None:
        """Acceptor side of the fast proposal phase (Figure 4, lines P11-P20)."""
        command = message.command
        command_id = command.command_id
        if not self.ballots.allows(command_id, message.ballot):
            return
        existing = self.history.get(command_id)
        if existing is not None and existing.status is CommandStatus.STABLE:
            # Already decided (e.g. a recovery finished first); nothing to do.
            return
        if (existing is not None and existing.status is CommandStatus.ACCEPTED
                and not message.ballot > existing.ballot):
            # A retransmitted proposal at the same ballot must not downgrade
            # the entry a later retry already promoted to ACCEPTED.
            return
        self.ballots[command_id] = message.ballot
        self.timestamps.observe(message.timestamp)
        whitelist_mask = (None if message.whitelist is None
                          else self.history.mask_from_ids(message.whitelist))
        predecessors = compute_predecessor_mask(self.history, command, message.timestamp,
                                                whitelist_mask)
        self.consume_cpu(self.cost_model.dependency_cost(predecessors.bit_count()))
        entry = self.history.update(command, message.timestamp, predecessors,
                                    CommandStatus.FAST_PENDING, message.ballot,
                                    forced=message.whitelist is not None)
        self.wait_manager.notify_entry(entry)

        def resolved(ok: bool, waited_ms: float) -> None:
            self._answer_proposal(src, command, message.ballot, message.timestamp,
                                  predecessors, ok, waited_ms, fast=True)

        self.wait_manager.evaluate(command, message.timestamp, resolved)

    @handles(SlowPropose)
    def _on_slow_propose(self, src: int, message: SlowPropose) -> None:
        """Acceptor side of the slow proposal phase (Figure 4, lines P31-P39)."""
        command = message.command
        command_id = command.command_id
        if not self.ballots.allows(command_id, message.ballot):
            return
        existing = self.history.get(command_id)
        if existing is not None and existing.status is CommandStatus.STABLE:
            return
        if (existing is not None and existing.status is CommandStatus.ACCEPTED
                and not message.ballot > existing.ballot):
            # See _on_fast_propose: never downgrade ACCEPTED on a resend.
            return
        self.ballots[command_id] = message.ballot
        self.timestamps.observe(message.timestamp)
        predecessors = compute_predecessor_mask(self.history, command, message.timestamp)
        predecessors |= self.history.mask_from_ids(message.predecessors)
        self_index = self.history.index_of(command_id)
        if self_index is not None:
            predecessors &= ~(1 << self_index)
        self.consume_cpu(self.cost_model.dependency_cost(predecessors.bit_count()))
        entry = self.history.update(command, message.timestamp, predecessors,
                                    CommandStatus.SLOW_PENDING, message.ballot)
        self.wait_manager.notify_entry(entry)

        def resolved(ok: bool, waited_ms: float) -> None:
            self._answer_proposal(src, command, message.ballot, message.timestamp,
                                  predecessors, ok, waited_ms, fast=False)

        self.wait_manager.evaluate(command, message.timestamp, resolved)

    def _answer_proposal(self, leader: int, command: Command, ballot: Ballot,
                         timestamp: LogicalTimestamp, predecessors: int,
                         ok: bool, waited_ms: float, fast: bool) -> None:
        """Send the (possibly delayed) OK/NACK answer for a proposal.

        ``predecessors`` is the interned bitmask computed when the proposal
        was evaluated; it is translated back to wire-format command ids only
        at the send below.
        """
        command_id = command.command_id
        if waited_ms > 0:
            self.wait_time_samples.append(waited_ms)
        if not self.ballots.allows(command_id, ballot):
            # A higher ballot took over while this proposal was parked.
            return
        entry = self.history.get(command_id)
        if entry is not None and entry.status in (CommandStatus.ACCEPTED, CommandStatus.STABLE):
            # A retry or stable overtook the parked proposal; the leader no
            # longer needs this answer.
            return
        if ok:
            reply_ts = timestamp
            reply_pred = predecessors
            status = CommandStatus.FAST_PENDING if fast else CommandStatus.SLOW_PENDING
            entry = self.history.update(command, timestamp, reply_pred, status, ballot,
                                        forced=entry.forced if entry is not None else False)
        else:
            self.stats.nacks_sent += 1
            reply_ts = self.timestamps.suggestion_greater_than(timestamp)
            reply_pred = compute_predecessor_mask(self.history, command, reply_ts)
            entry = self.history.update(command, reply_ts, reply_pred,
                                        CommandStatus.REJECTED, ballot)
        self.wait_manager.notify_entry(entry)
        reply_cls = FastProposeReply if fast else SlowProposeReply
        self.send(leader, reply_cls(command_id=command_id, ballot=ballot, timestamp=reply_ts,
                                    predecessors=self.history.ids_from_mask(reply_pred),
                                    ok=ok))

    # ------------------------------------------------------- leader: replies

    @handles(FastProposeReply)
    def _on_fast_propose_reply(self, src: int, message: FastProposeReply) -> None:
        """Leader side of fast-proposal reply aggregation (Figure 4, lines P2-P10)."""
        state = self.leader_states.get(message.command_id)
        if state is None or state.phase != PHASE_FAST or state.ballot != message.ballot:
            return
        if not state.votes.vote(src, message):
            if self._fast_quorum_unreachable(state):
                self._on_fast_proposal_timeout(message.command_id)
            return
        replies = self._merge_fast_replies(state)
        if any(not reply.ok for reply in replies):
            self._start_retry(state)
        else:
            self._start_stable(state)

    def _fast_quorum_unreachable(self, state: LeaderState) -> bool:
        """True when every node the detector still trusts has already voted.

        The missing fast-quorum votes can then only come from suspected
        nodes, so waiting out the full proposal timer is pointless; the
        leader falls back immediately.  Requires a classic quorum of actual
        votes so the timeout handler can complete the slow fallback.
        """
        detector = self.failure_detector
        if detector is None or not detector.suspected:
            return False
        if state.votes.count < self.quorums.classic:
            return False
        voters = set(state.votes.voters())
        return all(node_id in voters or node_id in detector.suspected
                   for node_id in self.network.node_ids)

    @handles(SlowProposeReply)
    def _on_slow_propose_reply(self, src: int, message: SlowProposeReply) -> None:
        """Leader side of slow-proposal reply aggregation (Figure 4, lines P22-P30)."""
        state = self.leader_states.get(message.command_id)
        if state is None or state.phase != PHASE_SLOW or state.ballot != message.ballot:
            return
        if not state.votes.vote(src, message):
            return
        replies = state.votes.payloads()
        timestamps = [reply.timestamp for reply in replies]
        state.timestamp = max(timestamps + [state.timestamp])
        for reply in replies:
            state.predecessors.update(reply.predecessors)
        state.predecessors.discard(message.command_id)
        if any(not reply.ok for reply in replies):
            self._start_retry(state)
        else:
            self._start_stable(state)

    @handles(Retry)
    def _on_retry(self, src: int, message: Retry) -> None:
        """Acceptor side of the retry phase (Figure 4, lines R5-R8): never rejects."""
        command = message.command
        command_id = command.command_id
        if not self.ballots.allows(command_id, message.ballot):
            return
        existing = self.history.get(command_id)
        if existing is not None and existing.status is CommandStatus.STABLE:
            return
        self.ballots[command_id] = message.ballot
        self.timestamps.observe(message.timestamp)
        entry = self.history.update(command, message.timestamp,
                                    self.history.mask_from_ids(message.predecessors),
                                    CommandStatus.ACCEPTED, message.ballot)
        extra = compute_predecessor_mask(self.history, command, message.timestamp)
        self.consume_cpu(self.cost_model.dependency_cost(extra.bit_count()))
        self.wait_manager.drop_command(command_id, command.key)
        self.wait_manager.notify_entry(entry)
        self.send(src, RetryReply(command_id=command_id, ballot=message.ballot,
                                  timestamp=message.timestamp,
                                  predecessors=self.history.ids_from_mask(extra)))

    @handles(RetryReply)
    def _on_retry_reply(self, src: int, message: RetryReply) -> None:
        """Leader side of retry aggregation (Figure 4, lines R2-R4)."""
        state = self.leader_states.get(message.command_id)
        if state is None or state.phase != PHASE_RETRY or state.ballot != message.ballot:
            return
        if not state.votes.vote(src, message):
            return
        for reply in state.votes.payloads():
            state.predecessors.update(reply.predecessors)
        state.predecessors.discard(message.command_id)
        self._start_stable(state)

    # --------------------------------------------------------- stable phase

    @handles(Stable)
    def _on_stable(self, src: int, message: Stable) -> None:
        """Acceptor side of the stable phase (Figure 4, lines S2-S7)."""
        command = message.command
        command_id = command.command_id
        existing = self.history.get(command_id)
        if existing is not None and existing.status is CommandStatus.STABLE:
            return
        self.ballots.observe(command_id, message.ballot)
        self.timestamps.observe(message.timestamp)
        predecessors = self.history.mask_from_ids(message.predecessors)
        self_index = self.history.index_of(command_id)
        if self_index is not None:
            predecessors &= ~(1 << self_index)
        entry = self.history.update(command, message.timestamp, predecessors,
                                    CommandStatus.STABLE, message.ballot)
        self.wait_manager.drop_command(command_id, command.key)
        self.wait_manager.notify_entry(entry)
        self.consume_cpu(self.cost_model.dependency_cost(predecessors.bit_count()))
        self.delivery.on_stable(command)
        self.note_progress_gap()

    # --------------------------------------------------------------- catch-up

    def catchup_need(self):
        """Stuck when pending stable commands wait on unknown predecessors."""
        if self.delivery.pending_count() == 0:
            return None
        missing = self.delivery.missing_predecessors()
        if not missing:
            return None
        tokens = tuple(f"{a}:{b}" for a, b in sorted(missing)[:32])
        return (0, tokens)

    def catchup_supply(self, cursor, want):
        """Replay Stable messages for the requested commands known stable here."""
        supplies = []
        for token in want:
            first, _, second = token.partition(":")
            try:
                command_id = (int(first), int(second))
            except ValueError:
                continue
            entry = self.history.get(command_id)
            if entry is None or entry.status is not CommandStatus.STABLE:
                continue
            supplies.append(Stable(command=entry.command, ballot=entry.ballot,
                                   timestamp=entry.timestamp,
                                   predecessors=entry.predecessors))
        return supplies

    # ------------------------------------------------------------- recovery

    @handles(Recovery)
    def _on_recovery(self, src: int, message: Recovery) -> None:
        """Acceptor side of the recovery prepare (delegated to the manager)."""
        self.recovery.on_recovery_message(src, message)

    @handles(RecoveryReply)
    def _on_recovery_reply(self, src: int, message: RecoveryReply) -> None:
        """Recovering-leader side of recovery replies (delegated to the manager)."""
        self.recovery.on_recovery_reply(src, message)

    def _execute_stable(self, command: Command) -> None:
        """Callback from the delivery manager: apply the command locally."""
        decision = self.decisions.get(command.command_id)
        self.execute_command(command)
        if decision is not None and decision.decided_at is not None:
            self.record_phase_time(command.command_id, "deliver",
                                   self.sim.now - decision.decided_at)

    def _after_delivery(self, command: Command) -> None:
        """Hook run after each delivery: waiting proposals may now resolve."""
        entry = self.history.get(command.command_id)
        if entry is not None:
            self.wait_manager.notify_entry(entry)

    # ------------------------------------------------------------- telemetry

    def slow_path_ratio(self) -> Optional[float]:
        """Fraction of locally proposed, completed commands decided on the slow path."""
        ratio = self.fast_path_ratio()
        if ratio is None:
            return None
        return 1.0 - ratio

    def average_wait_ms(self) -> float:
        """Mean time proposals spent parked in the wait condition on this node."""
        if not self.wait_time_samples:
            return 0.0
        return sum(self.wait_time_samples) / len(self.wait_time_samples)
