"""CAESAR's recovery phase (Section V-E, Figure 5).

When the failure detector of a node suspects the leader of a command whose
decision has not yet reached this node as STABLE, the node attempts to become
the command's new leader.  It runs a Paxos-like prepare: it picks a ballot
higher than any it has seen for that command, collects the per-command state
of a classic quorum, keeps only the tuples reported for the highest ballot
(``RecoverySet``) and resumes the decision from the most advanced status it
finds — possibly reconstructing the predecessor *whitelist* of a command that
may already have been decided on the fast path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Set

from repro.consensus.ballots import Ballot
from repro.consensus.command import Command, CommandId
from repro.core.history import CommandStatus
from repro.core.messages import Recovery, RecoveryReply
from repro.runtime.kernel import QuorumTracker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.caesar import CaesarReplica


@dataclass
class RecoveryAttempt:
    """State kept by the recovering node while gathering RECOVERYR replies."""

    command: Command
    ballot: Ballot
    votes: QuorumTracker = field(default_factory=QuorumTracker.unreachable)
    dispatched: bool = False


class RecoveryManager:
    """Drives per-command recovery for one replica."""

    def __init__(self, replica: "CaesarReplica") -> None:
        self.replica = replica
        self._attempts: Dict[CommandId, RecoveryAttempt] = {}
        self._suspected: Set[int] = set()

    # ------------------------------------------------------------ triggering

    def on_suspect(self, peer: int) -> None:
        """Failure-detector callback: schedule recovery of the peer's commands."""
        if not self.replica.config.recovery_enabled:
            return
        self._suspected.add(peer)
        self.replica.stats.recoveries_started += 0  # counter bumped per command below
        delay = self._stagger_delay()
        self.replica.set_timer(delay, lambda: self._recover_commands_of(peer))

    def _stagger_delay(self) -> float:
        """Delay recovery by this node's rank among live nodes to avoid duels."""
        alive_lower = sum(1 for node_id in self.replica.network.node_ids
                          if node_id < self.replica.node_id and node_id not in self._suspected)
        return self.replica.config.recovery_delay_ms * (1 + alive_lower)

    def _recover_commands_of(self, peer: int) -> None:
        """Start recovery for every non-stable command currently led by ``peer``."""
        pending: List[Command] = []
        for entry in list(self.replica.history.entries()):
            if entry.status is CommandStatus.STABLE:
                continue
            leader = self.replica.ballots.get(entry.command_id, entry.ballot).node_id
            if leader == peer:
                pending.append(entry.command)
        for command in pending:
            self.start_recovery(command)

    # --------------------------------------------------------------- prepare

    def start_recovery(self, command: Command) -> None:
        """RECOVERYPHASE (Figure 5, lines 1-4): prepare with a higher ballot."""
        command_id = command.command_id
        entry = self.replica.history.get(command_id)
        if entry is not None and entry.status is CommandStatus.STABLE:
            return
        current = self.replica.ballots.get(command_id, Ballot.initial(command.origin))
        ballot = current.next_for(self.replica.node_id)
        self.replica.ballots[command_id] = ballot
        self._attempts[command_id] = RecoveryAttempt(
            command=command, ballot=ballot,
            votes=QuorumTracker(self.replica.quorums.classic))
        self.replica.stats.recoveries_started += 1
        self.replica.broadcast(Recovery(command=command, ballot=ballot))
        # Cast the local vote explicitly: the ballot register was bumped above,
        # so the self-delivered broadcast fails the acceptor's ``ballot <=
        # current`` freshness check and would never be answered.  Without the
        # self vote a classic quorum is unreachable whenever only
        # ``classic - 1`` peers are live (e.g. 3 replicas, one dead).
        self.on_recovery_reply(self.replica.node_id, self._local_reply(command_id, ballot))

    def _local_reply(self, command_id: CommandId, ballot: Ballot) -> RecoveryReply:
        """This replica's own tuple, shaped like an acceptor's reply."""
        entry = self.replica.history.get(command_id)
        if entry is None:
            return RecoveryReply(command_id=command_id, ballot=ballot, known=False)
        return RecoveryReply(command_id=command_id, ballot=ballot, known=True,
                             entry_ballot=entry.ballot, timestamp=entry.timestamp,
                             predecessors=entry.predecessors,
                             status=entry.status.value, forced=entry.forced)

    def on_recovery_message(self, src: int, message: Recovery) -> None:
        """Acceptor side (Figure 5, lines 28-33): answer with the local tuple."""
        command_id = message.command.command_id
        current = self.replica.ballots.get(command_id)
        if current is not None and message.ballot <= current:
            return
        self.replica.ballots[command_id] = message.ballot
        self.replica.send(src, self._local_reply(command_id, message.ballot))

    # ------------------------------------------------------------ dispatching

    def on_recovery_reply(self, src: int, message: RecoveryReply) -> None:
        """Collect RECOVERYR replies and dispatch once a classic quorum answered."""
        attempt = self._attempts.get(message.command_id)
        if attempt is None or attempt.dispatched or message.ballot != attempt.ballot:
            return
        if not attempt.votes.vote(src, message):
            return
        attempt.dispatched = True
        self._dispatch(attempt)

    def _dispatch(self, attempt: RecoveryAttempt) -> None:
        """Figure 5, lines 5-27: resume from the most advanced surviving state."""
        replica = self.replica
        command = attempt.command
        known = [reply for reply in attempt.votes.payloads() if reply.known]
        if not known:
            timestamp = replica.timestamps.next_timestamp()
            replica._start_fast_proposal(command, attempt.ballot, timestamp, whitelist=None,
                                         recovered=True)
            replica.stats.recoveries_completed += 1
            return

        max_ballot = max(reply.entry_ballot for reply in known)
        recovery_set = [reply for reply in known if reply.entry_ballot == max_ballot]

        stable = [r for r in recovery_set if r.status == CommandStatus.STABLE.value]
        accepted = [r for r in recovery_set if r.status == CommandStatus.ACCEPTED.value]
        rejected = [r for r in recovery_set if r.status == CommandStatus.REJECTED.value]
        slow_pending = [r for r in recovery_set if r.status == CommandStatus.SLOW_PENDING.value]
        fast_pending = [r for r in recovery_set if r.status == CommandStatus.FAST_PENDING.value]

        if stable:
            chosen = stable[0]
            self._resume_stable(attempt, chosen)
        elif accepted:
            chosen = accepted[0]
            self._resume_retry(attempt, chosen)
        elif rejected:
            timestamp = replica.timestamps.next_timestamp()
            replica._start_fast_proposal(command, attempt.ballot, timestamp, whitelist=None,
                                         recovered=True)
        elif slow_pending:
            chosen = slow_pending[0]
            self._resume_slow_proposal(attempt, chosen)
        elif fast_pending:
            self._resume_fast_pending(attempt, fast_pending)
        else:  # pragma: no cover - statuses above are exhaustive
            timestamp = replica.timestamps.next_timestamp()
            replica._start_fast_proposal(command, attempt.ballot, timestamp, whitelist=None,
                                         recovered=True)
        replica.stats.recoveries_completed += 1

    def _resume_stable(self, attempt: RecoveryAttempt, reply: RecoveryReply) -> None:
        """A quorum member already knows the decision: re-broadcast STABLE."""
        from repro.core.caesar import PHASE_RETRY, LeaderState  # local import avoids a cycle

        replica = self.replica
        state = LeaderState(command=attempt.command, ballot=attempt.ballot, phase=PHASE_RETRY,
                            timestamp=reply.timestamp, whitelist=None,
                            predecessors=set(reply.predecessors),
                            started_at=replica.sim.now, phase_started_at=replica.sim.now,
                            recovered=True)
        replica.leader_states[attempt.command.command_id] = state
        replica._start_stable(state)

    def _resume_retry(self, attempt: RecoveryAttempt, reply: RecoveryReply) -> None:
        """An accepted tuple survives: finish through a retry phase."""
        from repro.core.caesar import PHASE_FAST, LeaderState

        replica = self.replica
        state = LeaderState(command=attempt.command, ballot=attempt.ballot, phase=PHASE_FAST,
                            timestamp=reply.timestamp, whitelist=None,
                            predecessors=set(reply.predecessors),
                            started_at=replica.sim.now, phase_started_at=replica.sim.now,
                            recovered=True)
        replica.leader_states[attempt.command.command_id] = state
        replica._start_retry(state)

    def _resume_slow_proposal(self, attempt: RecoveryAttempt, reply: RecoveryReply) -> None:
        """A slow-pending tuple survives: re-run the slow proposal phase."""
        from repro.core.caesar import PHASE_FAST, LeaderState

        replica = self.replica
        state = LeaderState(command=attempt.command, ballot=attempt.ballot, phase=PHASE_FAST,
                            timestamp=reply.timestamp, whitelist=None,
                            predecessors=set(reply.predecessors),
                            started_at=replica.sim.now, phase_started_at=replica.sim.now,
                            recovered=True)
        replica.leader_states[attempt.command.command_id] = state
        replica._start_slow_proposal(state)

    def _resume_fast_pending(self, attempt: RecoveryAttempt,
                             fast_pending: List[RecoveryReply]) -> None:
        """Only fast-pending tuples survive: the command may have decided fast.

        The recovering leader re-proposes with the *same* timestamp and, when
        enough of the quorum reported the command, forces a whitelist of the
        predecessors that every possible fast quorum must have agreed on
        (Figure 5, lines 16-25).
        """
        replica = self.replica
        timestamp = fast_pending[0].timestamp
        union_pred: Set[CommandId] = set()
        for reply in fast_pending:
            union_pred |= set(reply.predecessors)
        union_pred.discard(attempt.command.command_id)

        forced = [r for r in fast_pending if r.forced]
        majority = replica.quorums.recovery_majority
        whitelist: Optional[FrozenSet[CommandId]]
        if forced:
            whitelist = frozenset(union_pred)
        elif len(fast_pending) >= majority:
            whitelist = frozenset(
                pred for pred in union_pred
                if sum(1 for r in fast_pending if pred not in r.predecessors) < majority
            )
        else:
            whitelist = None
        replica._start_fast_proposal(attempt.command, attempt.ballot, timestamp,
                                     whitelist=whitelist, recovered=True)
