"""Runtime checkers for CAESAR's correctness invariants.

The paper proves Consistency via two theorems (Section V-F), which its TLA+
specification states as ``GraphInvariant`` and ``Agreement``.  This module
re-states those invariants over a *running cluster* so tests and long
simulations can check them continuously:

* :func:`check_graph_invariant` — for any two conflicting commands that are
  stable on some node, the one with the smaller final timestamp appears in
  the predecessor set of the other (before loop-breaking adjusts edges of
  already-delivered commands, the delivered order is used as the witness).
* :func:`check_agreement` — no two nodes hold stable entries for the same
  command with different timestamps.
* :func:`check_execution_consistency` — conflicting commands are executed in
  the same relative order on every replica (the end-to-end observable
  property of Generalized Consensus).
* :func:`check_timestamp_order` — on every replica, conflicting commands are
  executed in increasing final-timestamp order.

Each checker returns a list of human-readable violation descriptions; an
empty list means the invariant holds.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.caesar import CaesarReplica
from repro.core.history import CommandStatus


def check_agreement(replicas: Sequence[CaesarReplica]) -> List[str]:
    """No two replicas decided the same command at different timestamps."""
    violations: List[str] = []
    decided_timestamps = {}
    for replica in replicas:
        if replica.crashed:
            continue
        for entry in replica.history.stable_entries():
            known = decided_timestamps.get(entry.command_id)
            if known is None:
                decided_timestamps[entry.command_id] = (replica.node_id, entry.timestamp)
            elif known[1] != entry.timestamp:
                violations.append(
                    f"command {entry.command_id} stable at {entry.timestamp} on node "
                    f"{replica.node_id} but at {known[1]} on node {known[0]}")
    return violations


def check_graph_invariant(replicas: Sequence[CaesarReplica]) -> List[str]:
    """Conflicting stable commands are ordered by timestamp on every replica.

    The delivered order is the observable witness: if both commands were
    executed by a replica, the smaller-timestamp one must have been executed
    first (BREAKLOOP may have pruned the explicit predecessor edge once both
    sides are stable, so the predecessor set alone is not the right witness).
    """
    violations: List[str] = []
    for replica in replicas:
        if replica.crashed:
            continue
        stable_entries = list(replica.history.stable_entries())
        for i, first in enumerate(stable_entries):
            for second in stable_entries[i + 1:]:
                if not first.command.conflicts_with(second.command):
                    continue
                earlier, later = ((first, second) if first.timestamp < second.timestamp
                                  else (second, first))
                pos_earlier = replica.execution_log.position(earlier.command_id)
                pos_later = replica.execution_log.position(later.command_id)
                if pos_earlier is None or pos_later is None:
                    # Not executed yet on this replica; the predecessor edge
                    # must still be present so delivery happens in order.
                    if (pos_later is None and pos_earlier is None
                            and earlier.command_id not in later.predecessors):
                        violations.append(
                            f"node {replica.node_id}: {earlier.command_id} "
                            f"(ts {earlier.timestamp}) missing from predecessors of "
                            f"{later.command_id} (ts {later.timestamp})")
                    continue
                if pos_earlier > pos_later:
                    violations.append(
                        f"node {replica.node_id}: executed {later.command_id} "
                        f"(ts {later.timestamp}) before {earlier.command_id} "
                        f"(ts {earlier.timestamp})")
    return violations


def check_execution_consistency(replicas: Sequence) -> List[str]:
    """Conflicting commands appear in the same relative order on every replica.

    Works for any protocol (it only relies on the execution logs), so the
    baselines are checked with the same function as CAESAR.
    """
    violations: List[str] = []
    live = [replica for replica in replicas if not replica.crashed]
    for i, first in enumerate(live):
        for second in live[i + 1:]:
            for pair in first.execution_log.conflicting_order_violations(second.execution_log):
                violations.append(
                    f"nodes {first.node_id}/{second.node_id} disagree on the order of "
                    f"{pair[0]} and {pair[1]}")
    return violations


def check_timestamp_order(replicas: Sequence[CaesarReplica]) -> List[str]:
    """Execution order of conflicting commands follows their final timestamps."""
    violations: List[str] = []
    for replica in replicas:
        if replica.crashed:
            continue
        executed = [command for command in replica.execution_log]
        for i, first in enumerate(executed):
            first_entry = replica.history.get(first.command_id)
            if first_entry is None or first_entry.status is not CommandStatus.STABLE:
                continue
            for second in executed[i + 1:]:
                if not first.conflicts_with(second):
                    continue
                second_entry = replica.history.get(second.command_id)
                if second_entry is None or second_entry.status is not CommandStatus.STABLE:
                    continue
                if first_entry.timestamp > second_entry.timestamp:
                    violations.append(
                        f"node {replica.node_id}: executed {first.command_id} "
                        f"(ts {first_entry.timestamp}) before {second.command_id} "
                        f"(ts {second_entry.timestamp}) despite larger timestamp")
    return violations


def check_all(replicas: Sequence[CaesarReplica]) -> List[str]:
    """Run every CAESAR invariant checker and concatenate the violations."""
    violations: List[str] = []
    violations.extend(check_agreement(replicas))
    violations.extend(check_graph_invariant(replicas))
    violations.extend(check_execution_consistency(replicas))
    violations.extend(check_timestamp_order(replicas))
    return violations
