"""Delivery of stable commands (stable phase, Figure 3 lines 9-17).

Once a command is stable locally it may only be executed after every command
in its predecessor set has been executed.  Because predecessor sets are
computed against *proposed* timestamps (which a retry can later raise), two
stable commands can reference each other; BREAKLOOP removes the edge that
contradicts the final timestamp order, so the remaining precedence graph is
acyclic and delivery always makes progress.

The delivered set is an interned bitmask drawn from the history's id
interner, so DELIVERABLE is a single mask test and BREAKLOOP touches only
the pending commands whose predecessor mask actually references the newly
stable command — not every pending command on every stable event.

:class:`HistoryCompactor` is the (opt-in) garbage collector: once a command
has been delivered by *every* replica it can never influence another
decision, so each replica's history entry for it is removed — long overload
runs stop scanning dead entries.  This is a cluster-level oracle and is
therefore driven from the harness, not from the protocol.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.consensus.command import Command, CommandId
from repro.core.history import CommandHistory, CommandStatus, HistoryEntry


class DeliveryManager:
    """Per-replica executor of stable commands in predecessor order.

    Args:
        history: the replica's command history (shared, mutated by BREAKLOOP).
        execute: callback that applies a command to the state machine.
        on_delivered: optional hook invoked after each delivery (used by the
            replica to unblock waiting proposals and record metrics).
    """

    def __init__(self, history: CommandHistory, execute: Callable[[Command], None],
                 on_delivered: Optional[Callable[[Command], None]] = None) -> None:
        self._history = history
        self._execute = execute
        self._on_delivered = on_delivered
        self._delivered_mask = 0
        self._pending: Dict[CommandId, Command] = {}
        self.delivered_order: List[CommandId] = []

    @property
    def delivered_count(self) -> int:
        """Number of commands executed by this replica so far."""
        return len(self.delivered_order)

    def is_delivered(self, command_id: CommandId) -> bool:
        """Whether the command has been executed locally."""
        index = self._history.index_of(command_id)
        return index is not None and (self._delivered_mask >> index) & 1 == 1

    def pending_count(self) -> int:
        """Stable commands still waiting for their predecessors."""
        return len(self._pending)

    def missing_predecessors(self) -> Set[CommandId]:
        """Predecessors blocking pending commands that are not stable locally.

        These are the commands whose STABLE message this replica has not seen
        (lost, or decided while it was crashed/partitioned) — exactly what a
        catch-up request should ask peers for.  Predecessors that are stable
        locally but undelivered are excluded: delivery will reach them.
        """
        missing: Set[CommandId] = set()
        history = self._history
        for command_id in self._pending:
            entry = history.get(command_id)
            if entry is None:
                continue
            for pred in history.iter_mask(entry.pred_mask & ~self._delivered_mask):
                pred_entry = history.get(pred)
                if pred_entry is None or pred_entry.status is not CommandStatus.STABLE:
                    missing.add(pred)
        return missing

    # --------------------------------------------------------------- helpers

    def _break_loop(self, entry: HistoryEntry) -> None:
        """BREAKLOOP from Figure 3: reconcile mutual predecessor references.

        For the newly stable command ``c`` and every *stable* command ``c̄`` in
        its predecessor set: if ``c̄`` has a smaller final timestamp, ``c`` must
        not appear among ``c̄``'s predecessors; if ``c̄`` has a larger final
        timestamp, ``c̄`` must not appear among ``c``'s predecessors.
        """
        history = self._history
        my_bit = 1 << entry.index
        my_key = entry.ts_key()
        mask = entry.pred_mask
        remove = 0
        remaining = mask
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            pred_entry = history.entry_at(low.bit_length() - 1)
            if pred_entry is None or pred_entry.status is not CommandStatus.STABLE:
                continue
            if pred_entry.ts_key() < my_key:
                pred_entry.pred_mask &= ~my_bit
            else:
                remove |= low
        if remove:
            entry.pred_mask = mask & ~remove

    # -------------------------------------------------------------- main API

    def on_stable(self, command: Command) -> List[Command]:
        """Register a newly stable command and deliver everything now possible.

        Returns the list of commands delivered as a result (in order).
        """
        command_id = command.command_id
        history = self._history
        index = history.index_of(command_id)
        if index is not None and (self._delivered_mask >> index) & 1:
            return []
        entry = history.get(command_id)
        if not self._pending:
            # Fast path for the overwhelmingly common case: nothing else is
            # waiting and every predecessor has already been delivered, so
            # the command can be executed without the loop-breaking or
            # ready-list machinery (which would reach the same conclusion).
            if (entry is not None and entry.status is CommandStatus.STABLE
                    and entry.pred_mask & ~self._delivered_mask == 0):
                self._deliver(command, entry.index)
                return [command]
        self._pending[command_id] = command
        if entry is not None and entry.status is CommandStatus.STABLE:
            self._break_loop(entry)
            # The new command may also unblock older stable commands whose
            # predecessor sets reference it; exactly those pairs are
            # re-reconciled (every other pending pair is unchanged since the
            # stable event that last reconciled it).
            bit = 1 << entry.index
            my_key = entry.ts_key()
            for other_id in list(self._pending.keys()):
                if other_id == command_id:
                    continue
                other = history.get(other_id)
                if (other is None or other.status is not CommandStatus.STABLE
                        or not other.pred_mask & bit):
                    continue
                if my_key < other.ts_key():
                    entry.pred_mask &= ~(1 << other.index)
                else:
                    other.pred_mask &= ~bit
        return self._drain()

    def _deliver(self, command: Command, index: int) -> None:
        self._delivered_mask |= 1 << index
        self.delivered_order.append(command.command_id)
        self._execute(command)
        if self._on_delivered is not None:
            self._on_delivered(command)

    def _drain(self) -> List[Command]:
        """Deliver pending stable commands until no more are deliverable."""
        delivered_now: List[Command] = []
        history = self._history
        progress = True
        while progress:
            progress = False
            # Deliver in timestamp order so conflicting commands follow the
            # agreed order; non-conflicting ties are broken deterministically.
            ready: List[tuple] = []
            delivered_mask = self._delivered_mask
            for command_id, command in self._pending.items():
                entry = history.get(command_id)
                if entry is None:
                    continue
                if entry.pred_mask & ~delivered_mask == 0:
                    ready.append((entry.ts_key(), command_id, command, entry))
            ready.sort(key=itemgetter(0))
            for _, command_id, command, entry in ready:
                if command_id not in self._pending:
                    continue
                del self._pending[command_id]
                self._deliver(command, entry.index)
                delivered_now.append(command)
                progress = True
        return delivered_now

    def retry_pending(self) -> List[Command]:
        """Re-attempt delivery (used after external history mutations)."""
        return self._drain()


class HistoryCompactor:
    """Cluster-level garbage collection of histories (opt-in).

    Watches every replica's ``delivered_order`` through a cursor; once a
    command has been delivered by all replicas it is removed from each
    replica's :class:`~repro.core.history.CommandHistory` via the (previously
    unused) ``remove`` path.  Removal at a replica is deferred while any
    proposal is parked on the command's key there, so the incremental wait
    bookkeeping never sees an entry vanish from under it.

    Collection changes subsequent predecessor sets (collected commands no
    longer appear), which is safe — a command delivered everywhere is ordered
    before anything proposed later at every replica — but it does change
    message bytes relative to a non-collected run.  It is therefore *off by
    default* and only enabled explicitly (``--history-gc`` on long overload
    runs), never for figure reproduction.
    """

    def __init__(self, replicas: Sequence[object], set_timer: Callable,
                 interval_ms: float) -> None:
        self._replicas = [r for r in replicas
                          if hasattr(r, "history") and hasattr(r, "delivery")]
        self._set_timer = set_timer
        self.interval_ms = interval_ms
        self._cursors = [0] * len(self._replicas)
        self._seen: Dict[CommandId, int] = {}
        self._deferred: List[CommandId] = []
        self.commands_removed = 0

    def start(self) -> None:
        """Arm the periodic collection timer."""
        self._set_timer(self.interval_ms, self._tick)

    def _tick(self) -> None:
        self.collect()
        self._set_timer(self.interval_ms, self._tick)

    def collect(self) -> int:
        """Run one collection pass; returns how many commands were removed."""
        full = len(self._replicas)
        if full == 0:
            return 0
        ready: List[CommandId] = self._deferred
        self._deferred = []
        seen = self._seen
        for i, replica in enumerate(self._replicas):
            order = replica.delivery.delivered_order
            cursor = min(self._cursors[i], len(order))
            for command_id in order[cursor:]:
                count = seen.get(command_id, 0) + 1
                if count == full:
                    seen.pop(command_id, None)
                    ready.append(command_id)
                else:
                    seen[command_id] = count
            self._cursors[i] = len(order)
        removed = 0
        for command_id in ready:
            if self._remove_everywhere(command_id):
                removed += 1
            else:
                self._deferred.append(command_id)
        self.commands_removed += removed
        return removed

    def _remove_everywhere(self, command_id: CommandId) -> bool:
        """Remove one command's entry at every replica, or defer entirely."""
        entries = []
        for replica in self._replicas:
            entry = replica.history.get(command_id)
            if entry is None:
                continue
            wait_manager = getattr(replica, "wait_manager", None)
            if wait_manager is not None and wait_manager.has_parked(entry.command.key):
                return False
            entries.append((replica, entry))
        for replica, _ in entries:
            replica.history.remove(command_id)
        return True
