"""Delivery of stable commands (stable phase, Figure 3 lines 9-17).

Once a command is stable locally it may only be executed after every command
in its predecessor set has been executed.  Because predecessor sets are
computed against *proposed* timestamps (which a retry can later raise), two
stable commands can reference each other; BREAKLOOP removes the edge that
contradicts the final timestamp order, so the remaining precedence graph is
acyclic and delivery always makes progress.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from repro.consensus.command import Command, CommandId
from repro.core.history import CommandHistory, CommandStatus, HistoryEntry


class DeliveryManager:
    """Per-replica executor of stable commands in predecessor order.

    Args:
        history: the replica's command history (shared, mutated by BREAKLOOP).
        execute: callback that applies a command to the state machine.
        on_delivered: optional hook invoked after each delivery (used by the
            replica to unblock waiting proposals and record metrics).
    """

    def __init__(self, history: CommandHistory, execute: Callable[[Command], None],
                 on_delivered: Optional[Callable[[Command], None]] = None) -> None:
        self._history = history
        self._execute = execute
        self._on_delivered = on_delivered
        self._delivered: Set[CommandId] = set()
        self._pending: Dict[CommandId, Command] = {}
        self.delivered_order: List[CommandId] = []

    @property
    def delivered_count(self) -> int:
        """Number of commands executed by this replica so far."""
        return len(self.delivered_order)

    def is_delivered(self, command_id: CommandId) -> bool:
        """Whether the command has been executed locally."""
        return command_id in self._delivered

    def pending_count(self) -> int:
        """Stable commands still waiting for their predecessors."""
        return len(self._pending)

    def missing_predecessors(self) -> Set[CommandId]:
        """Predecessors blocking pending commands that are not stable locally.

        These are the commands whose STABLE message this replica has not seen
        (lost, or decided while it was crashed/partitioned) — exactly what a
        catch-up request should ask peers for.  Predecessors that are stable
        locally but undelivered are excluded: delivery will reach them.
        """
        missing: Set[CommandId] = set()
        for command_id in self._pending:
            entry = self._history.get(command_id)
            if entry is None:
                continue
            for pred in entry.predecessors:
                if pred in self._delivered:
                    continue
                pred_entry = self._history.get(pred)
                if pred_entry is None or pred_entry.status is not CommandStatus.STABLE:
                    missing.add(pred)
        return missing

    # --------------------------------------------------------------- helpers

    def _break_loop(self, command_id: CommandId) -> None:
        """BREAKLOOP from Figure 3: reconcile mutual predecessor references.

        For the newly stable command ``c`` and every *stable* command ``c̄`` in
        its predecessor set: if ``c̄`` has a smaller final timestamp, ``c`` must
        not appear among ``c̄``'s predecessors; if ``c̄`` has a larger final
        timestamp, ``c̄`` must not appear among ``c``'s predecessors.
        """
        entry = self._history.get(command_id)
        if entry is None or entry.status is not CommandStatus.STABLE:
            return
        to_remove: Set[CommandId] = set()
        for pred_id in list(entry.predecessors):
            pred_entry = self._history.get(pred_id)
            if pred_entry is None or pred_entry.status is not CommandStatus.STABLE:
                continue
            if pred_entry.timestamp < entry.timestamp:
                pred_entry.predecessors.discard(command_id)
            else:
                to_remove.add(pred_id)
        if to_remove:
            entry.predecessors -= to_remove

    def _deliverable(self, entry: HistoryEntry) -> bool:
        """DELIVERABLE: every predecessor has already been executed locally."""
        return all(pred in self._delivered for pred in entry.predecessors)

    # -------------------------------------------------------------- main API

    def on_stable(self, command: Command) -> List[Command]:
        """Register a newly stable command and deliver everything now possible.

        Returns the list of commands delivered as a result (in order).
        """
        command_id = command.command_id
        if command_id in self._delivered:
            return []
        if not self._pending:
            # Fast path for the overwhelmingly common case: nothing else is
            # waiting and every predecessor has already been delivered, so
            # the command can be executed without the loop-breaking or
            # ready-list machinery (which would reach the same conclusion).
            entry = self._history.get(command_id)
            if (entry is not None and entry.status is CommandStatus.STABLE
                    and self._deliverable(entry)):
                self._delivered.add(command_id)
                self.delivered_order.append(command_id)
                self._execute(command)
                if self._on_delivered is not None:
                    self._on_delivered(command)
                return [command]
        self._pending[command_id] = command
        self._break_loop(command_id)
        # The new command may also unblock older stable commands whose
        # predecessor sets referenced it; their loops are re-examined too.
        for other_id in list(self._pending.keys()):
            if other_id != command_id:
                self._break_loop(other_id)
        return self._drain()

    def _drain(self) -> List[Command]:
        """Deliver pending stable commands until no more are deliverable."""
        delivered_now: List[Command] = []
        progress = True
        while progress:
            progress = False
            # Deliver in timestamp order so conflicting commands follow the
            # agreed order; non-conflicting ties are broken deterministically.
            ready: List[tuple] = []
            for command_id, command in self._pending.items():
                entry = self._history.get(command_id)
                if entry is None:
                    continue
                if self._deliverable(entry):
                    ready.append((entry.timestamp, command_id, command))
            ready.sort(key=lambda item: item[0])
            for _, command_id, command in ready:
                if command_id not in self._pending:
                    continue
                del self._pending[command_id]
                self._delivered.add(command_id)
                self.delivered_order.append(command_id)
                self._execute(command)
                if self._on_delivered is not None:
                    self._on_delivered(command)
                delivered_now.append(command)
                progress = True
        return delivered_now

    def retry_pending(self) -> List[Command]:
        """Re-attempt delivery (used after external history mutations)."""
        return self._drain()
