"""Configuration knobs for the CAESAR replica."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CaesarConfig:
    """Tunable parameters of a CAESAR replica.

    Attributes:
        fast_proposal_timeout_ms: how long a command leader waits for a fast
            quorum of FASTPROPOSE replies before falling back to the slow
            proposal phase with a classic quorum (Section V-D).
        wait_condition_enabled: when ``False`` an acceptor immediately rejects
            a proposal that would otherwise have to wait (ablation of the
            paper's key mechanism; see ``benchmarks/test_ablation_wait.py``).
        recovery_delay_ms: grace period between suspecting a node and starting
            recovery of its pending commands, staggered per node to avoid
            dueling recoveries.
        recovery_enabled: whether replicas react to failure-detector suspicions.
        heartbeat_every_ms: failure-detector heartbeat period.
        suspect_after_ms: failure-detector silence threshold.
    """

    fast_proposal_timeout_ms: float = 1500.0
    wait_condition_enabled: bool = True
    recovery_delay_ms: float = 50.0
    recovery_enabled: bool = True
    heartbeat_every_ms: float = 100.0
    suspect_after_ms: float = 600.0
