"""The per-node command history ``H_i`` (Section V-A of the paper).

``H_i`` maps every command a node has heard about to a tuple
``<c, T, Pred, status, ballot, forced>``.  The history additionally maintains
a per-key index so the predecessor computation and the wait condition can
find the commands conflicting with a given command without scanning
everything the node has ever seen.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional, Set

from repro.consensus.ballots import Ballot
from repro.consensus.command import Command, CommandId
from repro.consensus.timestamps import LogicalTimestamp


class CommandStatus(enum.Enum):
    """Lifecycle of a command inside ``H_i``."""

    FAST_PENDING = "fast-pending"
    SLOW_PENDING = "slow-pending"
    ACCEPTED = "accepted"
    REJECTED = "rejected"
    STABLE = "stable"

    @property
    def is_finalizing(self) -> bool:
        """Statuses that release the wait condition (accepted or stable)."""
        return self in (CommandStatus.ACCEPTED, CommandStatus.STABLE)

    @property
    def survived_proposal(self) -> bool:
        """Statuses beyond the (rejectable) proposal phases."""
        return self in (CommandStatus.SLOW_PENDING, CommandStatus.ACCEPTED, CommandStatus.STABLE)


@dataclass(slots=True)
class HistoryEntry:
    """One row of ``H_i``: the node's knowledge about a single command."""

    command: Command
    timestamp: LogicalTimestamp
    predecessors: Set[CommandId]
    status: CommandStatus
    ballot: Ballot
    forced: bool = False

    @property
    def command_id(self) -> CommandId:
        """Id of the command this entry describes."""
        return self.command.command_id


class CommandHistory:
    """Mutable map from command id to :class:`HistoryEntry`, with a key index."""

    def __init__(self) -> None:
        self._entries: Dict[CommandId, HistoryEntry] = {}
        self._by_key: Dict[str, Set[CommandId]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, command_id: CommandId) -> bool:
        return command_id in self._entries

    def get(self, command_id: CommandId) -> Optional[HistoryEntry]:
        """The entry for a command, or ``None`` if the node has never seen it."""
        return self._entries.get(command_id)

    def update(self, command: Command, timestamp: LogicalTimestamp,
               predecessors: Iterable[CommandId], status: CommandStatus,
               ballot: Ballot, forced: bool = False) -> HistoryEntry:
        """Insert or update the entry for ``command`` (the UPDATE of Section V-A).

        An existing entry is mutated in place rather than replaced, so the
        hot path avoids one allocation per protocol message and concurrent
        holders of the entry (e.g. the delivery manager's loop breaking)
        always observe the node's latest knowledge.
        """
        entry = self._entries.get(command.command_id)
        if entry is None:
            entry = HistoryEntry(command=command, timestamp=timestamp,
                                 predecessors=set(predecessors), status=status,
                                 ballot=ballot, forced=forced)
            self._entries[command.command_id] = entry
            self._by_key.setdefault(command.key, set()).add(command.command_id)
        else:
            entry.command = command
            entry.timestamp = timestamp
            entry.predecessors = set(predecessors)
            entry.status = status
            entry.ballot = ballot
            entry.forced = forced
        return entry

    def remove(self, command_id: CommandId) -> None:
        """Forget a command (garbage collection once stable everywhere)."""
        entry = self._entries.pop(command_id, None)
        if entry is not None:
            bucket = self._by_key.get(entry.command.key)
            if bucket is not None:
                bucket.discard(command_id)
                if not bucket:
                    del self._by_key[entry.command.key]

    def entries(self) -> Iterator[HistoryEntry]:
        """Iterate over every entry (order unspecified)."""
        return iter(self._entries.values())

    def conflicting_with(self, command: Command) -> Iterator[HistoryEntry]:
        """Entries for commands that conflict with ``command`` (excluding itself)."""
        for command_id in self._by_key.get(command.key, ()):  # same key = candidate conflict
            if command_id == command.command_id:
                continue
            entry = self._entries[command_id]
            if entry.command.conflicts_with(command):
                yield entry

    def predecessors_of(self, command_id: CommandId) -> Set[CommandId]:
        """The GETPREDECESSORS accessor; empty set when the command is unknown."""
        entry = self._entries.get(command_id)
        if entry is None:
            return set()
        return set(entry.predecessors)

    def status_of(self, command_id: CommandId) -> Optional[CommandStatus]:
        """Status of a command, or ``None`` if unknown."""
        entry = self._entries.get(command_id)
        return entry.status if entry is not None else None

    def stable_entries(self) -> Iterator[HistoryEntry]:
        """Entries currently marked stable."""
        for entry in self._entries.values():
            if entry.status is CommandStatus.STABLE:
                yield entry
