"""The per-node command history ``H_i`` (Section V-A of the paper).

``H_i`` maps every command a node has heard about to a tuple
``<c, T, Pred, status, ballot, forced>``.  Two representation choices make
the decision path cheap:

* **Interned ids.**  Every :data:`~repro.consensus.command.CommandId` the
  node ever sees is assigned a dense integer index, and predecessor sets are
  stored as Python int bitmasks (bit ``k`` set = the command with index ``k``
  is a predecessor).  Set union/membership/difference on the hot path become
  single C-level integer operations, and UPDATE stores a mask without
  copying.  The wire format is untouched: messages still carry
  ``FrozenSet[CommandId]``, translated at the codec boundary with
  :meth:`CommandHistory.mask_from_ids` / :meth:`CommandHistory.ids_from_mask`.
* **Timestamp-ordered per-key buckets.**  The per-key index keeps entries
  sorted by timestamp, so the predecessor computation takes the ``<
  timestamp`` prefix by binary search (as a precomputed bucket mask minus a
  usually-empty suffix) and the wait condition scans only the ``> timestamp``
  suffix.

Interner indices are *never* recycled, even when :meth:`CommandHistory.remove`
garbage-collects an entry — a late retransmission referencing a collected
command must keep resolving to the same bit so delivered-set bitmasks stay
valid.
"""

from __future__ import annotations

import enum
from bisect import bisect_left, bisect_right
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple, Union

from repro.consensus.ballots import Ballot
from repro.consensus.command import Command, CommandId
from repro.consensus.timestamps import LogicalTimestamp

#: Shared empty frozenset returned whenever a mask materializes to nothing.
_EMPTY_IDS: FrozenSet[CommandId] = frozenset()


class CommandStatus(enum.Enum):
    """Lifecycle of a command inside ``H_i``."""

    FAST_PENDING = "fast-pending"
    SLOW_PENDING = "slow-pending"
    ACCEPTED = "accepted"
    REJECTED = "rejected"
    STABLE = "stable"

    @property
    def is_finalizing(self) -> bool:
        """Statuses that release the wait condition (accepted or stable)."""
        return self in (CommandStatus.ACCEPTED, CommandStatus.STABLE)

    @property
    def survived_proposal(self) -> bool:
        """Statuses beyond the (rejectable) proposal phases."""
        return self in (CommandStatus.SLOW_PENDING, CommandStatus.ACCEPTED, CommandStatus.STABLE)


class HistoryEntry:
    """One row of ``H_i``: the node's knowledge about a single command.

    ``pred_mask`` is the predecessor set as an interned bitmask; the
    :attr:`predecessors` view materializes it to a ``frozenset`` of ids on
    demand (cached until the mask changes) for cold-path readers such as
    recovery, catch-up supply and the invariant checks.
    """

    __slots__ = ("command", "timestamp", "status", "ballot", "forced",
                 "index", "_history", "_pred_mask", "_pred_ids")

    def __init__(self, command: Command, timestamp: LogicalTimestamp,
                 pred_mask: int, status: CommandStatus, ballot: Ballot,
                 forced: bool, index: int, history: "CommandHistory") -> None:
        self.command = command
        self.timestamp = timestamp
        self.status = status
        self.ballot = ballot
        self.forced = forced
        #: This command's own interner index (``1 << index`` is its bit).
        self.index = index
        self._history = history
        self._pred_mask = pred_mask
        self._pred_ids: Optional[FrozenSet[CommandId]] = None

    @property
    def command_id(self) -> CommandId:
        """Id of the command this entry describes."""
        return self.command.command_id

    @property
    def pred_mask(self) -> int:
        """Predecessor set as an interned bitmask."""
        return self._pred_mask

    @pred_mask.setter
    def pred_mask(self, mask: int) -> None:
        if mask != self._pred_mask:
            self._pred_mask = mask
            self._pred_ids = None

    @property
    def predecessors(self) -> FrozenSet[CommandId]:
        """The predecessor set as command ids (cached until the mask changes)."""
        ids = self._pred_ids
        if ids is None:
            ids = self._history.ids_from_mask(self._pred_mask)
            self._pred_ids = ids
        return ids

    def ts_key(self) -> Tuple[int, int]:
        """Sort key equivalent to the timestamp's total order."""
        timestamp = self.timestamp
        return (timestamp.counter, timestamp.node_id)


class _KeyBucket:
    """Entries for one key, kept sorted by timestamp.

    ``keys`` and ``entries`` are parallel lists; ``keys[i]`` is
    ``(counter, node_id, index)`` for ``entries[i]`` (the index component
    makes keys unique, so removal never needs an equality scan).  ``all_mask``
    / ``write_mask`` are the bitmask of every entry / every *writing* entry in
    the bucket — the predecessor computation takes the whole-bucket mask and
    strips the (usually tiny) ``>= timestamp`` suffix instead of scanning the
    prefix.
    """

    __slots__ = ("keys", "entries", "all_mask", "write_mask")

    def __init__(self) -> None:
        self.keys: List[Tuple[int, int, int]] = []
        self.entries: List[HistoryEntry] = []
        self.all_mask = 0
        self.write_mask = 0

    def insert(self, entry: HistoryEntry) -> None:
        timestamp = entry.timestamp
        key = (timestamp.counter, timestamp.node_id, entry.index)
        position = bisect_left(self.keys, key)
        self.keys.insert(position, key)
        self.entries.insert(position, entry)
        bit = 1 << entry.index
        self.all_mask |= bit
        if entry.command.is_write:
            self.write_mask |= bit

    def discard(self, entry: HistoryEntry, timestamp: LogicalTimestamp) -> None:
        """Remove ``entry``, which is currently filed under ``timestamp``."""
        key = (timestamp.counter, timestamp.node_id, entry.index)
        position = bisect_left(self.keys, key)
        if position < len(self.keys) and self.keys[position] == key:
            del self.keys[position]
            del self.entries[position]
            bit = 1 << entry.index
            self.all_mask &= ~bit
            self.write_mask &= ~bit

    def suffix_start(self, timestamp: LogicalTimestamp) -> int:
        """Index of the first entry with a timestamp strictly greater."""
        return bisect_right(self.keys, (timestamp.counter, timestamp.node_id, 1 << 62))

    def prefix_mask(self, timestamp: LogicalTimestamp, writes_only: bool) -> int:
        """Bitmask of entries with a timestamp strictly smaller.

        Computed as the whole-bucket mask minus the ``>= timestamp`` suffix;
        at propose time new timestamps are usually the largest in the bucket,
        so the suffix loop rarely runs.
        """
        mask = self.write_mask if writes_only else self.all_mask
        keys = self.keys
        position = bisect_left(keys, (timestamp.counter, timestamp.node_id))
        if position < len(keys):
            entries = self.entries
            for i in range(position, len(keys)):
                mask &= ~(1 << entries[i].index)
        return mask


class CommandHistory:
    """Mutable map from command id to :class:`HistoryEntry`, with interning.

    Besides the history proper, this object owns the node's
    ``CommandId -> dense int`` interner used by the wait condition and the
    delivery manager, so every bitmask on one node draws from the same index
    space.
    """

    def __init__(self) -> None:
        self._entries: Dict[CommandId, HistoryEntry] = {}
        self._by_key: Dict[str, _KeyBucket] = {}
        self._index_of: Dict[CommandId, int] = {}
        self._id_of: List[CommandId] = []
        self._entry_by_index: List[Optional[HistoryEntry]] = []

    # ------------------------------------------------------------- interning

    def intern(self, command_id: CommandId) -> int:
        """Dense index for a command id, assigning one on first sight."""
        index = self._index_of.get(command_id)
        if index is None:
            index = len(self._id_of)
            self._index_of[command_id] = index
            self._id_of.append(command_id)
            self._entry_by_index.append(None)
        return index

    def index_of(self, command_id: CommandId) -> Optional[int]:
        """Index of an already-interned id, ``None`` if never seen."""
        return self._index_of.get(command_id)

    def id_at(self, index: int) -> CommandId:
        """The command id interned at ``index``."""
        return self._id_of[index]

    def entry_at(self, index: int) -> Optional[HistoryEntry]:
        """The live entry for an interned index, ``None`` when absent."""
        return self._entry_by_index[index]

    def mask_from_ids(self, ids: Iterable[CommandId]) -> int:
        """Bitmask for a collection of command ids (interning as needed)."""
        mask = 0
        for command_id in ids:
            mask |= 1 << self.intern(command_id)
        return mask

    def ids_from_mask(self, mask: int) -> FrozenSet[CommandId]:
        """The command ids whose bits are set in ``mask``."""
        if not mask:
            return _EMPTY_IDS
        id_of = self._id_of
        ids = []
        while mask:
            low = mask & -mask
            ids.append(id_of[low.bit_length() - 1])
            mask ^= low
        return frozenset(ids)

    def iter_mask(self, mask: int) -> Iterator[CommandId]:
        """Iterate the command ids whose bits are set in ``mask``."""
        id_of = self._id_of
        while mask:
            low = mask & -mask
            yield id_of[low.bit_length() - 1]
            mask ^= low

    # ------------------------------------------------------------ collection

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, command_id: CommandId) -> bool:
        return command_id in self._entries

    def get(self, command_id: CommandId) -> Optional[HistoryEntry]:
        """The entry for a command, or ``None`` if the node has never seen it."""
        return self._entries.get(command_id)

    def bucket(self, key: str) -> Optional[_KeyBucket]:
        """The timestamp-sorted bucket for ``key`` (``None`` when empty)."""
        return self._by_key.get(key)

    def update(self, command: Command, timestamp: LogicalTimestamp,
               predecessors: Union[int, Iterable[CommandId]], status: CommandStatus,
               ballot: Ballot, forced: bool = False) -> HistoryEntry:
        """Insert or update the entry for ``command`` (the UPDATE of Section V-A).

        ``predecessors`` is either an interned bitmask (the hot path — stored
        as-is, no copy) or any iterable of command ids (interned on the way
        in).  An existing entry is mutated in place rather than replaced, so
        concurrent holders of the entry (e.g. the delivery manager's loop
        breaking) always observe the node's latest knowledge.
        """
        if isinstance(predecessors, int):
            mask = predecessors
        else:
            mask = self.mask_from_ids(predecessors)
        entry = self._entries.get(command.command_id)
        if entry is None:
            index = self.intern(command.command_id)
            entry = HistoryEntry(command=command, timestamp=timestamp,
                                 pred_mask=mask, status=status, ballot=ballot,
                                 forced=forced, index=index, history=self)
            self._entries[command.command_id] = entry
            self._entry_by_index[index] = entry
            bucket = self._by_key.get(command.key)
            if bucket is None:
                bucket = self._by_key[command.key] = _KeyBucket()
            bucket.insert(entry)
        else:
            if entry.timestamp != timestamp:
                bucket = self._by_key[command.key]
                bucket.discard(entry, entry.timestamp)
                entry.timestamp = timestamp
                bucket.insert(entry)
            entry.command = command
            entry.pred_mask = mask
            entry.status = status
            entry.ballot = ballot
            entry.forced = forced
        return entry

    def remove(self, command_id: CommandId) -> None:
        """Forget a command (garbage collection once stable everywhere).

        The interner mapping is kept so the command's bit stays valid in any
        surviving bitmask (delivered sets, other entries' predecessors).
        """
        entry = self._entries.pop(command_id, None)
        if entry is not None:
            self._entry_by_index[entry.index] = None
            bucket = self._by_key.get(entry.command.key)
            if bucket is not None:
                bucket.discard(entry, entry.timestamp)
                if not bucket.keys:
                    del self._by_key[entry.command.key]

    def entries(self) -> Iterator[HistoryEntry]:
        """Iterate over every entry (order unspecified)."""
        return iter(self._entries.values())

    def conflicting_with(self, command: Command) -> Iterator[HistoryEntry]:
        """Entries for commands that conflict with ``command`` (excluding itself).

        Yields in timestamp order (the bucket order); callers that care about
        order get it for free, callers that do not are unaffected.
        """
        bucket = self._by_key.get(command.key)
        if bucket is None:
            return
        command_id = command.command_id
        for entry in bucket.entries:
            if entry.command_id == command_id:
                continue
            if entry.command.conflicts_with(command):
                yield entry

    def predecessors_of(self, command_id: CommandId) -> FrozenSet[CommandId]:
        """The GETPREDECESSORS accessor; empty set when the command is unknown.

        Returns the entry's cached immutable view — callers must not expect
        a private copy (none of them mutate it; the previous per-call
        ``set()`` copy existed only to protect against that).
        """
        entry = self._entries.get(command_id)
        if entry is None:
            return _EMPTY_IDS
        return entry.predecessors

    def predecessor_mask_of(self, command_id: CommandId) -> int:
        """Bitmask variant of :meth:`predecessors_of` (no allocation at all)."""
        entry = self._entries.get(command_id)
        return entry.pred_mask if entry is not None else 0

    def status_of(self, command_id: CommandId) -> Optional[CommandStatus]:
        """Status of a command, or ``None`` if unknown."""
        entry = self._entries.get(command_id)
        return entry.status if entry is not None else None

    def stable_entries(self) -> Iterator[HistoryEntry]:
        """Entries currently marked stable."""
        for entry in self._entries.values():
            if entry.status is CommandStatus.STABLE:
                yield entry
