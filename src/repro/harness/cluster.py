"""Cluster construction: wire a protocol's replicas onto the simulated substrate.

A :class:`Cluster` bundles the simulator, network, topology and one replica
per site for a chosen protocol.  The same builder serves the tests, the
examples and every benchmark, so all experiments construct their systems in
exactly one way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.consensus.interface import ConsensusReplica
from repro.consensus.quorums import QuorumSystem
from repro.core.caesar import CaesarReplica
from repro.core.config import CaesarConfig
from repro.kvstore.store import KeyValueStore
from repro.sim.batching import BatchingConfig
from repro.sim.costs import CostModel
from repro.sim.failures import CrashInjector
from repro.sim.network import Network, NetworkConfig
from repro.sim.simulator import Simulator
from repro.sim.topology import Topology, ec2_five_sites


@dataclass
class ClusterConfig:
    """Everything needed to build a protocol cluster.

    Attributes:
        protocol: registered protocol name (``caesar``, ``epaxos``,
            ``multipaxos``, ``mencius``, ``m2paxos``).
        topology: latency topology; defaults to the paper's five EC2 sites.
        seed: simulation seed.
        network: jitter / loss configuration.
        cost_model: per-message CPU cost model.
        batching: when set, every replica batches its outgoing messages with
            this policy (the paper's "batching enabled" configuration).
        retransmit: when ``False``, disable the runtime retransmission and
            catch-up layer on every replica (reproduces the pre-retransmission
            safe-but-not-live behaviour under lossy schedules).
        admission: admission-control spec installed on every replica's submit
            path (``"none"``, ``"inflight:K"``, ``"deadline:MS"``; see
            :mod:`repro.runtime.admission`).  ``None`` leaves the submit path
            hook-free.
        history_gc_ms: when set, run a cluster-level
            :class:`~repro.core.delivery.HistoryCompactor` every this many
            virtual ms, removing history entries for commands delivered by
            every replica.  Off by default: collection changes subsequent
            predecessor sets (and therefore message bytes), so it is only for
            long-running load studies, never figure reproduction.
        protocol_options: protocol-specific keyword arguments forwarded to the
            replica constructor (e.g. ``{"config": CaesarConfig(...)}`` or
            ``{"leader_id": 3}`` for Multi-Paxos).
    """

    protocol: str = "caesar"
    topology: Optional[Topology] = None
    seed: int = 1
    network: NetworkConfig = field(default_factory=NetworkConfig)
    cost_model: Optional[CostModel] = None
    batching: Optional[BatchingConfig] = None
    retransmit: bool = True
    admission: Optional[str] = None
    history_gc_ms: Optional[float] = None
    protocol_options: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def from_args(cls, args, **overrides) -> "ClusterConfig":
        """Build a config from CLI-style args; keyword ``overrides`` win.

        Understands the shared vocabulary (``--protocol``, ``--seed``,
        ``--no-retransmit``) and delegates network flags to
        :meth:`NetworkConfig.from_args`.
        """
        kwargs: Dict[str, object] = {
            "protocol": getattr(args, "protocol", cls.protocol),
            "seed": getattr(args, "seed", cls.seed),
            "retransmit": not getattr(args, "no_retransmit", False),
            "admission": getattr(args, "admission", None),
            "history_gc_ms": getattr(args, "history_gc", None),
            "network": NetworkConfig.from_args(args),
        }
        kwargs.update(overrides)
        return cls(**kwargs)


class Cluster:
    """A running set of replicas of one protocol plus the simulation substrate."""

    def __init__(self, config: ClusterConfig, sim: Simulator, network: Network,
                 topology: Topology, replicas: List[ConsensusReplica]) -> None:
        self.config = config
        self.sim = sim
        self.network = network
        self.topology = topology
        self.replicas = replicas
        self.crash_injector = CrashInjector(sim, {r.node_id: r for r in replicas})
        #: cluster-level history garbage collector (``None`` unless the config
        #: sets ``history_gc_ms``); built and armed by :func:`build_cluster`.
        self.compactor = None
        #: total command executions across all replicas (including any a
        #: replica performed before crashing); maintained in O(1) via the
        #: replicas' execution listeners so completion predicates do not have
        #: to rescan every replica's executed set after every event.
        self.executions = 0
        for replica in replicas:
            replica.execution_listener = self._count_execution

    def _count_execution(self) -> None:
        self.executions += 1

    @property
    def size(self) -> int:
        """Number of replicas."""
        return len(self.replicas)

    def replica(self, node_id: int) -> ConsensusReplica:
        """Replica hosted at node index ``node_id``."""
        return self.replicas[node_id]

    def replica_at(self, site: str) -> ConsensusReplica:
        """The single replica hosted at the named site.

        Raises ``ValueError`` when the site hosts several replicas (see
        :meth:`Topology.index_of`); use :meth:`replicas_at` in that case.
        """
        return self.replicas[self.topology.index_of(site)]

    def replicas_at(self, site: str) -> List[ConsensusReplica]:
        """All replicas hosted at the named site (empty when unknown)."""
        return [self.replicas[index] for index in self.topology.indices_of(site)]

    def start(self) -> None:
        """Start per-replica background machinery (failure detectors etc.)."""
        for replica in self.replicas:
            start = getattr(replica, "start", None)
            if callable(start):
                start()

    def run(self, duration_ms: float) -> None:
        """Advance the simulation by ``duration_ms`` of virtual time."""
        self.sim.run(until=self.sim.now + duration_ms)

    def run_until_quiescent(self, max_ms: Optional[float] = None) -> None:
        """Run until no events remain (or until the optional time bound)."""
        until = None if max_ms is None else self.sim.now + max_ms
        self.sim.run(until=until)

    def all_executed(self, command_ids) -> bool:
        """Whether every live replica has executed every given command."""
        for replica in self.replicas:
            if replica.crashed:
                continue
            for command_id in command_ids:
                if not replica.has_executed(command_id):
                    return False
        return True

    def run_until_executed(self, command_ids, deadline_ms: Optional[float] = None,
                           check_every: int = 32) -> bool:
        """Run until every live replica has executed every given command.

        Uses the O(1) execution counter as a cheap gate in front of the exact
        (per-replica, per-command) membership check, and evaluates the
        predicate on a cadence rather than after every event, so the hot loop
        never pays the full rescan.

        Args:
            command_ids: commands that must be executed everywhere.
            deadline_ms: optional bound, relative to the current virtual time.
            check_every: predicate cadence forwarded to ``Simulator.run_until``.

        Returns:
            ``True`` when all commands executed everywhere, ``False`` on
            queue drain or deadline expiry.
        """
        ids = list(command_ids)
        need = len(set(ids))

        def executed_everywhere() -> bool:
            live = sum(1 for r in self.replicas if not r.crashed)
            if self.executions < need * live:
                return False
            return self.all_executed(ids)

        deadline = None if deadline_ms is None else self.sim.now + deadline_ms
        return self.sim.run_until(executed_everywhere, deadline=deadline,
                                  check_every=check_every)

    def check_consistency(self) -> List[tuple]:
        """Cross-check execution logs of all live replicas.

        Returns the list of conflicting-order violations (empty when the run
        satisfies Generalized Consensus consistency).
        """
        violations: List[tuple] = []
        live = [r for r in self.replicas if not r.crashed]
        for i, first in enumerate(live):
            for second in live[i + 1:]:
                violations.extend(first.execution_log.conflicting_order_violations(
                    second.execution_log))
        return violations

    def total_executed(self) -> int:
        """Total number of command executions across live replicas."""
        return sum(r.commands_executed for r in self.replicas if not r.crashed)

    def admission_snapshot(self):
        """Aggregated admission counters across all replicas (``None`` if unset)."""
        from repro.runtime.admission import aggregate_admission

        return aggregate_admission(r.admission for r in self.replicas)


def _build_caesar(node_id: int, sim: Simulator, network: Network, quorums: QuorumSystem,
                  options: Dict[str, object], cost_model: Optional[CostModel]) -> ConsensusReplica:
    return CaesarReplica(node_id, sim, network, quorums, KeyValueStore(),
                         config=options.get("config", CaesarConfig()), cost_model=cost_model)


#: Registry of protocol builders; the baseline protocols register themselves
#: at import time in :mod:`repro.harness.protocols`.
PROTOCOLS: Dict[str, Callable] = {"caesar": _build_caesar}


def register_protocol(name: str, builder: Callable) -> None:
    """Add a protocol builder to the registry (used by the baselines)."""
    PROTOCOLS[name] = builder


def build_cluster(config: Optional[ClusterConfig] = None) -> Cluster:
    """Construct a cluster for the configured protocol on the configured topology."""
    # Importing the baseline registrations lazily avoids a circular import
    # between the harness and the protocol packages.
    from repro.harness import protocols as _protocols  # noqa: F401

    config = config or ClusterConfig()
    if config.protocol not in PROTOCOLS:
        raise ValueError(f"unknown protocol {config.protocol!r}; known: {sorted(PROTOCOLS)}")
    topology = config.topology or ec2_five_sites()
    sim = Simulator(seed=config.seed)
    network = Network(sim, topology, config.network)
    quorums = QuorumSystem.for_cluster(topology.size)
    builder = PROTOCOLS[config.protocol]
    replicas = [builder(node_id, sim, network, quorums, dict(config.protocol_options),
                        config.cost_model)
                for node_id in range(topology.size)]
    if config.batching is not None:
        for replica in replicas:
            replica.enable_batching(config.batching)
    if not config.retransmit:
        for replica in replicas:
            configure = getattr(replica, "configure_retransmit", None)
            if callable(configure):
                configure(enabled=False)
    if config.admission is not None:
        from repro.runtime.admission import admission_policy

        for replica in replicas:
            replica.admission = admission_policy(config.admission)
    cluster = Cluster(config, sim, network, topology, replicas)
    if config.history_gc_ms is not None:
        from repro.core.delivery import HistoryCompactor

        # The compactor is a cluster-level oracle (it needs every replica's
        # delivered_order), so its timer lives on the simulator rather than on
        # any one replica — a replica crash must not stop collection.
        cluster.compactor = HistoryCompactor(
            replicas, lambda delay, callback: sim.schedule(delay, callback),
            interval_ms=config.history_gc_ms)
        cluster.compactor.start()
    return cluster
