"""Per-figure experiment drivers.

Each ``figure*`` function reproduces one figure of the paper's evaluation
(Section VI) and returns a :class:`FigureResult` containing the raw series
and a formatted text table.  The benchmark suite calls these drivers with
scaled-down durations/loads (documented in ``EXPERIMENTS.md``); examples and
users can call them with larger budgets for tighter numbers.

The drivers intentionally report *shape* rather than absolute numbers: the
simulated substrate reproduces message delays, quorum sizes and CPU queuing,
not the authors' JVM/Go runtimes, so who-wins and where-crossovers-fall are
the comparable quantities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.consensus.interface import DecisionKind
from repro.harness.experiment import (
    ExperimentConfig,
    ExperimentResult,
    attach_clients,
    build_experiment_cluster,
    run_experiment,
)
from repro.harness.report import format_series, format_table
from repro.metrics.collector import MetricsCollector
from repro.metrics.stats import throughput_timeline
from repro.sim.batching import BatchingConfig
from repro.sim.costs import CostModel
from repro.sim.failures import ScheduledCrash
from repro.sim.topology import EC2_SHORT_LABELS, EC2_SITES
from repro.workload.generator import WorkloadConfig

#: Conflict percentages used across the paper's x-axes.
PAPER_CONFLICT_RATES = (0.0, 0.02, 0.10, 0.30, 0.50, 1.00)


def throughput_cost_model() -> CostModel:
    """CPU cost model used for throughput-bound experiments (Figures 8-10).

    The absolute costs are scaled up relative to real hardware so the
    simulated systems saturate at a few hundred commands per second, which
    keeps simulation time reasonable while preserving the protocols' relative
    CPU profiles (EPaxos' dependency-graph analysis vs. CAESAR's predecessor
    bookkeeping vs. the single-leader bottleneck of Multi-Paxos).  Absolute
    throughputs are therefore roughly three orders of magnitude below the
    paper's hardware numbers; EXPERIMENTS.md compares shapes, not magnitudes.
    """
    return CostModel(default_cost_ms=0.5, per_dependency_ms=0.03, client_request_ms=0.2)


@dataclass
class FigureResult:
    """Output of one figure driver."""

    figure: str
    description: str
    series: Dict[str, Dict[object, Optional[float]]]
    table: str
    extra: Dict[str, object] = field(default_factory=dict)

    def __str__(self) -> str:
        return self.table


def _conflict_label(rate: float) -> str:
    return f"{int(round(rate * 100))}%"


# --------------------------------------------------------------------------
# Figure 6: average latency per site vs conflict rate (CAESAR/EPaxos/M2Paxos)
# --------------------------------------------------------------------------

def figure6_latency_vs_conflicts(conflict_rates: Sequence[float] = PAPER_CONFLICT_RATES,
                                 protocols: Sequence[str] = ("caesar", "epaxos", "m2paxos"),
                                 clients_per_site: int = 10, duration_ms: float = 8000.0,
                                 warmup_ms: float = 2000.0, seed: int = 11) -> FigureResult:
    """Figure 6: per-site average latency while varying the conflict percentage."""
    series: Dict[str, Dict[object, Optional[float]]] = {}
    per_site: Dict[str, Dict[str, Dict[object, Optional[float]]]] = {
        site: {} for site in EC2_SITES}
    for protocol in protocols:
        series[protocol] = {}
        for site in EC2_SITES:
            per_site[site][protocol] = {}
        for rate in conflict_rates:
            result = run_experiment(ExperimentConfig(
                protocol=protocol, conflict_rate=rate, clients_per_site=clients_per_site,
                duration_ms=duration_ms, warmup_ms=warmup_ms, seed=seed))
            overall = result.overall_latency
            series[protocol][_conflict_label(rate)] = overall.mean if overall else None
            for site in EC2_SITES:
                per_site[site][protocol][_conflict_label(rate)] = result.site_mean_latency(site)
    tables = [format_series("Figure 6 — mean latency (ms), all sites", series, "conflict")]
    for site in EC2_SITES:
        tables.append(format_series(
            f"Figure 6 — mean latency (ms), {EC2_SHORT_LABELS[site]}", per_site[site],
            "conflict"))
    return FigureResult(figure="6", description="Average latency vs conflict percentage",
                        series=series, table="\n\n".join(tables),
                        extra={"per_site": per_site})


# --------------------------------------------------------------------------
# Figure 7: Multi-Paxos (near/far leader), Mencius, CAESAR per-site latency
# --------------------------------------------------------------------------

def figure7_single_leader_comparison(clients_per_site: int = 10, duration_ms: float = 8000.0,
                                     warmup_ms: float = 2000.0, seed: int = 12) -> FigureResult:
    """Figure 7: latency of Multi-Paxos (leader in Ireland vs Mumbai), Mencius, CAESAR 0%."""
    ireland = EC2_SITES.index("ireland")
    mumbai = EC2_SITES.index("mumbai")
    systems = {
        "multipaxos-IR": ExperimentConfig(protocol="multipaxos", conflict_rate=0.0,
                                          clients_per_site=clients_per_site,
                                          duration_ms=duration_ms, warmup_ms=warmup_ms,
                                          seed=seed, protocol_options={"leader_id": ireland}),
        "multipaxos-IN": ExperimentConfig(protocol="multipaxos", conflict_rate=0.0,
                                          clients_per_site=clients_per_site,
                                          duration_ms=duration_ms, warmup_ms=warmup_ms,
                                          seed=seed, protocol_options={"leader_id": mumbai}),
        "mencius": ExperimentConfig(protocol="mencius", conflict_rate=0.0,
                                    clients_per_site=clients_per_site,
                                    duration_ms=duration_ms, warmup_ms=warmup_ms, seed=seed),
        "caesar-0%": ExperimentConfig(protocol="caesar", conflict_rate=0.0,
                                      clients_per_site=clients_per_site,
                                      duration_ms=duration_ms, warmup_ms=warmup_ms, seed=seed),
    }
    series: Dict[str, Dict[object, Optional[float]]] = {}
    for name, config in systems.items():
        result = run_experiment(config)
        series[name] = {EC2_SHORT_LABELS[site]: result.site_mean_latency(site)
                        for site in EC2_SITES}
    table = format_series("Figure 7 — mean latency (ms) per site", series, "site")
    return FigureResult(figure="7", description="Single-leader and all-node protocols vs CAESAR",
                        series=series, table=table)


# --------------------------------------------------------------------------
# Figure 8: latency per site vs number of connected clients (10% conflicts)
# --------------------------------------------------------------------------

def figure8_client_scaling(client_counts: Sequence[int] = (5, 50, 250, 500, 1000),
                           protocols: Sequence[str] = ("caesar", "epaxos", "m2paxos"),
                           duration_ms: float = 6000.0, warmup_ms: float = 2000.0,
                           seed: int = 13) -> FigureResult:
    """Figure 8: latency as the number of connected closed-loop clients grows."""
    cost_model = throughput_cost_model()
    series: Dict[str, Dict[object, Optional[float]]] = {}
    per_site: Dict[str, Dict[str, Dict[object, Optional[float]]]] = {
        site: {} for site in EC2_SITES}
    for protocol in protocols:
        series[protocol] = {}
        for site in EC2_SITES:
            per_site[site][protocol] = {}
        for total_clients in client_counts:
            per_node = max(1, total_clients // len(EC2_SITES))
            result = run_experiment(ExperimentConfig(
                protocol=protocol, conflict_rate=0.10, clients_per_site=per_node,
                duration_ms=duration_ms, warmup_ms=warmup_ms, seed=seed,
                cost_model=cost_model))
            overall = result.overall_latency
            series[protocol][total_clients] = overall.mean if overall else None
            for site in EC2_SITES:
                per_site[site][protocol][total_clients] = result.site_mean_latency(site)
    table = format_series("Figure 8 — mean latency (ms) vs connected clients (10% conflicts)",
                          series, "clients")
    return FigureResult(figure="8", description="Latency vs number of connected clients",
                        series=series, table=table, extra={"per_site": per_site})


# --------------------------------------------------------------------------
# Figure 9: throughput vs conflict rate for all protocols
# --------------------------------------------------------------------------

def figure9_throughput(conflict_rates: Sequence[float] = PAPER_CONFLICT_RATES,
                       protocols: Sequence[str] = ("caesar", "epaxos", "m2paxos",
                                                   "multipaxos", "mencius"),
                       clients_per_site: int = 80, duration_ms: float = 5000.0,
                       warmup_ms: float = 1500.0, seed: int = 14,
                       open_loop: bool = False,
                       arrival_rate_per_client: float = 5.0,
                       batching: Optional[BatchingConfig] = None) -> FigureResult:
    """Figure 9 (no batching): peak throughput while varying the conflict rate.

    The paper drives the systems to saturation with open-loop clients.  By
    default this driver reaches saturation with a large closed-loop client
    population instead (``clients_per_site`` clients per site, each with one
    outstanding command): the offered load then always exceeds the CPU
    capacity defined by :func:`throughput_cost_model`, so the measured
    completion rate is the system's peak throughput, while the simulation's
    event count stays bounded.  Pass ``open_loop=True`` to reproduce the
    paper's injection model literally (slower to simulate).

    Multi-Paxos and Mencius are conflict-oblivious; as in the paper they are
    reported under every conflict rate with the same configuration.
    """
    cost_model = throughput_cost_model()
    series: Dict[str, Dict[object, Optional[float]]] = {}
    slow_ratios: Dict[str, Dict[object, Optional[float]]] = {}
    for protocol in protocols:
        series[protocol] = {}
        slow_ratios[protocol] = {}
        for rate in conflict_rates:
            result = run_experiment(ExperimentConfig(
                protocol=protocol, conflict_rate=rate, clients_per_site=clients_per_site,
                open_loop=open_loop, arrival_rate_per_client=arrival_rate_per_client,
                duration_ms=duration_ms, warmup_ms=warmup_ms, seed=seed,
                cost_model=cost_model, batching=batching))
            series[protocol][_conflict_label(rate)] = result.throughput_per_second
            slow_ratios[protocol][_conflict_label(rate)] = result.slow_path_ratio
    suffix = "batching enabled" if batching is not None else "batching disabled"
    table = format_series(
        f"Figure 9 — throughput (commands/second) vs conflict percentage, {suffix}",
        series, "conflict")
    return FigureResult(figure="9", description=f"Throughput vs conflict percentage ({suffix})",
                        series=series, table=table, extra={"slow_ratios": slow_ratios})


# --------------------------------------------------------------------------
# Figure 10: % of slow-path decisions vs conflict rate (CAESAR vs EPaxos)
# --------------------------------------------------------------------------

def figure10_slow_paths(conflict_rates: Sequence[float] = PAPER_CONFLICT_RATES,
                        clients_per_site: int = 30, duration_ms: float = 5000.0,
                        warmup_ms: float = 1000.0, seed: int = 15) -> FigureResult:
    """Figure 10: fraction of commands decided via the slow path.

    The run uses a high closed-loop client count so that conflicting commands
    genuinely overlap in flight, which is what drives the difference between
    CAESAR's wait-based fast path and EPaxos' equal-dependency fast path.
    """
    series: Dict[str, Dict[object, Optional[float]]] = {}
    for protocol in ("epaxos", "caesar"):
        series[protocol] = {}
        for rate in conflict_rates:
            result = run_experiment(ExperimentConfig(
                protocol=protocol, conflict_rate=rate, clients_per_site=clients_per_site,
                duration_ms=duration_ms, warmup_ms=warmup_ms, seed=seed))
            ratio = result.slow_path_ratio
            series[protocol][_conflict_label(rate)] = (ratio * 100.0) if ratio is not None else None
    table = format_series("Figure 10 — % of commands decided on the slow path", series,
                          "conflict")
    return FigureResult(figure="10", description="Slow-path percentage vs conflict percentage",
                        series=series, table=table)


# --------------------------------------------------------------------------
# Figure 11: CAESAR latency breakdown and wait-condition time
# --------------------------------------------------------------------------

def figure11_breakdown(conflict_rates: Sequence[float] = PAPER_CONFLICT_RATES,
                       clients_per_site: int = 10, duration_ms: float = 8000.0,
                       warmup_ms: float = 2000.0, seed: int = 16) -> FigureResult:
    """Figure 11: (a) proportion of latency per ordering phase, (b) wait time per site."""
    phase_series: Dict[str, Dict[object, Optional[float]]] = {
        "propose": {}, "retry": {}, "deliver": {}}
    wait_series: Dict[str, Dict[object, Optional[float]]] = {
        EC2_SHORT_LABELS[site]: {} for site in EC2_SITES}
    for rate in conflict_rates:
        result = run_experiment(ExperimentConfig(
            protocol="caesar", conflict_rate=rate, clients_per_site=clients_per_site,
            duration_ms=duration_ms, warmup_ms=warmup_ms, seed=seed))
        totals = {"propose": 0.0, "retry": 0.0, "deliver": 0.0}
        count = 0
        for replica in result.cluster.replicas:
            for decision in replica.completed_decisions():
                count += 1
                for phase in totals:
                    totals[phase] += decision.phase_times.get(phase, 0.0)
        grand_total = sum(totals.values()) or 1.0
        for phase in totals:
            phase_series[phase][_conflict_label(rate)] = totals[phase] / grand_total
        for replica in result.cluster.replicas:
            label = EC2_SHORT_LABELS[EC2_SITES[replica.node_id]]
            wait_series[label][_conflict_label(rate)] = replica.average_wait_ms()
    table_a = format_series("Figure 11a — proportion of latency per CAESAR phase",
                            phase_series, "conflict")
    table_b = format_series("Figure 11b — mean wait-condition time (ms) per site",
                            wait_series, "conflict")
    return FigureResult(figure="11", description="CAESAR latency breakdown and wait times",
                        series=phase_series, table=table_a + "\n\n" + table_b,
                        extra={"wait_times": wait_series})


# --------------------------------------------------------------------------
# Figure 12: throughput timeline when one node crashes
# --------------------------------------------------------------------------

def figure12_failure_timeline(protocols: Sequence[str] = ("caesar", "epaxos"),
                              clients_per_site: int = 25, crash_at_ms: float = 10000.0,
                              total_ms: float = 25000.0, bucket_ms: float = 1000.0,
                              seed: int = 17) -> FigureResult:
    """Figure 12: cluster throughput over time with one replica crashing mid-run.

    Clients of the crashed replica time out and reconnect to the remaining
    replicas, and the protocols' recovery machinery finalizes the commands
    the crashed leader left behind.
    """
    series: Dict[str, Dict[object, Optional[float]]] = {}
    for protocol in protocols:
        config = ExperimentConfig(protocol=protocol, conflict_rate=0.02,
                                  clients_per_site=clients_per_site, duration_ms=total_ms,
                                  warmup_ms=0.0, seed=seed, recovery=True)
        cluster = build_experiment_cluster(config)
        metrics = MetricsCollector(warmup_ms=0.0)
        pool = attach_clients(cluster, config, metrics)
        # Give every client a reconnect timeout and fallback targets so the
        # crash behaves like the paper's client re-connection.
        for client in pool.clients:
            client.reconnect_timeout_ms = 2000.0
            client.fallback_replicas = [r for r in cluster.replicas
                                        if r.node_id != client.replica.node_id]
        crashed_node = cluster.size - 1
        cluster.crash_injector.schedule(ScheduledCrash(node_id=crashed_node,
                                                       crash_at_ms=crash_at_ms))
        cluster.start()
        pool.start_all()
        cluster.run(total_ms)
        pool.stop_all()
        cluster.run(1000.0)
        timeline = metrics.timeline(bucket_ms=bucket_ms, start_ms=0.0, end_ms=total_ms)
        # The final bucket only covers the instant ``total_ms`` (plus drain
        # completions); drop it so every reported bucket spans a full second.
        timeline = timeline[:-1]
        series[protocol] = {f"{int(t / 1000)}s": tput for t, tput in timeline}
    table = format_series("Figure 12 — throughput (commands/second) over time, crash at "
                          f"t={int(crash_at_ms / 1000)}s", series, "time")
    return FigureResult(figure="12", description="Throughput under a replica crash",
                        series=series, table=table)
