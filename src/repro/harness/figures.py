"""Per-figure experiment drivers.

Each ``figure*`` function reproduces one figure of the paper's evaluation
(Section VI) and returns a :class:`FigureResult` containing the raw series
and a formatted text table.  The benchmark suite calls these drivers with
scaled-down durations/loads (documented in ``EXPERIMENTS.md``); examples and
users can call them with larger budgets for tighter numbers.

The drivers intentionally report *shape* rather than absolute numbers: the
simulated substrate reproduces message delays, quorum sizes and CPU queuing,
not the authors' JVM/Go runtimes, so who-wins and where-crossovers-fall are
the comparable quantities.

Every driver runs its parameter grid through the sweep orchestrator
(:mod:`repro.harness.sweep`): each cell draws from an RNG stream forked from
the figure's base seed keyed on the cell coordinates, so cells are hermetic
and the grid can fan out across worker processes (``workers=``) with output
byte-identical to a serial run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Union

from repro.core.config import CaesarConfig
from repro.harness.experiment import (
    ExperimentConfig,
    ExperimentResult,
    attach_clients,
    build_experiment_cluster,
)
from repro.harness.report import format_series
from repro.harness.sweep import run_sweep, sweep_cell
from repro.metrics.collector import MetricsCollector
from repro.sim.batching import BatchingConfig
from repro.sim.costs import CostModel
from repro.sim.failures import ScheduledCrash
from repro.sim.topology import EC2_SHORT_LABELS, EC2_SITES

#: Conflict percentages used across the paper's x-axes.
PAPER_CONFLICT_RATES = (0.0, 0.02, 0.10, 0.30, 0.50, 1.00)

#: Protocols whose ordering logic never inspects command keys: the paper
#: reports them under every conflict rate with one configuration, so their
#: sweep runs a single cell and broadcasts it across the x-axis.
CONFLICT_OBLIVIOUS_PROTOCOLS = frozenset({"multipaxos", "mencius"})

#: Worker specification accepted by every driver: a process count, ``"auto"``
#: for one per CPU, or ``None`` for the environment default (serial).
Workers = Union[int, str, None]


def throughput_cost_model() -> CostModel:
    """CPU cost model used for throughput-bound experiments (Figures 8-10).

    The absolute costs are scaled up relative to real hardware so the
    simulated systems saturate at a few hundred commands per second, which
    keeps simulation time reasonable while preserving the protocols' relative
    CPU profiles (EPaxos' dependency-graph analysis vs. CAESAR's predecessor
    bookkeeping vs. the single-leader bottleneck of Multi-Paxos).  Absolute
    throughputs are therefore roughly three orders of magnitude below the
    paper's hardware numbers; EXPERIMENTS.md compares shapes, not magnitudes.
    """
    return CostModel(default_cost_ms=0.5, per_dependency_ms=0.03, client_request_ms=0.2)


@dataclass
class FigureResult:
    """Output of one figure driver."""

    figure: str
    description: str
    series: Dict[str, Dict[object, Optional[float]]]
    table: str
    extra: Dict[str, object] = field(default_factory=dict)

    def __str__(self) -> str:
        return self.table


def _conflict_label(rate: float) -> str:
    return f"{int(round(rate * 100))}%"


def _get(payload: Optional[dict], name: str) -> Optional[float]:
    """Field of a cell payload, ``None``-safe for filtered-out cells."""
    return payload.get(name) if payload is not None else None


def _site_mean(payload: Optional[dict], site: str) -> Optional[float]:
    if payload is None:
        return None
    return payload["per_site_mean_latency_ms"].get(site)


# --------------------------------------------------------------------------
# Figure 6: average latency per site vs conflict rate (CAESAR/EPaxos/M2Paxos)
# --------------------------------------------------------------------------

def figure6_latency_vs_conflicts(conflict_rates: Sequence[float] = PAPER_CONFLICT_RATES,
                                 protocols: Sequence[str] = ("caesar", "epaxos", "m2paxos"),
                                 clients_per_site: int = 10, duration_ms: float = 8000.0,
                                 warmup_ms: float = 2000.0, seed: int = 11,
                                 workers: Workers = None, serial: bool = False,
                                 cell_filter: Optional[Sequence[str]] = None) -> FigureResult:
    """Figure 6: per-site average latency while varying the conflict percentage."""
    cells = [sweep_cell(
        ("fig6", protocol, rate),
        ExperimentConfig(protocol=protocol, conflict_rate=rate,
                         clients_per_site=clients_per_site, duration_ms=duration_ms,
                         warmup_ms=warmup_ms),
        base_seed=seed)
        for protocol in protocols for rate in conflict_rates]
    sweep = run_sweep(cells, workers=workers, serial=serial, cell_filter=cell_filter)

    series: Dict[str, Dict[object, Optional[float]]] = {}
    per_site: Dict[str, Dict[str, Dict[object, Optional[float]]]] = {
        site: {} for site in EC2_SITES}
    for protocol in protocols:
        series[protocol] = {}
        for site in EC2_SITES:
            per_site[site][protocol] = {}
        for rate in conflict_rates:
            payload = sweep.payload(("fig6", protocol, rate))
            label = _conflict_label(rate)
            series[protocol][label] = _get(payload, "mean_latency_ms")
            for site in EC2_SITES:
                per_site[site][protocol][label] = _site_mean(payload, site)
    tables = [format_series("Figure 6 — mean latency (ms), all sites", series, "conflict")]
    for site in EC2_SITES:
        tables.append(format_series(
            f"Figure 6 — mean latency (ms), {EC2_SHORT_LABELS[site]}", per_site[site],
            "conflict"))
    return FigureResult(figure="6", description="Average latency vs conflict percentage",
                        series=series, table="\n\n".join(tables),
                        extra={"per_site": per_site, "sweep": sweep})


# --------------------------------------------------------------------------
# Figure 7: Multi-Paxos (near/far leader), Mencius, CAESAR per-site latency
# --------------------------------------------------------------------------

def figure7_single_leader_comparison(clients_per_site: int = 10, duration_ms: float = 8000.0,
                                     warmup_ms: float = 2000.0, seed: int = 12,
                                     workers: Workers = None, serial: bool = False,
                                     cell_filter: Optional[Sequence[str]] = None
                                     ) -> FigureResult:
    """Figure 7: latency of Multi-Paxos (leader in Ireland vs Mumbai), Mencius, CAESAR 0%."""
    ireland = EC2_SITES.index("ireland")
    mumbai = EC2_SITES.index("mumbai")
    base = dict(conflict_rate=0.0, clients_per_site=clients_per_site,
                duration_ms=duration_ms, warmup_ms=warmup_ms)
    systems = {
        "multipaxos-IR": ExperimentConfig(protocol="multipaxos",
                                          protocol_options={"leader_id": ireland}, **base),
        "multipaxos-IN": ExperimentConfig(protocol="multipaxos",
                                          protocol_options={"leader_id": mumbai}, **base),
        "mencius": ExperimentConfig(protocol="mencius", **base),
        "caesar-0%": ExperimentConfig(protocol="caesar", **base),
    }
    cells = [sweep_cell(("fig7", name), config, base_seed=seed)
             for name, config in systems.items()]
    sweep = run_sweep(cells, workers=workers, serial=serial, cell_filter=cell_filter)

    series: Dict[str, Dict[object, Optional[float]]] = {}
    for name in systems:
        payload = sweep.payload(("fig7", name))
        series[name] = {EC2_SHORT_LABELS[site]: _site_mean(payload, site)
                        for site in EC2_SITES}
    table = format_series("Figure 7 — mean latency (ms) per site", series, "site")
    return FigureResult(figure="7", description="Single-leader and all-node protocols vs CAESAR",
                        series=series, table=table, extra={"sweep": sweep})


# --------------------------------------------------------------------------
# Figure 8: latency per site vs number of connected clients (10% conflicts)
# --------------------------------------------------------------------------

def figure8_client_scaling(client_counts: Sequence[int] = (5, 50, 250, 500, 1000),
                           protocols: Sequence[str] = ("caesar", "epaxos", "m2paxos"),
                           duration_ms: float = 6000.0, warmup_ms: float = 2000.0,
                           seed: int = 13, workers: Workers = None, serial: bool = False,
                           cell_filter: Optional[Sequence[str]] = None) -> FigureResult:
    """Figure 8: latency as the number of connected closed-loop clients grows."""
    cost_model = throughput_cost_model()
    cells = [sweep_cell(
        ("fig8", protocol, total_clients),
        ExperimentConfig(protocol=protocol, conflict_rate=0.10,
                         clients_per_site=max(1, total_clients // len(EC2_SITES)),
                         duration_ms=duration_ms, warmup_ms=warmup_ms,
                         cost_model=cost_model),
        base_seed=seed)
        for protocol in protocols for total_clients in client_counts]
    sweep = run_sweep(cells, workers=workers, serial=serial, cell_filter=cell_filter)

    series: Dict[str, Dict[object, Optional[float]]] = {}
    per_site: Dict[str, Dict[str, Dict[object, Optional[float]]]] = {
        site: {} for site in EC2_SITES}
    for protocol in protocols:
        series[protocol] = {}
        for site in EC2_SITES:
            per_site[site][protocol] = {}
        for total_clients in client_counts:
            payload = sweep.payload(("fig8", protocol, total_clients))
            series[protocol][total_clients] = _get(payload, "mean_latency_ms")
            for site in EC2_SITES:
                per_site[site][protocol][total_clients] = _site_mean(payload, site)
    table = format_series("Figure 8 — mean latency (ms) vs connected clients (10% conflicts)",
                          series, "clients")
    return FigureResult(figure="8", description="Latency vs number of connected clients",
                        series=series, table=table,
                        extra={"per_site": per_site, "sweep": sweep})


# --------------------------------------------------------------------------
# Figure 9: throughput vs conflict rate for all protocols
# --------------------------------------------------------------------------

def figure9_throughput(conflict_rates: Sequence[float] = PAPER_CONFLICT_RATES,
                       protocols: Sequence[str] = ("caesar", "epaxos", "m2paxos",
                                                   "multipaxos", "mencius"),
                       clients_per_site: int = 80, duration_ms: float = 5000.0,
                       warmup_ms: float = 1500.0, seed: int = 14,
                       open_loop: bool = False,
                       arrival_rate_per_client: float = 5.0,
                       batching: Optional[BatchingConfig] = None,
                       workers: Workers = None, serial: bool = False,
                       cell_filter: Optional[Sequence[str]] = None) -> FigureResult:
    """Figure 9 (no batching): peak throughput while varying the conflict rate.

    The paper drives the systems to saturation with open-loop clients.  By
    default this driver reaches saturation with a large closed-loop client
    population instead (``clients_per_site`` clients per site, each with one
    outstanding command): the offered load then always exceeds the CPU
    capacity defined by :func:`throughput_cost_model`, so the measured
    completion rate is the system's peak throughput, while the simulation's
    event count stays bounded.  Pass ``open_loop=True`` to reproduce the
    paper's injection model literally (slower to simulate).

    Multi-Paxos and Mencius never inspect command keys, so — as in the paper
    — each runs a single cell whose result is reported under every conflict
    rate, instead of re-running an identical experiment per rate.
    """
    cost_model = throughput_cost_model()

    def config_for(protocol: str, rate: float) -> ExperimentConfig:
        return ExperimentConfig(
            protocol=protocol, conflict_rate=rate, clients_per_site=clients_per_site,
            open_loop=open_loop, arrival_rate_per_client=arrival_rate_per_client,
            duration_ms=duration_ms, warmup_ms=warmup_ms,
            cost_model=cost_model, batching=batching)

    cells = []
    for protocol in protocols:
        if protocol in CONFLICT_OBLIVIOUS_PROTOCOLS:
            cells.append(sweep_cell(("fig9", protocol), config_for(protocol, 0.0),
                                    base_seed=seed))
        else:
            cells.extend(sweep_cell(("fig9", protocol, rate), config_for(protocol, rate),
                                    base_seed=seed)
                         for rate in conflict_rates)
    sweep = run_sweep(cells, workers=workers, serial=serial, cell_filter=cell_filter)

    series: Dict[str, Dict[object, Optional[float]]] = {}
    slow_ratios: Dict[str, Dict[object, Optional[float]]] = {}
    for protocol in protocols:
        series[protocol] = {}
        slow_ratios[protocol] = {}
        for rate in conflict_rates:
            if protocol in CONFLICT_OBLIVIOUS_PROTOCOLS:
                payload = sweep.payload(("fig9", protocol))
            else:
                payload = sweep.payload(("fig9", protocol, rate))
            label = _conflict_label(rate)
            series[protocol][label] = _get(payload, "throughput_per_second")
            slow_ratios[protocol][label] = _get(payload, "slow_path_ratio")
    suffix = "batching enabled" if batching is not None else "batching disabled"
    table = format_series(
        f"Figure 9 — throughput (commands/second) vs conflict percentage, {suffix}",
        series, "conflict")
    return FigureResult(figure="9", description=f"Throughput vs conflict percentage ({suffix})",
                        series=series, table=table,
                        extra={"slow_ratios": slow_ratios, "sweep": sweep})


def figure9_throughput_batching(conflict_rates: Sequence[float] = PAPER_CONFLICT_RATES,
                                protocols: Sequence[str] = ("caesar", "epaxos", "multipaxos"),
                                clients_per_site: int = 80, duration_ms: float = 5000.0,
                                warmup_ms: float = 1500.0, seed: int = 14,
                                batching: Optional[BatchingConfig] = None,
                                workers: Workers = None, serial: bool = False,
                                cell_filter: Optional[Sequence[str]] = None) -> FigureResult:
    """Figure 9 (bottom): the batching-enabled sweep next to the baseline.

    Runs the Figure 9 grid twice — batching off, then on (Mencius is omitted,
    as in the paper, because the authors' Mencius implementation does not
    support batching) — and reports both as one figure with series prefixed
    ``no-batching``/``batching``.
    """
    if batching is None:
        batching = BatchingConfig(window_ms=2.0, max_messages=32, marginal_cost_factor=0.25)
    shared = dict(conflict_rates=conflict_rates, protocols=protocols,
                  clients_per_site=clients_per_site, duration_ms=duration_ms,
                  warmup_ms=warmup_ms, seed=seed, workers=workers, serial=serial,
                  cell_filter=cell_filter)
    without = figure9_throughput(**shared)
    with_batching = figure9_throughput(batching=batching, **shared)
    series = {
        **{f"no-batching {p}": points for p, points in without.series.items()},
        **{f"batching {p}": points for p, points in with_batching.series.items()},
    }
    return FigureResult(figure="9b",
                        description="Throughput vs conflict percentage, batching on vs off",
                        series=series,
                        table=without.table + "\n\n" + with_batching.table,
                        extra={"without": without, "with_batching": with_batching})


# --------------------------------------------------------------------------
# Figure 10: % of slow-path decisions vs conflict rate (CAESAR vs EPaxos)
# --------------------------------------------------------------------------

def figure10_slow_paths(conflict_rates: Sequence[float] = PAPER_CONFLICT_RATES,
                        clients_per_site: int = 30, duration_ms: float = 5000.0,
                        warmup_ms: float = 1000.0, seed: int = 15,
                        workers: Workers = None, serial: bool = False,
                        cell_filter: Optional[Sequence[str]] = None) -> FigureResult:
    """Figure 10: fraction of commands decided via the slow path.

    The run uses a high closed-loop client count so that conflicting commands
    genuinely overlap in flight, which is what drives the difference between
    CAESAR's wait-based fast path and EPaxos' equal-dependency fast path.
    """
    protocols = ("epaxos", "caesar")
    cells = [sweep_cell(
        ("fig10", protocol, rate),
        ExperimentConfig(protocol=protocol, conflict_rate=rate,
                         clients_per_site=clients_per_site, duration_ms=duration_ms,
                         warmup_ms=warmup_ms),
        base_seed=seed)
        for protocol in protocols for rate in conflict_rates]
    sweep = run_sweep(cells, workers=workers, serial=serial, cell_filter=cell_filter)

    series: Dict[str, Dict[object, Optional[float]]] = {}
    for protocol in protocols:
        series[protocol] = {}
        for rate in conflict_rates:
            ratio = _get(sweep.payload(("fig10", protocol, rate)), "slow_path_ratio")
            series[protocol][_conflict_label(rate)] = (ratio * 100.0) if ratio is not None else None
    table = format_series("Figure 10 — % of commands decided on the slow path", series,
                          "conflict")
    return FigureResult(figure="10", description="Slow-path percentage vs conflict percentage",
                        series=series, table=table, extra={"sweep": sweep})


# --------------------------------------------------------------------------
# Figure 11: CAESAR latency breakdown and wait-condition time
# --------------------------------------------------------------------------

def _collect_caesar_breakdown(result: ExperimentResult) -> Dict[str, object]:
    """Per-cell collector for Figure 11 (runs inside the sweep worker)."""
    totals = {"propose": 0.0, "retry": 0.0, "deliver": 0.0}
    for replica in result.cluster.replicas:
        for decision in replica.completed_decisions():
            for phase in totals:
                totals[phase] += decision.phase_times.get(phase, 0.0)
    wait_ms = {EC2_SHORT_LABELS[EC2_SITES[replica.node_id]]: replica.average_wait_ms()
               for replica in result.cluster.replicas}
    return {"phase_totals": totals, "wait_ms_by_site": wait_ms}


def figure11_breakdown(conflict_rates: Sequence[float] = PAPER_CONFLICT_RATES,
                       clients_per_site: int = 10, duration_ms: float = 8000.0,
                       warmup_ms: float = 2000.0, seed: int = 16,
                       workers: Workers = None, serial: bool = False,
                       cell_filter: Optional[Sequence[str]] = None) -> FigureResult:
    """Figure 11: (a) proportion of latency per ordering phase, (b) wait time per site."""
    cells = [sweep_cell(
        ("fig11", rate),
        ExperimentConfig(protocol="caesar", conflict_rate=rate,
                         clients_per_site=clients_per_site, duration_ms=duration_ms,
                         warmup_ms=warmup_ms),
        base_seed=seed, collect=_collect_caesar_breakdown)
        for rate in conflict_rates]
    sweep = run_sweep(cells, workers=workers, serial=serial, cell_filter=cell_filter)

    phase_series: Dict[str, Dict[object, Optional[float]]] = {
        "propose": {}, "retry": {}, "deliver": {}}
    wait_series: Dict[str, Dict[object, Optional[float]]] = {
        EC2_SHORT_LABELS[site]: {} for site in EC2_SITES}
    for rate in conflict_rates:
        payload = sweep.payload(("fig11", rate))
        label = _conflict_label(rate)
        if payload is None:
            continue
        totals = payload["phase_totals"]
        grand_total = sum(totals.values()) or 1.0
        for phase in totals:
            phase_series[phase][label] = totals[phase] / grand_total
        for site_label, wait in payload["wait_ms_by_site"].items():
            wait_series[site_label][label] = wait
    table_a = format_series("Figure 11a — proportion of latency per CAESAR phase",
                            phase_series, "conflict")
    table_b = format_series("Figure 11b — mean wait-condition time (ms) per site",
                            wait_series, "conflict")
    return FigureResult(figure="11", description="CAESAR latency breakdown and wait times",
                        series=phase_series, table=table_a + "\n\n" + table_b,
                        extra={"wait_times": wait_series, "sweep": sweep})


# --------------------------------------------------------------------------
# Figure 12: throughput timeline when one node crashes
# --------------------------------------------------------------------------

def _run_crash_timeline(config: ExperimentConfig, crash_at_ms: float = 10000.0,
                        bucket_ms: float = 1000.0) -> Dict[str, object]:
    """Sweep runner for Figure 12: one run with a mid-experiment crash.

    Clients of the crashed replica time out and reconnect to the remaining
    replicas, and the protocols' recovery machinery finalizes the commands
    the crashed leader left behind.  Returns the bucketed throughput
    timeline directly (the cluster never leaves the worker process).
    """
    total_ms = config.duration_ms
    cluster = build_experiment_cluster(config)
    metrics = MetricsCollector(warmup_ms=0.0)
    pool = attach_clients(cluster, config, metrics)
    # Give every client a reconnect timeout and fallback targets so the
    # crash behaves like the paper's client re-connection.
    for client in pool.clients:
        client.reconnect_timeout_ms = 2000.0
        client.fallback_replicas = [r for r in cluster.replicas
                                    if r.node_id != client.replica.node_id]
    crashed_node = cluster.size - 1
    cluster.crash_injector.schedule(ScheduledCrash(node_id=crashed_node,
                                                   crash_at_ms=crash_at_ms))
    cluster.start()
    pool.start_all()
    cluster.run(total_ms)
    pool.stop_all()
    cluster.run(1000.0)
    # ``total_ms`` is a whole number of buckets, so every reported bucket
    # spans a full second (the timeline scales a partial tail by its width).
    timeline = metrics.timeline(bucket_ms=bucket_ms, start_ms=0.0, end_ms=total_ms)
    return {"timeline": timeline}


def figure12_failure_timeline(protocols: Sequence[str] = ("caesar", "epaxos"),
                              clients_per_site: int = 25, crash_at_ms: float = 10000.0,
                              total_ms: float = 25000.0, bucket_ms: float = 1000.0,
                              seed: int = 17, workers: Workers = None, serial: bool = False,
                              cell_filter: Optional[Sequence[str]] = None) -> FigureResult:
    """Figure 12: cluster throughput over time with one replica crashing mid-run."""
    cells = [sweep_cell(
        ("fig12", protocol),
        ExperimentConfig(protocol=protocol, conflict_rate=0.02,
                         clients_per_site=clients_per_site, duration_ms=total_ms,
                         warmup_ms=0.0, recovery=True),
        base_seed=seed, runner=_run_crash_timeline, collect=None,
        options={"crash_at_ms": crash_at_ms, "bucket_ms": bucket_ms})
        for protocol in protocols]
    sweep = run_sweep(cells, workers=workers, serial=serial, cell_filter=cell_filter)

    series: Dict[str, Dict[object, Optional[float]]] = {}
    for protocol in protocols:
        payload = sweep.payload(("fig12", protocol))
        if payload is None:
            continue
        series[protocol] = {f"{int(t / 1000)}s": tput for t, tput in payload["timeline"]}
    table = format_series("Figure 12 — throughput (commands/second) over time, crash at "
                          f"t={int(crash_at_ms / 1000)}s", series, "time")
    return FigureResult(figure="12", description="Throughput under a replica crash",
                        series=series, table=table, extra={"sweep": sweep})


# --------------------------------------------------------------------------
# Ablation: CAESAR with and without the wait condition
# --------------------------------------------------------------------------

def ablation_wait_condition(conflict_rates: Sequence[float] = (0.10, 0.30, 0.50),
                            clients_per_site: int = 20, duration_ms: float = 4000.0,
                            warmup_ms: float = 1000.0, seed: int = 19,
                            workers: Workers = None, serial: bool = False,
                            cell_filter: Optional[Sequence[str]] = None) -> FigureResult:
    """Ablation of the paper's key mechanism (Section IV-A): the wait condition.

    Without it, an acceptor that received a conflicting higher-timestamp
    command first must reject the proposal, which turns fast decisions into
    slow ones exactly the way EPaxos' equal-dependency rule does.  This
    driver runs CAESAR with the wait condition on and off and reports the
    effect on the slow-path share and on latency.
    """
    variants = ((True, "wait-on"), (False, "wait-off"))
    cells = [sweep_cell(
        ("ablation", label, rate),
        ExperimentConfig(protocol="caesar", conflict_rate=rate,
                         clients_per_site=clients_per_site, duration_ms=duration_ms,
                         warmup_ms=warmup_ms,
                         protocol_options={"config": CaesarConfig(
                             recovery_enabled=False, wait_condition_enabled=enabled)}),
        base_seed=seed)
        for enabled, label in variants for rate in conflict_rates]
    sweep = run_sweep(cells, workers=workers, serial=serial, cell_filter=cell_filter)

    slow_series: Dict[str, Dict[object, Optional[float]]] = {}
    latency_series: Dict[str, Dict[object, Optional[float]]] = {}
    violations = 0
    for _, label in variants:
        slow_series[label] = {}
        latency_series[label] = {}
        for rate in conflict_rates:
            payload = sweep.payload(("ablation", label, rate))
            key = f"{int(rate * 100)}%"
            ratio = _get(payload, "slow_path_ratio")
            slow_series[label][key] = (ratio or 0.0) * 100.0 if payload is not None else None
            latency_series[label][key] = _get(payload, "mean_latency_ms")
            violations += _get(payload, "consistency_violations") or 0
    table = (format_series("Ablation — % slow decisions, wait condition on vs off",
                           slow_series, "conflict")
             + "\n\n"
             + format_series("Ablation — mean latency (ms), wait condition on vs off",
                             latency_series, "conflict"))
    series = {
        **{f"slow% {label}": points for label, points in slow_series.items()},
        **{f"latency {label}": points for label, points in latency_series.items()},
    }
    return FigureResult(figure="ablation",
                        description="CAESAR wait condition on vs off",
                        series=series, table=table,
                        extra={"slow": slow_series, "latency": latency_series,
                               "consistency_violations": violations, "sweep": sweep})


# --------------------------------------------------------------------------
# Sharded keyspace: aggregate throughput vs shard count under zipfian skew
# --------------------------------------------------------------------------

def shard_scaling(protocols: Sequence[str] = ("caesar",),
                  shard_counts: Sequence[int] = (1, 2, 4, 8),
                  skews: Sequence[float] = (0.0, 0.99),
                  sites: int = 20, replicas_per_site: int = 5,
                  clients: int = 12, commands_per_client: int = 4,
                  key_space: int = 1000, hot_keys: int = 10,
                  seed: int = 21, workers: Workers = None, serial: bool = False,
                  cell_filter: Optional[Sequence[str]] = None) -> FigureResult:
    """Sharded keyspace: throughput vs shard count, per-shard conflict rates.

    Not a paper figure — the paper evaluates one five-site group — but the
    scale-out axis the ROADMAP asks for: S independent consensus groups over
    a hash-partitioned keyspace, on generator-built WAN topologies
    (``sites x replicas_per_site`` replicas per group), under zipfian skew.
    Each cell is one full sharded run (its shards execute serially inside
    the cell; the grid parallelizes across cells).
    """
    from repro.harness.shard import ShardedConfig, run_sharded_payload
    from repro.workload.generator import ZipfWorkloadConfig

    cells = [sweep_cell(
        ("shard", protocol, skew, count),
        ShardedConfig(protocol=protocol, shards=count, sites=sites,
                      replicas_per_site=replicas_per_site, clients=clients,
                      commands_per_client=commands_per_client,
                      workload=ZipfWorkloadConfig(s=skew, key_space=key_space,
                                                  hot_keys=hot_keys)),
        base_seed=seed, runner=run_sharded_payload, collect=None)
        for protocol in protocols for skew in skews for count in shard_counts]
    sweep = run_sweep(cells, workers=workers, serial=serial, cell_filter=cell_filter)

    throughput: Dict[str, Dict[object, Optional[float]]] = {}
    conflict_series: Dict[str, Dict[object, Optional[float]]] = {}
    violations = 0
    undecided = 0
    for protocol in protocols:
        for skew in skews:
            label = f"{protocol} s={skew:g}"
            throughput[label] = {}
            for count in shard_counts:
                payload = sweep.payload(("shard", protocol, skew, count))
                throughput[label][count] = _get(payload, "aggregate_throughput")
                violations += _get(payload, "total_violations") or 0
                undecided += _get(payload, "total_undecided") or 0
                if payload is not None and count == max(shard_counts):
                    conflict_series[label] = {
                        shard["shard"]: shard["conflict_rate"]
                        for shard in payload["shards"]}
    tables = [format_series(
        f"Sharded keyspace — aggregate throughput (cmds/s), "
        f"{sites} sites x {replicas_per_site} replicas per group",
        throughput, "shards")]
    if conflict_series:
        tables.append(format_series(
            f"Sharded keyspace — measured conflict rate per shard "
            f"({max(shard_counts)} shards)", conflict_series, "shard"))
    return FigureResult(figure="shard",
                        description="Aggregate throughput vs shard count under zipfian skew",
                        series=throughput, table="\n\n".join(tables),
                        extra={"per_shard_conflicts": conflict_series,
                               "total_violations": violations,
                               "total_undecided": undecided, "sweep": sweep})
