"""Saturation / overload study driver (``repro overload``).

Sweeps open-loop offered load from below to well past the saturation knee
and reports, per offered-load point, the submitted/completed/rejected
counts, the goodput (completed commands per second) and the p50/p99/p999
latency tail.  The same sweep runs on either substrate:

* ``sim`` — one hermetic simulator experiment per point, fanned out through
  the sweep orchestrator (:mod:`repro.harness.sweep`) with per-point seeds
  forked from the base seed, so the whole curve is deterministic and
  parallelizable;
* ``tcp`` — a fresh ``repro serve`` local cluster per point driven by the
  real ``repro loadgen`` engine over sockets.

An admission-control spec (:mod:`repro.runtime.admission`) can guard every
replica's submit path; the counting ``"none"`` policy is installed when no
spec is given, so submitted/rejected accounting works for baselines too.
This is the machinery behind the overload-to-SLO study: past the knee an
unprotected system's tail latency grows without bound (queueing), while
with admission control the p99 stays bounded at a small goodput cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness.experiment import ExperimentConfig, ExperimentResult, run_experiment
from repro.harness.report import format_table
from repro.harness.sweep import run_sweep, sweep_cell
from repro.metrics.stats import summarize_latencies
from repro.sim.costs import CostModel
from repro.sim.topology import ec2_five_sites

#: Goodput below this fraction of offered load marks a point as saturated
#: (the knee estimate is the first such point).
KNEE_GOODPUT_FRACTION = 0.9


@dataclass
class OverloadConfig:
    """Settings for one offered-load sweep.

    Attributes:
        protocol: protocol name.
        offered_loads: total offered load per point, in commands/second
            across the whole cluster; split evenly over the clients.
        substrate: ``"sim"`` (simulator) or ``"tcp"`` (real sockets).
        clients_per_site: open-loop clients co-located with each replica
            (sim) — TCP mode uses ``clients`` in total instead.
        clients: total TCP clients (spread round-robin over the replicas).
        replicas: TCP cluster size.
        conflict_rate: fraction of conflicting commands.
        duration_ms: measured injection window per point.
        warmup_ms: per-point warm-up during which samples are discarded.
        seed: base seed; per-point streams are forked from it.
        admission: admission-control spec (``"none"`` when omitted, so the
            per-replica submitted/rejected counters still run).
        use_cost_model: install the saturation CPU cost model in sim mode
            (default on — without a CPU cost the simulator has no knee).
        cost_model: explicit cost model override for sim mode.
        workers: sweep worker processes for sim mode (``None`` = serial).
        timeout_s: per-point wall-clock budget for TCP mode.
        endpoints: existing TCP cluster to drive; when ``None``, TCP mode
            launches (and tears down) a fresh local cluster per point so
            points stay independent.
    """

    protocol: str = "caesar"
    offered_loads: Sequence[float] = (200.0, 400.0, 800.0, 1600.0)
    substrate: str = "sim"
    clients_per_site: int = 4
    clients: int = 6
    replicas: int = 3
    conflict_rate: float = 0.02
    duration_ms: float = 4000.0
    warmup_ms: float = 1000.0
    seed: int = 1
    admission: Optional[str] = None
    use_cost_model: bool = True
    cost_model: Optional[CostModel] = None
    workers: Optional[object] = None
    timeout_s: float = 60.0
    endpoints: Optional[Dict[int, Tuple[str, int]]] = None
    #: periodic cluster-level history GC interval (sim substrate only);
    #: ``None`` = no collection.  Long saturation runs accumulate history
    #: entries forever without it.
    history_gc_ms: Optional[float] = None

    @classmethod
    def from_args(cls, args, **overrides) -> "OverloadConfig":
        """Build a config from CLI args (single place flags become a config)."""
        kwargs = dict(protocol=getattr(args, "protocol", "caesar"),
                      substrate=getattr(args, "substrate", "sim"),
                      seed=getattr(args, "seed", 1),
                      clients_per_site=getattr(args, "clients", 4),
                      clients=getattr(args, "clients", 4),
                      replicas=getattr(args, "replicas", 3),
                      duration_ms=getattr(args, "duration", 4000.0),
                      admission=getattr(args, "admission", None),
                      workers=getattr(args, "workers", None),
                      history_gc_ms=getattr(args, "history_gc", None))
        loads = getattr(args, "offered", None)
        if loads:
            kwargs["offered_loads"] = tuple(float(load) for load in loads)
        conflicts = getattr(args, "conflicts", None)
        if isinstance(conflicts, (int, float)):
            kwargs["conflict_rate"] = conflicts / 100.0
        warmup = getattr(args, "warmup_ms", None)
        if warmup is not None:
            kwargs["warmup_ms"] = warmup
        kwargs.update(overrides)
        return cls(**kwargs)


@dataclass(frozen=True)
class LoadPoint:
    """Measurements at one offered-load point."""

    offered_per_second: float
    submitted: int
    completed: int
    rejected: int
    goodput_per_second: float
    mean_latency_ms: Optional[float]
    p50_latency_ms: Optional[float]
    p99_latency_ms: Optional[float]
    p999_latency_ms: Optional[float]
    admission: Optional[Dict[str, object]] = None

    @property
    def saturated(self) -> bool:
        """Whether goodput fell below the knee fraction of offered load."""
        return self.goodput_per_second < KNEE_GOODPUT_FRACTION * self.offered_per_second

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly view of the point."""
        return {"offered_per_second": self.offered_per_second,
                "submitted": self.submitted, "completed": self.completed,
                "rejected": self.rejected,
                "goodput_per_second": self.goodput_per_second,
                "mean_latency_ms": self.mean_latency_ms,
                "p50_latency_ms": self.p50_latency_ms,
                "p99_latency_ms": self.p99_latency_ms,
                "p999_latency_ms": self.p999_latency_ms,
                "admission": self.admission}


@dataclass
class OverloadResult:
    """Outcome of one offered-load sweep."""

    config: OverloadConfig
    points: List[LoadPoint] = field(default_factory=list)

    @property
    def peak_goodput(self) -> float:
        """Highest goodput observed across the sweep."""
        return max((point.goodput_per_second for point in self.points), default=0.0)

    @property
    def knee_offered_per_second(self) -> Optional[float]:
        """First offered load whose goodput fell below the knee fraction.

        ``None`` when no point saturated (the sweep never reached the knee).
        """
        for point in self.points:
            if point.saturated:
                return point.offered_per_second
        return None

    def point_at(self, offered: float) -> Optional[LoadPoint]:
        """The measured point at one offered load (or ``None``)."""
        for point in self.points:
            if point.offered_per_second == offered:
                return point
        return None

    def table(self) -> str:
        """Render the saturation curve as a fixed-width table."""
        title = (f"overload sweep — {self.config.protocol} on "
                 f"{self.config.substrate}, admission="
                 f"{self.config.admission or 'none'}")
        rows = [[point.offered_per_second, point.submitted, point.completed,
                 point.rejected, point.goodput_per_second, point.p50_latency_ms,
                 point.p99_latency_ms, point.p999_latency_ms,
                 "*" if point.saturated else ""]
                for point in self.points]
        table = format_table(title, ["offered/s", "submitted", "completed",
                                     "rejected", "goodput/s", "p50 ms", "p99 ms",
                                     "p999 ms", "sat"], rows)
        knee = self.knee_offered_per_second
        footer = (f"peak goodput {self.peak_goodput:.1f}/s; knee at "
                  + (f"{knee:.0f} offered/s" if knee is not None
                     else "none (never saturated)"))
        return table + "\n" + footer

    def summary_metrics(self) -> Dict[str, object]:
        """Headline numbers for the results store's trend tables."""
        worst = self.points[-1] if self.points else None
        return {"peak_goodput": self.peak_goodput,
                "knee_offered_per_second": self.knee_offered_per_second,
                "points": len(self.points),
                "max_offered_per_second": (worst.offered_per_second
                                           if worst else None),
                "p99_latency_ms": worst.p99_latency_ms if worst else None,
                "p999_latency_ms": worst.p999_latency_ms if worst else None,
                "goodput_per_second": (worst.goodput_per_second
                                       if worst else None),
                "rejected": sum(point.rejected for point in self.points)}


def collect_overload_point(result: ExperimentResult) -> Dict[str, object]:
    """Reduce one sim experiment to an overload point payload.

    Module-level so sweep workers can pickle it by reference.  Submitted /
    rejected counts come from the cluster's admission snapshot (the driver
    always installs at least the counting ``"none"`` policy).

    Goodput and the latency tail are computed over completions inside the
    measurement window only.  The experiment's drain phase lets a saturated
    system's backlog finish, and counting those completions would credit an
    overloaded baseline with goodput it never sustained — the curve would
    never show a knee.
    """
    config = result.config
    window_end = config.warmup_ms + config.duration_ms
    in_window = [sample.latency_ms for sample in result.metrics.samples
                 if sample.completed_at <= window_end]
    summary = summarize_latencies(in_window) if in_window else None
    snapshot = result.cluster.admission_snapshot()
    admitted = snapshot.stats.admitted if snapshot is not None else len(in_window)
    rejected = snapshot.stats.rejected if snapshot is not None else 0
    return {"submitted": admitted + rejected,
            "completed": len(in_window),
            "rejected": rejected,
            "goodput_per_second": len(in_window) * 1000.0 / config.duration_ms,
            "mean_latency_ms": summary.mean if summary else None,
            "p50_latency_ms": summary.median if summary else None,
            "p99_latency_ms": summary.p99 if summary else None,
            "p999_latency_ms": summary.p999 if summary else None,
            "admission": snapshot.as_dict() if snapshot is not None else None}


def _sim_points(config: OverloadConfig) -> List[LoadPoint]:
    """Run the sweep on the simulator substrate (one cell per load point)."""
    from repro.harness.figures import throughput_cost_model

    cost_model = config.cost_model
    if cost_model is None and config.use_cost_model:
        cost_model = throughput_cost_model()
    n_clients = ec2_five_sites().size * config.clients_per_site
    cells = []
    for offered in config.offered_loads:
        experiment = ExperimentConfig(
            protocol=config.protocol, conflict_rate=config.conflict_rate,
            clients_per_site=config.clients_per_site, open_loop=True,
            arrival_rate_per_client=offered / n_clients,
            duration_ms=config.duration_ms, warmup_ms=config.warmup_ms,
            admission=config.admission or "none", cost_model=cost_model,
            history_gc_ms=config.history_gc_ms)
        cells.append(sweep_cell(("overload", config.protocol,
                                 config.admission or "none", offered),
                                experiment, base_seed=config.seed,
                                runner=run_experiment,
                                collect=collect_overload_point))
    sweep = run_sweep(cells, workers=config.workers)
    points = []
    for offered, cell in zip(config.offered_loads, cells):
        payload = sweep.payload(cell.key)
        points.append(LoadPoint(offered_per_second=offered,
                                submitted=payload["submitted"],
                                completed=payload["completed"],
                                rejected=payload["rejected"],
                                goodput_per_second=payload["goodput_per_second"],
                                mean_latency_ms=payload["mean_latency_ms"],
                                p50_latency_ms=payload["p50_latency_ms"],
                                p99_latency_ms=payload["p99_latency_ms"],
                                p999_latency_ms=payload["p999_latency_ms"],
                                admission=payload["admission"]))
    return points


def _tcp_points(config: OverloadConfig) -> List[LoadPoint]:
    """Run the sweep over real sockets (one loadgen run per load point)."""
    from repro.net.client import LoadgenConfig, run_loadgen
    from repro.net.cluster import ServeConfig, serve_cluster

    points = []
    for index, offered in enumerate(config.offered_loads):
        cluster = None
        if config.endpoints is not None:
            endpoints = config.endpoints
        else:
            cluster = serve_cluster(ServeConfig(
                protocol=config.protocol, replicas=config.replicas,
                seed=config.seed, admission=config.admission or "none"))
            endpoints = cluster.peers
        try:
            report = run_loadgen(LoadgenConfig(
                endpoints=endpoints, clients=config.clients, open_loop=True,
                rate_per_client=offered / max(1, config.clients),
                duration_ms=config.duration_ms, warmup_ms=config.warmup_ms,
                conflict_rate=config.conflict_rate,
                seed=config.seed + index, timeout_s=config.timeout_s))
        finally:
            if cluster is not None:
                cluster.stop()
        admissions = [stats.get("admission") for stats in report.per_replica.values()
                      if isinstance(stats, dict) and stats.get("admission")]
        merged: Optional[Dict[str, object]] = None
        if admissions:
            merged = {"policy": admissions[0].get("policy")}
            for key in ("admitted", "rejected", "rejected_inflight", "shed_deadline"):
                merged[key] = sum(int(entry.get(key, 0)) for entry in admissions)
            merged["max_inflight"] = max(int(entry.get("max_inflight", 0))
                                         for entry in admissions)
        points.append(LoadPoint(offered_per_second=offered,
                                submitted=report.submitted,
                                completed=report.completed,
                                rejected=report.rejected,
                                goodput_per_second=report.throughput_per_second,
                                mean_latency_ms=report.mean_latency_ms,
                                p50_latency_ms=report.p50_latency_ms,
                                p99_latency_ms=report.p99_latency_ms,
                                p999_latency_ms=report.p999_latency_ms,
                                admission=merged))
    return points


def run_overload_sweep(config: OverloadConfig) -> OverloadResult:
    """Run the configured offered-load sweep end to end."""
    if config.substrate == "sim":
        points = _sim_points(config)
    elif config.substrate == "tcp":
        points = _tcp_points(config)
    else:
        raise ValueError(f"unknown substrate {config.substrate!r}; "
                         "expected 'sim' or 'tcp'")
    return OverloadResult(config=config, points=points)


def store_overload_result(store, result: OverloadResult,
                          label: str = "overload") -> int:
    """Persist a sweep into a :class:`~repro.metrics.store.ResultsStore`.

    One ``runs`` row carries the headline metrics; each load point becomes a
    ``load_points`` row.  Returns the new ``run_id``.
    """
    config = result.config
    run_id = store.record_run(
        "overload", label, protocol=config.protocol, substrate=config.substrate,
        seed=config.seed,
        config={"offered_loads": list(config.offered_loads),
                "admission": config.admission, "duration_ms": config.duration_ms,
                "warmup_ms": config.warmup_ms,
                "conflict_rate": config.conflict_rate},
        metrics=result.summary_metrics())
    for index, point in enumerate(result.points):
        store.record_load_point(
            run_id, index, offered_per_second=point.offered_per_second,
            submitted=point.submitted, completed=point.completed,
            rejected=point.rejected,
            goodput_per_second=point.goodput_per_second,
            mean_ms=point.mean_latency_ms, p50_ms=point.p50_latency_ms,
            p99_ms=point.p99_latency_ms, p999_ms=point.p999_latency_ms,
            extra={"admission": point.admission})
    return run_id
