"""Process-parallel sweep orchestrator for figure experiments.

A *sweep* is a grid of independent experiment cells (protocol × conflict
rate × client count × topology × ...).  PR 1 made a single cell fast; this
module makes a whole grid scale with the hardware instead of with the grid
width: cells fan out across worker processes and their per-cell metric
payloads are aggregated back in a fixed order.

Determinism is the load-bearing guarantee.  Each cell is hermetic — it
builds its own simulator whose RNG stream is forked from the sweep's base
seed keyed on the cell's coordinates (:meth:`DeterministicRandom.fork_cell`),
so a cell computes byte-identical results whether it runs in-process, in a
worker, alone, or re-ordered.  Aggregation walks cells in their submission
order.  Consequently ``run_sweep(cells, workers=4)`` and
``run_sweep(cells, workers=1)`` produce byte-identical figure tables and
BENCH series, which the test suite enforces.

Worker failures are loud, never hangs: an exception inside a cell, or a
worker process dying outright, aborts the sweep with a :class:`SweepError`
naming the failing cell.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor, process
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from fnmatch import fnmatchcase
from typing import Callable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.harness.experiment import (
    ExperimentConfig,
    run_experiment,
    summarize_experiment,
)
from repro.metrics.perf import TIMING_EXTRA_KEY, PerfRecord, merge_partial_records
from repro.sim.random import DeterministicRandom, stable_label
from repro.sim.simulator import credit_external_events, total_events_executed

#: Environment variable consulted when ``run_sweep`` is called without an
#: explicit worker count: figure drivers default to serial, but CI and the
#: nightly sweep can turn every driver parallel without threading a flag
#: through each call site.
WORKERS_ENV_VAR = "REPRO_SWEEP_WORKERS"

#: Cell key type: a tuple of primitive coordinates (strings/numbers).
CellKey = Tuple[object, ...]


class SweepError(RuntimeError):
    """A sweep cell failed (raised an exception or its worker died)."""


def key_string(key: Sequence[object]) -> str:
    """Human/CLI-facing form of a cell key, e.g. ``fig9/caesar/0.1``."""
    return "/".join(stable_label(part) for part in key)


def matches_any(key: Sequence[object], patterns: Sequence[str]) -> bool:
    """Whether the cell key matches one of the glob ``patterns``.

    Patterns are matched with :func:`fnmatch.fnmatchcase` against
    :func:`key_string`, so ``fig9/caesar/*`` selects one protocol's row and
    ``*/0.3`` selects one conflict-rate column.
    """
    text = key_string(key)
    return any(fnmatchcase(text, pattern) for pattern in patterns)


@dataclass(frozen=True)
class SweepCell:
    """One hermetic unit of work in a sweep.

    Attributes:
        key: the cell's coordinates; also names it in errors and filters.
        config: the experiment to run (already carrying the cell's seed —
            use :func:`sweep_cell` to derive it from a base seed).
        runner: top-level callable executing the cell (must be picklable by
            reference for worker dispatch); receives ``config`` plus
            ``options`` as keyword arguments.
        collect: reduces the runner's result to a small picklable payload
            inside the worker, so the full simulator state never crosses the
            process boundary.  ``None`` means the runner already returned
            the payload.
        options: extra keyword arguments for ``runner``.
    """

    key: CellKey
    config: ExperimentConfig
    runner: Callable = run_experiment
    collect: Optional[Callable] = summarize_experiment
    options: Mapping[str, object] = field(default_factory=dict)


def sweep_cell(key: Sequence[object], config: ExperimentConfig,
               base_seed: Optional[int] = None,
               seed_key: Optional[Sequence[object]] = None,
               runner: Callable = run_experiment,
               collect: Optional[Callable] = summarize_experiment,
               options: Optional[Mapping[str, object]] = None) -> SweepCell:
    """Build a cell whose RNG stream is forked from ``base_seed``.

    The cell's seed is ``DeterministicRandom(base_seed).fork_cell(seed_key or
    key)``: every cell of a sweep draws from an independent stream, keyed on
    coordinates rather than on position, so inserting or filtering cells
    never perturbs its neighbours.  ``seed_key`` overrides the stream key for
    cells whose results are deliberately shared across coordinates (e.g. a
    conflict-oblivious protocol reported under every conflict rate).
    """
    key = tuple(key)
    if base_seed is not None:
        derived = DeterministicRandom(base_seed).fork_cell(tuple(seed_key) if seed_key else key)
        config = replace(config, seed=derived.seed)
    return SweepCell(key=key, config=config, runner=runner, collect=collect,
                     options=dict(options or {}))


def product_grid(axes: Mapping[str, Sequence[object]]):
    """Iterate the cartesian product of named axes as dicts, in axis order.

    ``product_grid({"protocol": ("caesar", "epaxos"), "rate": (0.0, 0.3)})``
    yields ``{"protocol": "caesar", "rate": 0.0}`` first and varies the last
    axis fastest, mirroring the nested-loop order the serial drivers used.
    """
    names = list(axes)
    for values in itertools.product(*(axes[name] for name in names)):
        yield dict(zip(names, values))


@dataclass
class SweepPlan:
    """The resolved grid of one (or more) sweeps, recorded without running.

    Attributes:
        cells: ``(key_string, selected)`` pairs in submission order, where
            ``selected`` is whether the cell survives the active filter.
    """

    cells: List[Tuple[str, bool]] = field(default_factory=list)

    @property
    def selected(self) -> List[str]:
        """Keys of the cells that would run."""
        return [key for key, chosen in self.cells if chosen]


#: Active plan collector; when set, :func:`run_sweep` records the grid into
#: it and returns an empty result instead of executing anything.
_ACTIVE_PLAN: Optional[SweepPlan] = None


@contextmanager
def planning_sweeps():
    """Context manager putting :func:`run_sweep` into list-only mode.

    Inside the block every ``run_sweep`` call records its resolved cell grid
    (with filter outcomes) into the yielded :class:`SweepPlan` and executes
    nothing; figure drivers still return well-formed (all-``None``) results.
    Used by ``repro sweep --list-cells``.
    """
    global _ACTIVE_PLAN
    plan = SweepPlan()
    previous, _ACTIVE_PLAN = _ACTIVE_PLAN, plan
    try:
        yield plan
    finally:
        _ACTIVE_PLAN = previous


@dataclass
class CellOutcome:
    """What one executed cell reported back."""

    key: CellKey
    payload: object
    wall_seconds: float
    events_executed: int


@dataclass
class SweepResult:
    """Aggregated outcome of one sweep run."""

    outcomes: List[CellOutcome]
    workers: int
    wall_seconds: float
    skipped: int = 0

    def __post_init__(self) -> None:
        self._by_key = {outcome.key: outcome for outcome in self.outcomes}

    def payload(self, key: Sequence[object]) -> object:
        """The collected payload of cell ``key`` (``None`` if filtered out)."""
        outcome = self._by_key.get(tuple(key))
        return outcome.payload if outcome is not None else None

    @property
    def events_executed(self) -> int:
        """Simulation events executed across every cell."""
        return sum(outcome.events_executed for outcome in self.outcomes)

    @property
    def cell_wall_seconds(self) -> float:
        """Sum of per-cell wall times — the sweep's serial-equivalent cost."""
        return sum(outcome.wall_seconds for outcome in self.outcomes)

    def perf_record(self, name: str) -> PerfRecord:
        """Merge the per-cell measurements into one BENCH-able record."""
        partials = [PerfRecord(name=key_string(outcome.key),
                               wall_seconds=outcome.wall_seconds,
                               events_executed=outcome.events_executed,
                               events_per_second=(outcome.events_executed / outcome.wall_seconds
                                                  if outcome.wall_seconds > 0 else 0.0))
                    for outcome in self.outcomes]
        record = merge_partial_records(name, partials, wall_seconds=self.wall_seconds)
        timing = record.extra[TIMING_EXTRA_KEY]
        timing["workers"] = self.workers
        timing["cpus"] = os.cpu_count()
        if self.wall_seconds > 0:
            timing["parallel_speedup_estimate"] = round(
                self.cell_wall_seconds / self.wall_seconds, 2)
        record.extra["cells"] = len(self.outcomes)
        if self.skipped:
            record.extra["cells_skipped"] = self.skipped
        return record


def resolve_workers(workers: Union[int, str, None], cell_count: int) -> int:
    """Turn a worker specification into a concrete process count.

    ``None`` falls back to ``$REPRO_SWEEP_WORKERS`` and then to serial;
    ``"auto"`` (or 0) means one worker per CPU.  The count is capped at the
    number of cells — extra processes would only sit idle.
    """
    if workers is None:
        workers = os.environ.get(WORKERS_ENV_VAR) or 1
    if isinstance(workers, str):
        workers = os.cpu_count() or 1 if workers.strip().lower() == "auto" else int(workers)
    if workers == 0:
        workers = os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"worker count must be >= 0, got {workers}")
    return max(1, min(workers, max(cell_count, 1)))


def _execute_cell(cell: SweepCell) -> CellOutcome:
    """Run one cell and reduce it to its payload (runs inside the worker)."""
    events_before = total_events_executed()
    started = time.perf_counter()
    result = cell.runner(cell.config, **cell.options)
    payload = cell.collect(result) if cell.collect is not None else result
    wall = time.perf_counter() - started
    events = total_events_executed() - events_before
    return CellOutcome(key=cell.key, payload=payload, wall_seconds=wall,
                       events_executed=events)


def _mp_context():
    """Pick the process start method: ``fork`` where available (fast, shares
    the warm interpreter), ``spawn`` elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def run_sweep(cells: Sequence[SweepCell], workers: Union[int, str, None] = None,
              serial: bool = False,
              cell_filter: Optional[Sequence[str]] = None) -> SweepResult:
    """Execute every cell and aggregate the payloads in cell order.

    Args:
        cells: the grid, in the order results should be aggregated.
        workers: process count, ``"auto"`` for one per CPU, or ``None`` for
            the ``$REPRO_SWEEP_WORKERS`` default (serial when unset).
        serial: force in-process execution regardless of ``workers``.
        cell_filter: glob patterns over :func:`key_string`; when given, only
            matching cells run (the rest report ``None`` payloads).

    Returns:
        A :class:`SweepResult` whose outcome order matches ``cells``.

    Raises:
        SweepError: a cell raised, or its worker process died.
    """
    selected = list(cells)
    skipped = 0
    if cell_filter:
        kept = [cell for cell in selected if matches_any(cell.key, cell_filter)]
        skipped = len(selected) - len(kept)
        selected = kept
    if _ACTIVE_PLAN is not None:
        chosen = {id(cell) for cell in selected}
        _ACTIVE_PLAN.cells.extend((key_string(cell.key), id(cell) in chosen)
                                  for cell in cells)
        return SweepResult(outcomes=[], workers=0, wall_seconds=0.0, skipped=skipped)
    worker_count = 1 if serial else resolve_workers(workers, len(selected))

    started = time.perf_counter()
    if worker_count <= 1 or len(selected) <= 1:
        outcomes = []
        for cell in selected:
            try:
                outcomes.append(_execute_cell(cell))
            except Exception as exc:
                raise SweepError(
                    f"sweep cell {key_string(cell.key)!r} failed: {exc}") from exc
        return SweepResult(outcomes=outcomes, workers=1,
                           wall_seconds=time.perf_counter() - started, skipped=skipped)

    outcomes = []
    with ProcessPoolExecutor(max_workers=worker_count, mp_context=_mp_context()) as pool:
        futures = [(cell, pool.submit(_execute_cell, cell)) for cell in selected]
        try:
            for cell, future in futures:
                outcomes.append(future.result())
        except process.BrokenProcessPool as exc:
            raise SweepError(
                f"worker process died while running sweep cell "
                f"{key_string(cell.key)!r} (or a sibling cell); the sweep was "
                f"aborted rather than left hanging") from exc
        except Exception as exc:
            raise SweepError(
                f"sweep cell {key_string(cell.key)!r} failed: {exc}") from exc
        finally:
            # Don't start queued cells once the sweep's outcome is decided;
            # already-running cells finish (bounded work), queued ones don't.
            pool.shutdown(wait=True, cancel_futures=True)

    # Workers incremented their own interpreters' event counters; credit the
    # per-cell counts back so this process's perf records stay comparable
    # with serial runs.
    credit_external_events(sum(outcome.events_executed for outcome in outcomes))
    return SweepResult(outcomes=outcomes, workers=worker_count,
                       wall_seconds=time.perf_counter() - started, skipped=skipped)
