"""The chaos conformance driver.

One :func:`run_chaos` call is a complete adversarial experiment: build a
cluster, drive it with history-taped closed-loop clients, unleash a nemesis
schedule, heal, probe for progress, and judge the taped client history with
the per-key linearizability checker.  The verdict combines three oracles:

* **linearizability** — the client-observable history must be linearizable
  against the key-value store's sequential spec (pending operations may take
  effect late or never);
* **internal consistency** — live replicas' execution logs must agree on
  the order of conflicting commands (the Generalized Consensus invariant the
  repository already checks elsewhere);
* **progress after heal** — once the fabric is healed, fresh probe commands
  submitted at every healthy replica must complete within a deadline.

:func:`run_conformance_matrix` runs the cross product of protocols and named
schedules and is what ``repro chaos --matrix`` (and the CI chaos-smoke job)
executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.chaos.checker import DEFAULT_MAX_STATES, LinearizabilityReport, check_history
from repro.chaos.history import HistoryTape, TapedClientStats
from repro.chaos.nemesis import (
    CONFORMANCE_SCHEDULES,
    Nemesis,
    NemesisPlan,
    build_schedule,
)
from repro.consensus.command import Command
from repro.consensus.interface import DecisionKind
from repro.core.invariants import check_execution_consistency
from repro.harness.cluster import ClusterConfig, build_cluster
from repro.metrics.collector import MetricsCollector
from repro.sim.network import NetworkConfig
from repro.sim.topology import Topology
from repro.workload.clients import ClientPool, ClosedLoopClient
from repro.workload.generator import ConflictWorkload, WorkloadConfig

#: Client ids from this value upwards are progress probes, so their command
#: ids can never collide with the workload clients'.
PROBE_CLIENT_BASE = 10_000


@dataclass
class ChaosConfig:
    """Parameters of one chaos experiment.

    Attributes:
        protocol: protocol under test.
        schedule: named nemesis schedule (see
            :data:`repro.chaos.nemesis.NEMESIS_SCHEDULES`); ignored when
            ``plan`` is given.
        plan: explicit fault schedule overriding ``schedule``.
        seed: simulation seed (the whole run replays from it).
        clients_per_site: history-taped closed-loop clients per replica.
        conflict_rate: fraction of commands on the shared key pool (high
            contention makes the linearizability check strong).
        fault_at_ms: when the named schedule's faults begin.
        fault_hold_ms: how long until the named schedule has fully healed.
        settle_ms: extra virtual time after the heal before the workload
            stops and the progress probe starts.
        reconnect_timeout_ms: closed-loop client give-up time; abandoned
            commands stay *pending* on the tape.
        probe_commands_per_site: fresh-key probe commands submitted per
            healthy replica after the heal.
        probe_deadline_ms: virtual-time budget for every probe to complete.
        recovery: run failure detectors / recovery machinery where the
            protocol supports it.
        retransmit_enabled: run the runtime retransmission + catch-up layer
            (default); disable to reproduce the pre-retransmission
            safe-but-not-live behaviour under lossy schedules.
        topology: latency topology (defaults to the paper's five EC2 sites).
        network: network configuration (mild jitter by default, like the
            figure experiments).
        workload: key-pool configuration override.
        max_states_per_key: linearizability search budget per key.
    """

    protocol: str = "caesar"
    schedule: str = "minority-partition"
    plan: Optional[NemesisPlan] = None
    seed: int = 1
    clients_per_site: int = 2
    conflict_rate: float = 0.5
    fault_at_ms: float = 1000.0
    fault_hold_ms: float = 2000.0
    settle_ms: float = 1500.0
    reconnect_timeout_ms: float = 1500.0
    probe_commands_per_site: int = 2
    probe_deadline_ms: float = 60000.0
    recovery: bool = False
    retransmit_enabled: bool = True
    topology: Optional[Topology] = None
    network: NetworkConfig = field(default_factory=lambda: NetworkConfig(jitter_ms=2.0))
    workload: Optional[WorkloadConfig] = None
    max_states_per_key: int = DEFAULT_MAX_STATES

    @classmethod
    def kwargs_from_args(cls, args) -> Dict[str, object]:
        """Shared chaos settings from CLI args, as plain keyword arguments.

        Used both by :meth:`from_args` and by the matrix / random-schedule
        drivers, which fan the same settings out over many configs.
        ``--quick`` only shrinks the windows the user did not set explicitly.
        """
        quick = getattr(args, "quick", False)
        fault_at = getattr(args, "fault_at", None)
        if fault_at is None:
            fault_at = 500.0 if quick else 1000.0
        hold = getattr(args, "hold", None)
        if hold is None:
            hold = 1000.0 if quick else 2000.0
        kwargs: Dict[str, object] = dict(
            seed=getattr(args, "seed", cls.seed),
            clients_per_site=getattr(args, "clients", cls.clients_per_site),
            conflict_rate=getattr(args, "conflicts", 50.0) / 100.0,
            fault_at_ms=fault_at, fault_hold_ms=hold,
            recovery=getattr(args, "recovery", False),
            retransmit_enabled=not getattr(args, "no_retransmit", False))
        if quick:
            kwargs["settle_ms"] = 800.0
        return kwargs

    @classmethod
    def from_args(cls, args, **overrides) -> "ChaosConfig":
        """Build a config from CLI-style args; keyword ``overrides`` win."""
        kwargs = cls.kwargs_from_args(args)
        kwargs["protocol"] = getattr(args, "protocol", cls.protocol)
        schedule = getattr(args, "nemesis", None)
        if schedule is not None:
            kwargs["schedule"] = schedule
        kwargs.update(overrides)
        return cls(**kwargs)


@dataclass
class ChaosResult:
    """Everything one chaos run measured and concluded."""

    config: ChaosConfig
    plan: NemesisPlan
    progress: bool
    probes_completed: int
    probes_submitted: int
    report: LinearizabilityReport
    internal_violations: List[str]
    client_stats: TapedClientStats
    fast_decisions: int
    slow_decisions: int
    recoveries: int
    fault_stats: Dict[str, int]
    nemesis_log: List[tuple]
    events_executed: int

    @property
    def linearizable(self) -> bool:
        """Whether the taped client history passed the checker."""
        return self.report.ok

    @property
    def ok(self) -> bool:
        """The conformance verdict: linearizable, internally consistent, live."""
        return self.linearizable and not self.internal_violations and self.progress

    def verdict(self) -> str:
        """Short human-readable verdict."""
        if self.ok:
            return "PASS"
        reasons = []
        if not self.report.ok:
            reasons.append("non-linearizable" if self.report.violations else "inconclusive")
        if self.internal_violations:
            reasons.append("internal-divergence")
        if not self.progress:
            reasons.append("no-progress")
        return "FAIL(" + ",".join(reasons) + ")"


def run_chaos(config: ChaosConfig) -> ChaosResult:
    """Run one protocol under one nemesis schedule and judge the outcome."""
    cluster_config = ClusterConfig(
        protocol=config.protocol, topology=config.topology, seed=config.seed,
        network=config.network, retransmit=config.retransmit_enabled,
        protocol_options=_chaos_protocol_options(config))
    cluster = build_cluster(cluster_config)
    sim = cluster.sim
    tape = HistoryTape(sim)
    plan = config.plan or build_schedule(config.schedule, cluster.size,
                                         config.fault_at_ms, config.fault_hold_ms)
    nemesis = Nemesis(cluster, plan)

    metrics = MetricsCollector()
    workload_config = config.workload or WorkloadConfig(conflict_rate=config.conflict_rate)
    pool = ClientPool()
    client_id = 0
    for replica in cluster.replicas:
        for _ in range(config.clients_per_site):
            rng = sim.rng.fork(f"chaos-client-{client_id}")
            workload = ConflictWorkload(client_id=client_id, origin=replica.node_id,
                                        config=workload_config, rng=rng)
            pool.add(ClosedLoopClient(
                client_id=client_id, replica=replica, workload=workload, sim=sim,
                metrics=metrics, reconnect_timeout_ms=config.reconnect_timeout_ms,
                fallback_replicas=list(cluster.replicas), history=tape))
            client_id += 1

    cluster.start()
    pool.start_all()
    workload_until = max(plan.quiesced_at_ms,
                         config.fault_at_ms + config.fault_hold_ms) + config.settle_ms
    cluster.run(workload_until - sim.now)
    pool.stop_all()
    nemesis.ensure_quiesced()

    # ------------------------------------------------------- progress probe
    dead = set(nemesis.crashed_forever)
    outstanding = {"count": 0}
    probes_submitted = 0
    for replica in cluster.replicas:
        if replica.crashed or replica.node_id in dead:
            continue
        probe_client = PROBE_CLIENT_BASE + replica.node_id
        for i in range(config.probe_commands_per_site):
            key = f"probe-{replica.node_id}-{i}"
            command = Command(command_id=(probe_client, i), key=key, operation="put",
                              value=f"probe{replica.node_id}.{i}", origin=replica.node_id)
            taped = tape.invoke(probe_client, key, "put", command.value)
            outstanding["count"] += 1
            probes_submitted += 1

            def on_probe(result, taped=taped) -> None:
                tape.respond(taped, result.value)
                outstanding["count"] -= 1

            replica.submit(command, callback=on_probe)
    progress = sim.run_until(lambda: outstanding["count"] == 0,
                             deadline=sim.now + config.probe_deadline_ms,
                             check_every=16)
    probes_completed = probes_submitted - outstanding["count"]

    # ------------------------------------------------------------- verdicts
    report = check_history(tape, max_states_per_key=config.max_states_per_key)
    internal = check_execution_consistency(cluster.replicas)

    fast = slow = recoveries = 0
    for replica in cluster.replicas:
        for decision in replica.completed_decisions():
            if decision.kind is DecisionKind.FAST:
                fast += 1
            elif decision.kind is not None:
                slow += 1
        stats = getattr(replica, "stats", None)
        if stats is not None:
            recoveries += (stats.recoveries + stats.recoveries_completed + stats.elections)

    fault_stats = {name: value for name, value in vars(nemesis.faults.stats).items()
                   if isinstance(value, int) and value}
    return ChaosResult(
        config=config, plan=plan, progress=progress,
        probes_completed=probes_completed, probes_submitted=probes_submitted,
        report=report, internal_violations=internal,
        client_stats=TapedClientStats.of(tape), fast_decisions=fast,
        slow_decisions=slow, recoveries=recoveries, fault_stats=fault_stats,
        nemesis_log=list(nemesis.log), events_executed=sim.steps_executed)


def _chaos_protocol_options(config: ChaosConfig) -> Dict[str, object]:
    """Per-protocol constructor options for a chaos run."""
    if config.protocol == "caesar":
        from repro.core.config import CaesarConfig

        return {"config": CaesarConfig(recovery_enabled=config.recovery)}
    if config.protocol in ("epaxos", "multipaxos"):
        return {"recovery_enabled": config.recovery}
    return {}


def run_conformance_matrix(protocols: Sequence[str], schedules: Sequence[str],
                           seed: int = 1, **overrides) -> List[ChaosResult]:
    """Run every protocol under every named schedule (the conformance matrix).

    ``overrides`` are applied to each cell's :class:`ChaosConfig`; every cell
    runs with the same seed, so the whole matrix replays deterministically.
    """
    results = []
    for protocol in protocols:
        for schedule in schedules:
            results.append(run_chaos(ChaosConfig(protocol=protocol, schedule=schedule,
                                                 seed=seed, **overrides)))
    return results


def format_matrix(results: Sequence[ChaosResult]) -> str:
    """Render matrix results as a protocols x schedules verdict table."""
    protocols = list(dict.fromkeys(r.config.protocol for r in results))
    schedules = list(dict.fromkeys(r.plan.name for r in results))
    by_cell = {(r.config.protocol, r.plan.name): r for r in results}
    width = max((len(s) for s in schedules), default=8) + 2
    header = "protocol".ljust(12) + "".join(s.rjust(width) for s in schedules)
    lines = [header, "-" * len(header)]
    for protocol in protocols:
        cells = []
        for schedule in schedules:
            result = by_cell.get((protocol, schedule))
            cells.append(("-" if result is None else result.verdict()).rjust(width))
        lines.append(protocol.ljust(12) + "".join(cells))
    failed = [r for r in results if not r.ok]
    lines.append("")
    lines.append(f"{len(results) - len(failed)}/{len(results)} cells passed")
    for result in failed:
        lines.append(f"  FAIL {result.config.protocol} x {result.plan.name}: "
                     f"{result.verdict()} "
                     f"(probes {result.probes_completed}/{result.probes_submitted}; "
                     f"{result.report.describe()})")
    return "\n".join(lines)


def default_conformance_schedules() -> List[str]:
    """The named schedules every protocol is expected to pass (lossy included)."""
    return list(CONFORMANCE_SCHEDULES)
