"""Experiment harness: cluster construction, workload drivers and figure reproduction."""

from repro.harness.cluster import PROTOCOLS, Cluster, ClusterConfig, build_cluster
from repro.harness.experiment import (
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
    summarize_experiment,
)
from repro.harness.report import format_table
from repro.harness.sweep import (
    SweepCell,
    SweepError,
    SweepResult,
    run_sweep,
    sweep_cell,
)

__all__ = [
    "Cluster",
    "ClusterConfig",
    "build_cluster",
    "PROTOCOLS",
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
    "summarize_experiment",
    "format_table",
    "SweepCell",
    "SweepError",
    "SweepResult",
    "run_sweep",
    "sweep_cell",
]
