"""Sharded keyspace over independent consensus groups.

One consensus group cannot serve millions of users: every command, wherever
it originates, crosses the same O(n^2) message complexity and the same
per-replica decision path.  The classic scale-out is to partition the
keyspace into *shards* and run one independent protocol group per shard —
commands on different shards never conflict, so the groups proceed in
parallel with zero coordination.

This module builds that layer on top of the existing harness:

* :class:`ShardRouter` — routes a key to a shard with a process-stable hash
  (CRC32, never Python's salted ``hash``), plus an explicit key→shard map
  override for tests.
* :func:`run_sharded` — pre-generates every client's command stream from the
  configured workload, routes each command by key, and replays each shard's
  share on its own hermetic cluster (own simulator, network, replicas) seeded
  via ``DeterministicRandom.fork_cell(("shard", index))``.  Shards run
  through the sweep orchestrator, so a shard-parallel run is byte-identical
  to the serial one and scales with the hardware.
* :class:`CrossShardCoordinator` — the stretch goal's stub interface:
  commands spanning shards need an atomic-commit round (2PC over group
  decisions); the interface is pinned here, unimplemented.

Determinism is end to end: the command streams are generated from CRC32-
derived client streams before any shard runs, routing is stable across
processes, and each shard's payload is a dict of primitives computed inside
its hermetic cell.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.consensus.command import Command
from repro.harness.cluster import ClusterConfig, build_cluster
from repro.harness.sweep import SweepCell, SweepResult, run_sweep
from repro.metrics.collector import MetricsCollector
from repro.sim.network import NetworkConfig
from repro.sim.random import DeterministicRandom
from repro.sim.topology import Topology, wan_topology
from repro.workload.clients import ClientPool, ClosedLoopClient
from repro.workload.generator import (WorkloadSpec, ZipfWorkloadConfig,
                                      build_workload)


class ShardRouter:
    """Routes keys to shards.

    The default route is ``crc32(key) % shards`` — CRC32 is stable across
    processes and Python versions, so a key routes to the same shard in every
    worker, every run, every machine (Python's builtin ``hash`` is salted per
    process and must never leak into routing).  ``overrides`` pins chosen
    keys to chosen shards, which tests use to construct known cross-shard
    layouts.
    """

    def __init__(self, shards: int,
                 overrides: Optional[Mapping[str, int]] = None) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.shards = shards
        self.overrides = dict(overrides or {})
        for key, shard in self.overrides.items():
            if not 0 <= shard < shards:
                raise ValueError(f"override for {key!r} routes to shard {shard}, "
                                 f"but there are only {shards} shards")

    def shard_of(self, key: str) -> int:
        """The single shard responsible for ``key``."""
        override = self.overrides.get(key)
        if override is not None:
            return override
        return zlib.crc32(key.encode("utf-8")) % self.shards


class ScriptedWorkload:
    """Replays a pre-generated command list (one client's share of a shard).

    Implements the same ``next_command`` interface the live generators do, so
    :class:`~repro.workload.clients.ClosedLoopClient` drives it unchanged.
    """

    def __init__(self, commands: Sequence[Command]) -> None:
        self._commands = list(commands)
        self._next = 0
        self.generated = 0

    def __len__(self) -> int:
        return len(self._commands)

    def next_command(self) -> Command:
        """The next scripted command (raises ``IndexError`` past the end)."""
        command = self._commands[self._next]
        self._next += 1
        self.generated += 1
        return command


@dataclass
class ShardedConfig:
    """Description of one sharded run.

    Attributes:
        protocol: protocol name; every shard group runs the same protocol.
        shards: number of independent consensus groups.
        sites: number of distinct WAN sites per group (ignored when
            ``topology`` is given).
        replicas_per_site: co-located replicas per site; each group has
            ``sites * replicas_per_site`` replicas.
        clients: number of clients.  Each client's stream is generated from
            the global workload and split across shards by key, so a hot
            shard honestly receives more commands under skew.
        commands_per_client: length of each client's stream.
        workload: key-distribution configuration
        (:class:`~repro.workload.generator.WorkloadConfig` or
            :class:`~repro.workload.generator.ZipfWorkloadConfig`).
        seed: base seed; shard ``i`` runs on the stream
            ``DeterministicRandom(seed).fork_cell(("shard", i))`` and client
            ``c``'s commands come from ``fork_cell(("shard-client", c))``.
        topology: explicit per-group topology override (all groups share it).
        network: per-group network configuration.
        deadline_ms: virtual-time bound for a shard to decide its commands.
        router_overrides: explicit key→shard pins (tests only).
    """

    protocol: str = "caesar"
    shards: int = 4
    sites: int = 20
    replicas_per_site: int = 1
    clients: int = 8
    commands_per_client: int = 5
    workload: WorkloadSpec = field(default_factory=lambda: ZipfWorkloadConfig())
    seed: int = 1
    topology: Optional[Topology] = None
    network: NetworkConfig = field(default_factory=lambda: NetworkConfig(jitter_ms=3.0))
    deadline_ms: float = 600000.0
    router_overrides: Optional[Dict[str, int]] = None

    def build_topology(self) -> Topology:
        """The per-group topology (shared by every shard group)."""
        if self.topology is not None:
            return self.topology
        return wan_topology(sites=self.sites, replicas_per_site=self.replicas_per_site,
                            seed=self.seed)


@dataclass(frozen=True)
class ShardTask:
    """One shard's hermetic unit of work (picklable; crosses into workers)."""

    shard: int
    protocol: str
    topology: Topology
    seed: int
    network: NetworkConfig
    deadline_ms: float
    #: ``(client_id, commands)`` pairs, in client order.
    streams: Tuple[Tuple[int, Tuple[Command, ...]], ...]


def generate_streams(config: ShardedConfig) -> List[Tuple[int, List[Command]]]:
    """Generate every client's full command stream from the global workload.

    Client ``c`` draws from ``DeterministicRandom(config.seed).fork_cell(
    ("shard-client", c))`` — keyed on the client id, not on the shard — so
    the streams are independent of the shard count and a 1-shard run submits
    exactly the same commands as an 8-shard run.
    """
    base = DeterministicRandom(config.seed)
    streams: List[Tuple[int, List[Command]]] = []
    for client_id in range(config.clients):
        rng = base.fork_cell(("shard-client", client_id))
        workload = build_workload(client_id=client_id, origin=0,
                                  config=config.workload, rng=rng)
        commands = [workload.next_command() for _ in range(config.commands_per_client)]
        streams.append((client_id, commands))
    return streams


def route_streams(streams: Sequence[Tuple[int, Sequence[Command]]],
                  router: ShardRouter) -> List[List[Tuple[int, List[Command]]]]:
    """Split each client's stream across shards by key.

    Returns one ``(client_id, commands)`` list per shard; a client appears in
    a shard's list only when at least one of its commands routes there.
    Relative order within a client's shard-local stream matches the global
    stream, and command ids stay globally unique (``(client, seq)``).
    """
    per_shard: List[List[Tuple[int, List[Command]]]] = [[] for _ in range(router.shards)]
    for client_id, commands in streams:
        split: Dict[int, List[Command]] = {}
        for command in commands:
            split.setdefault(router.shard_of(command.key), []).append(command)
        for shard in sorted(split):
            per_shard[shard].append((client_id, split[shard]))
    return per_shard


def run_shard_task(task: ShardTask) -> Dict[str, object]:
    """Run one shard group to completion and reduce it to a primitive payload.

    Top-level (picklable by reference) so the sweep orchestrator can dispatch
    it to worker processes.  The shard decides every routed command or
    reports the shortfall; nothing about the run leaves the cell except this
    dict.
    """
    cluster_config = ClusterConfig(protocol=task.protocol, topology=task.topology,
                                   seed=task.seed, network=task.network)
    cluster = build_cluster(cluster_config)
    metrics = MetricsCollector(warmup_ms=0.0)
    pool = ClientPool()
    all_ids = []
    for client_id, commands in task.streams:
        replica = cluster.replicas[client_id % cluster.size]
        workload = ScriptedWorkload(commands)
        pool.add(ClosedLoopClient(client_id=client_id, replica=replica,
                                  workload=workload, sim=cluster.sim, metrics=metrics,
                                  max_commands=len(commands)))
        all_ids.extend(command.command_id for command in commands)

    cluster.start()
    pool.start_all()
    decided_everywhere = cluster.run_until_executed(all_ids, deadline_ms=task.deadline_ms)
    undecided = 0
    if not decided_everywhere:
        undecided = sum(1 for command_id in all_ids
                        if not cluster.all_executed([command_id]))
    violations = len(cluster.check_consistency())
    makespan_ms = cluster.sim.now
    summary = metrics.summary()
    # CRC of the sorted decided-command ids: a compact fingerprint of the
    # decided set that byte-identity tests can compare across runs.
    decided_ids = sorted(command_id for command_id in all_ids
                         if cluster.all_executed([command_id]))
    decided_crc = zlib.crc32(repr(decided_ids).encode("utf-8"))
    return {
        "shard": task.shard,
        "replicas": cluster.size,
        "submitted": len(all_ids),
        "completed": pool.total_completed,
        "undecided": undecided,
        "decided_set_crc32": decided_crc,
        "violations": violations,
        "conflict_rate": round(metrics.conflict_rate(), 6),
        "distinct_keys": len(metrics.per_key_counts()),
        "mean_latency_ms": round(summary.mean, 6) if summary is not None else None,
        "p99_latency_ms": round(summary.p99, 6) if summary is not None else None,
        "makespan_ms": round(makespan_ms, 6),
        "throughput_per_second": round(len(all_ids) * 1000.0 / makespan_ms, 6)
                                 if makespan_ms > 0 else 0.0,
    }


@dataclass
class ShardedResult:
    """Everything a sharded run measured, plus the underlying sweep."""

    config: ShardedConfig
    shards: List[Dict[str, object]]
    sweep: SweepResult

    @property
    def total_submitted(self) -> int:
        """Commands routed across every shard (= clients x commands each)."""
        return sum(shard["submitted"] for shard in self.shards)

    @property
    def total_undecided(self) -> int:
        """Commands some live replica never executed, across shards."""
        return sum(shard["undecided"] for shard in self.shards)

    @property
    def total_violations(self) -> int:
        """Conflict-order violations across every shard group."""
        return sum(shard["violations"] for shard in self.shards)

    @property
    def all_decided(self) -> bool:
        """Whether every submitted command was decided on every live replica."""
        return self.total_undecided == 0

    @property
    def aggregate_throughput(self) -> float:
        """Sum of per-shard throughputs (groups run concurrently when
        deployed, so the aggregate is additive, bounded by the hottest
        shard's makespan)."""
        return sum(shard["throughput_per_second"] for shard in self.shards)

    @property
    def bottleneck_makespan_ms(self) -> float:
        """Virtual time the slowest (hottest) shard needed."""
        return max((shard["makespan_ms"] for shard in self.shards), default=0.0)

    def per_shard_conflict_rates(self) -> Dict[int, float]:
        """Measured conflict rate per shard index."""
        return {shard["shard"]: shard["conflict_rate"] for shard in self.shards}

    def as_dict(self) -> Dict[str, object]:
        """Primitive payload (what the figure sweep and the CLI report)."""
        return {
            "protocol": self.config.protocol,
            "shards": self.shards,
            "total_submitted": self.total_submitted,
            "total_undecided": self.total_undecided,
            "total_violations": self.total_violations,
            "all_decided": self.all_decided,
            "aggregate_throughput": round(self.aggregate_throughput, 6),
            "bottleneck_makespan_ms": round(self.bottleneck_makespan_ms, 6),
        }


def run_sharded(config: ShardedConfig, workers: Union[int, str, None] = None,
                serial: bool = False) -> ShardedResult:
    """Run one sharded experiment: S independent groups over one keyspace.

    The client streams are generated and routed up front; each shard then
    replays its share on its own cluster through the sweep orchestrator, so
    ``workers=N`` runs shard groups in parallel processes with byte-identical
    results to ``serial=True``.
    """
    topology = config.build_topology()
    router = ShardRouter(config.shards, overrides=config.router_overrides)
    per_shard = route_streams(generate_streams(config), router)
    base = DeterministicRandom(config.seed)
    cells = []
    for shard, streams in enumerate(per_shard):
        task = ShardTask(
            shard=shard,
            protocol=config.protocol,
            topology=topology,
            seed=base.fork_cell(("shard", shard)).seed,
            network=config.network,
            deadline_ms=config.deadline_ms,
            streams=tuple((client_id, tuple(commands))
                          for client_id, commands in streams),
        )
        cells.append(SweepCell(key=("shard", config.protocol, shard), config=task,
                               runner=run_shard_task, collect=None))
    sweep = run_sweep(cells, workers=workers, serial=serial)
    payloads = [outcome.payload for outcome in sweep.outcomes]
    return ShardedResult(config=config, shards=payloads, sweep=sweep)


def run_sharded_payload(config: ShardedConfig) -> Dict[str, object]:
    """Run one sharded experiment serially and return its primitive payload.

    Top-level so the *figure* sweep can use whole sharded runs as its cells
    (one cell per ``protocol x skew x shard-count`` point): the grid
    parallelizes across worker processes while each cell keeps its shards
    in-process — nested process pools would oversubscribe, and determinism
    does not care which level fans out.
    """
    return run_sharded(config, serial=True).as_dict()


class CrossShardCoordinator:
    """Stub interface for commands spanning several shards (stretch goal).

    A multi-key command whose keys route to different shards needs atomic
    commit across the owning groups: each group decides a *prepare* for its
    share, and the coordinator drives a two-phase commit over those
    decisions.  Only the interface is pinned for now — calling it raises
    ``NotImplementedError`` so nothing silently pretends cross-shard commands
    are atomic.
    """

    def __init__(self, router: ShardRouter) -> None:
        self.router = router

    def shards_for(self, keys: Sequence[str]) -> List[int]:
        """The distinct shards a multi-key command touches, ascending."""
        return sorted({self.router.shard_of(key) for key in keys})

    def submit(self, command: Command, keys: Sequence[str]) -> None:
        """Atomically submit a command touching every key in ``keys``."""
        raise NotImplementedError(
            "cross-shard commands need a 2PC round over the owning groups' "
            "decisions; only single-shard commands are supported so far "
            f"(this command touches shards {self.shards_for(keys)})")
