"""Plain-text reporting helpers for benchmark output.

The benchmark harness regenerates the paper's figures as text tables (rows =
x-axis values, columns = systems or sites), which is what ends up in
``EXPERIMENTS.md`` and in the pytest-benchmark console output.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence


def format_table(title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a fixed-width text table.

    Args:
        title: table caption printed above the grid.
        headers: column names.
        rows: row values; ``None`` cells render as ``-``; floats are rendered
            with one decimal digit.
    """
    def fmt(cell: object) -> str:
        if cell is None:
            return "-"
        if isinstance(cell, float):
            return f"{cell:.1f}"
        return str(cell)

    materialized: List[List[str]] = [[fmt(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(widths[index]) for index, cell in enumerate(cells))

    lines = [title, render_row([str(h) for h in headers]),
             "-+-".join("-" * width for width in widths)]
    lines.extend(render_row(row) for row in materialized)
    return "\n".join(lines)


def format_series(title: str, series: Dict[str, Dict[object, Optional[float]]],
                  x_label: str = "x") -> str:
    """Render a dict-of-dicts ``{series_name: {x: y}}`` as a table keyed by x."""
    xs: List[object] = []
    for values in series.values():
        for x in values:
            if x not in xs:
                xs.append(x)
    headers = [x_label] + list(series.keys())
    rows = []
    for x in xs:
        rows.append([x] + [series[name].get(x) for name in series])
    return format_table(title, headers, rows)
