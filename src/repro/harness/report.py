"""Plain-text reporting helpers for benchmark output.

The benchmark harness regenerates the paper's figures as text tables (rows =
x-axis values, columns = systems or sites), which is what ends up in
``EXPERIMENTS.md`` and in the pytest-benchmark console output.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.runtime.stats import ProtocolStats


def format_table(title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a fixed-width text table.

    Args:
        title: table caption printed above the grid.
        headers: column names.
        rows: row values; ``None`` cells render as ``-``; floats are rendered
            with one decimal digit.
    """
    def fmt(cell: object) -> str:
        if cell is None:
            return "-"
        if isinstance(cell, float):
            return f"{cell:.1f}"
        return str(cell)

    materialized: List[List[str]] = [[fmt(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(widths[index]) for index, cell in enumerate(cells))

    lines = [title, render_row([str(h) for h in headers]),
             "-+-".join("-" * width for width in widths)]
    lines.extend(render_row(row) for row in materialized)
    return "\n".join(lines)


def format_protocol_stats(per_replica_stats: Sequence[ProtocolStats],
                          title: str = "protocol counters") -> str:
    """Render cluster-wide protocol counters without protocol special-casing.

    Every replica carries the same unified
    :class:`~repro.runtime.stats.ProtocolStats` record, so this sums the
    records and prints whichever counters actually moved — no knowledge of
    which protocol produced them is needed.  Returns an empty string when
    nothing moved (e.g. before any command was ordered).
    """
    totals: Dict[str, int] = {}
    for stats in per_replica_stats:
        for name, value in stats.non_zero():
            totals[name] = totals.get(name, 0) + value
    if not totals:
        return ""
    lines = [f"{title}:"]
    lines.extend(f"  {name.replace('_', ' '):<24} {value}"
                 for name, value in totals.items())
    return "\n".join(lines)


def format_series(title: str, series: Dict[str, Dict[object, Optional[float]]],
                  x_label: str = "x") -> str:
    """Render a dict-of-dicts ``{series_name: {x: y}}`` as a table keyed by x."""
    xs: List[object] = []
    for values in series.values():
        for x in values:
            if x not in xs:
                xs.append(x)
    headers = [x_label] + list(series.keys())
    rows = []
    for x in xs:
        rows.append([x] + [series[name].get(x) for name in series])
    return format_table(title, headers, rows)
