"""Protocol registry glue: register every baseline with the cluster builder.

Importing this module makes all protocols available to
:func:`repro.harness.cluster.build_cluster` under their canonical names.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.baselines.epaxos import EPaxosReplica
from repro.baselines.m2paxos import M2PaxosReplica
from repro.baselines.mencius import MenciusReplica
from repro.baselines.multipaxos import MultiPaxosReplica
from repro.consensus.interface import ConsensusReplica
from repro.consensus.quorums import QuorumSystem
from repro.harness.cluster import register_protocol
from repro.kvstore.store import KeyValueStore
from repro.sim.costs import CostModel
from repro.sim.network import Network
from repro.sim.simulator import Simulator


def _build_epaxos(node_id: int, sim: Simulator, network: Network, quorums: QuorumSystem,
                  options: Dict[str, object], cost_model: Optional[CostModel]) -> ConsensusReplica:
    return EPaxosReplica(node_id, sim, network, quorums, KeyValueStore(),
                         cost_model=cost_model, **options)


def _build_multipaxos(node_id: int, sim: Simulator, network: Network, quorums: QuorumSystem,
                      options: Dict[str, object],
                      cost_model: Optional[CostModel]) -> ConsensusReplica:
    return MultiPaxosReplica(node_id, sim, network, quorums, KeyValueStore(),
                             cost_model=cost_model, **options)


def _build_mencius(node_id: int, sim: Simulator, network: Network, quorums: QuorumSystem,
                   options: Dict[str, object],
                   cost_model: Optional[CostModel]) -> ConsensusReplica:
    return MenciusReplica(node_id, sim, network, quorums, KeyValueStore(),
                          cost_model=cost_model, **options)


def _build_m2paxos(node_id: int, sim: Simulator, network: Network, quorums: QuorumSystem,
                   options: Dict[str, object],
                   cost_model: Optional[CostModel]) -> ConsensusReplica:
    return M2PaxosReplica(node_id, sim, network, quorums, KeyValueStore(),
                          cost_model=cost_model, **options)


register_protocol("epaxos", _build_epaxos)
register_protocol("multipaxos", _build_multipaxos)
register_protocol("mencius", _build_mencius)
register_protocol("m2paxos", _build_m2paxos)
