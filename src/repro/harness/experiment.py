"""Experiment runner: one protocol, one workload, one measurement window.

This is the single entry point every benchmark and example uses to run a
system: it builds the cluster, attaches closed-loop or open-loop clients at
every site, runs the simulation for the configured duration, and returns the
collected metrics together with protocol-internal statistics (fast/slow path
counts, wait times, per-phase breakdowns) and a consistency check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.consensus.interface import DecisionKind
from repro.core.config import CaesarConfig
from repro.harness.cluster import Cluster, ClusterConfig, build_cluster
from repro.metrics.collector import MetricsCollector
from repro.metrics.stats import LatencySummary, summarize_latencies
from repro.sim.batching import BatchingConfig
from repro.sim.costs import CostModel
from repro.sim.network import NetworkConfig
from repro.sim.topology import Topology
from repro.workload.clients import ClientPool, ClosedLoopClient, OpenLoopClient
from repro.workload.generator import WorkloadConfig, build_workload


@dataclass
class ExperimentConfig:
    """Description of one experiment run.

    Attributes:
        protocol: protocol name (``caesar``, ``epaxos``, ``multipaxos``,
            ``mencius``, ``m2paxos``).
        conflict_rate: fraction of commands drawn from the shared key pool.
        clients_per_site: number of clients co-located with each replica.
        open_loop: ``False`` = closed-loop clients (latency experiments),
            ``True`` = open-loop Poisson injection (throughput experiments).
        arrival_rate_per_client: per-client injection rate for open-loop runs
            (commands per second).
        duration_ms: measured virtual time (after warm-up).
        warmup_ms: virtual time during which samples are discarded.
        seed: simulation seed.
        topology: latency topology (defaults to the paper's 5 EC2 sites).
        network: network jitter/loss configuration; the default adds a few
            milliseconds of gaussian jitter, mirroring real WAN variability
            (without it, message arrival orders are unrealistically uniform
            across acceptors and dependency disagreements almost never occur).
        cost_model: CPU cost model for replicas.
        batching: when set, replicas batch outgoing messages with this policy
            (the paper's "batching enabled" runs in Figure 9).
        recovery: whether failure detectors / recovery machinery run.
        retransmit: run the runtime retransmission + catch-up layer (default);
            disabling it reproduces the pre-retransmission behaviour.
        admission: admission-control spec installed on every replica
            (``"none"``, ``"inflight:K"``, ``"deadline:MS"``; ``None`` = no
            hook).  The overload driver uses it to bound tail latency past
            the saturation knee.
        protocol_options: extra keyword arguments for the replica constructor.
        workload: key-pool configuration (defaults mirror the paper).
        drain_ms: extra virtual time after the measurement window to let
            outstanding commands finish.
    """

    protocol: str = "caesar"
    conflict_rate: float = 0.0
    clients_per_site: int = 10
    open_loop: bool = False
    arrival_rate_per_client: float = 50.0
    duration_ms: float = 20000.0
    warmup_ms: float = 2000.0
    seed: int = 1
    topology: Optional[Topology] = None
    network: NetworkConfig = field(default_factory=lambda: NetworkConfig(jitter_ms=3.0))
    cost_model: Optional[CostModel] = None
    batching: Optional[BatchingConfig] = None
    recovery: bool = False
    retransmit: bool = True
    admission: Optional[str] = None
    history_gc_ms: Optional[float] = None
    protocol_options: Dict[str, object] = field(default_factory=dict)
    workload: Optional[WorkloadConfig] = None
    drain_ms: float = 2000.0

    @classmethod
    def from_args(cls, args, **overrides) -> "ExperimentConfig":
        """Build a config from CLI-style args; keyword ``overrides`` win.

        Understands the shared CLI vocabulary (``--protocol``, ``--seed``,
        ``--clients``, ``--conflicts`` as a 0-100 percentage, ``--duration``)
        plus ``--throughput`` / ``--batching`` / ``--recovery`` /
        ``--no-retransmit``; this is the single place those flags become an
        :class:`ExperimentConfig`.  Warm-up defaults to a quarter of the
        duration, capped at 2 s, as the figure experiments use.
        """
        kwargs: Dict[str, object] = {
            "protocol": getattr(args, "protocol", cls.protocol),
            "seed": getattr(args, "seed", cls.seed),
            "clients_per_site": getattr(args, "clients", cls.clients_per_site),
            "recovery": getattr(args, "recovery", False),
            "retransmit": not getattr(args, "no_retransmit", False),
            "admission": getattr(args, "admission", None),
            "history_gc_ms": getattr(args, "history_gc", None),
        }
        conflicts = getattr(args, "conflicts", None)
        if isinstance(conflicts, (int, float)):
            kwargs["conflict_rate"] = conflicts / 100.0
        duration = getattr(args, "duration", None)
        if duration is not None:
            kwargs["duration_ms"] = duration
            kwargs["warmup_ms"] = min(2000.0, duration / 4)
        if getattr(args, "throughput", False):
            from repro.harness.figures import throughput_cost_model

            kwargs["cost_model"] = throughput_cost_model()
        if getattr(args, "batching", False):
            kwargs["batching"] = BatchingConfig()
        kwargs.update(overrides)
        return cls(**kwargs)


@dataclass
class ExperimentResult:
    """Everything measured during one experiment run."""

    config: ExperimentConfig
    cluster: Cluster
    metrics: MetricsCollector
    measured_duration_ms: float
    per_site_latency: Dict[str, LatencySummary]
    overall_latency: Optional[LatencySummary]
    throughput_per_second: float
    fast_decisions: int
    slow_decisions: int
    consistency_violations: int

    @property
    def slow_path_ratio(self) -> Optional[float]:
        """Fraction of decided commands that took the slow path."""
        total = self.fast_decisions + self.slow_decisions
        if total == 0:
            return None
        return self.slow_decisions / total

    def site_mean_latency(self, site: str) -> Optional[float]:
        """Mean latency (ms) observed by clients at the named site."""
        summary = self.per_site_latency.get(site)
        return summary.mean if summary is not None else None


def _protocol_options(config: ExperimentConfig) -> Dict[str, object]:
    """Translate the generic experiment settings into per-protocol kwargs."""
    options = dict(config.protocol_options)
    if config.protocol == "caesar":
        caesar_config = options.get("config")
        if caesar_config is None:
            caesar_config = CaesarConfig(recovery_enabled=config.recovery)
            options["config"] = caesar_config
    elif config.protocol in ("epaxos", "multipaxos"):
        options.setdefault("recovery_enabled", config.recovery)
    return options


def build_experiment_cluster(config: ExperimentConfig) -> Cluster:
    """Build (but do not run) the cluster an experiment will use."""
    cluster_config = ClusterConfig(protocol=config.protocol, topology=config.topology,
                                   seed=config.seed, network=config.network,
                                   cost_model=config.cost_model, batching=config.batching,
                                   retransmit=config.retransmit,
                                   admission=config.admission,
                                   history_gc_ms=config.history_gc_ms,
                                   protocol_options=_protocol_options(config))
    return build_cluster(cluster_config)


def attach_clients(cluster: Cluster, config: ExperimentConfig,
                   metrics: MetricsCollector) -> ClientPool:
    """Create the configured clients at every site of the cluster."""
    workload_config = config.workload or WorkloadConfig(conflict_rate=config.conflict_rate)
    pool = ClientPool()
    client_id = 0
    for replica in cluster.replicas:
        for _ in range(config.clients_per_site):
            rng = cluster.sim.rng.fork(f"client-{client_id}")
            workload = build_workload(client_id=client_id, origin=replica.node_id,
                                      config=workload_config, rng=rng)
            if config.open_loop:
                fallbacks = [other for other in cluster.replicas
                             if other.node_id != replica.node_id]
                client = OpenLoopClient(client_id=client_id, replica=replica,
                                        workload=workload, sim=cluster.sim, metrics=metrics,
                                        rate_per_second=config.arrival_rate_per_client,
                                        rng=rng.fork("arrivals"),
                                        fallback_replicas=fallbacks)
            else:
                client = ClosedLoopClient(client_id=client_id, replica=replica,
                                          workload=workload, sim=cluster.sim, metrics=metrics)
            pool.add(client)
            client_id += 1
    return pool


def per_site_latency_summaries(topology: Topology,
                               metrics: MetricsCollector) -> Dict[str, LatencySummary]:
    """Latency summary per *site*, aggregating all nodes hosted there.

    With ``replicas_per_site > 1`` several origins map to one site; their
    samples are pooled (in node-id order, so the result is deterministic)
    before summarizing — a per-origin summary per site would silently keep
    only the last node's numbers.
    """
    by_site: Dict[str, List[float]] = {}
    for node_id in sorted({sample.origin for sample in metrics.samples}):
        by_site.setdefault(topology.site_of(node_id), []).extend(metrics.latencies(node_id))
    return {site: summarize_latencies(values) for site, values in by_site.items()}


def summarize_experiment(result: ExperimentResult) -> Dict[str, object]:
    """Reduce an :class:`ExperimentResult` to a small, picklable payload.

    This is the default *collector* of the sweep orchestrator
    (:mod:`repro.harness.sweep`): it runs inside the worker process and keeps
    only the aggregate numbers the figure drivers plot, so the cluster and
    its full execution history never cross the process boundary.
    """
    admission = result.cluster.admission_snapshot()
    overall = result.overall_latency
    return {
        "throughput_per_second": result.throughput_per_second,
        "mean_latency_ms": overall.mean if overall is not None else None,
        "p50_latency_ms": overall.median if overall is not None else None,
        "p95_latency_ms": overall.p95 if overall is not None else None,
        "p99_latency_ms": overall.p99 if overall is not None else None,
        "p999_latency_ms": overall.p999 if overall is not None else None,
        "admission": admission.as_dict() if admission is not None else None,
        "sample_count": overall.count if overall is not None else 0,
        "per_site_mean_latency_ms": {site: summary.mean
                                     for site, summary in result.per_site_latency.items()},
        "fast_decisions": result.fast_decisions,
        "slow_decisions": result.slow_decisions,
        "slow_path_ratio": result.slow_path_ratio,
        "consistency_violations": result.consistency_violations,
    }


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Run one experiment end to end and return its measurements."""
    cluster = build_experiment_cluster(config)
    metrics = MetricsCollector(warmup_ms=config.warmup_ms)
    pool = attach_clients(cluster, config, metrics)
    cluster.start()
    pool.start_all()
    total_ms = config.warmup_ms + config.duration_ms
    cluster.run(total_ms)
    pool.stop_all()
    if config.drain_ms > 0:
        cluster.run(config.drain_ms)

    per_site = per_site_latency_summaries(cluster.topology, metrics)

    fast = 0
    slow = 0
    for replica in cluster.replicas:
        for decision in replica.completed_decisions():
            if decision.kind is DecisionKind.FAST:
                fast += 1
            elif decision.kind is not None:
                slow += 1

    return ExperimentResult(
        config=config,
        cluster=cluster,
        metrics=metrics,
        measured_duration_ms=config.duration_ms,
        per_site_latency=per_site,
        overall_latency=metrics.summary(),
        throughput_per_second=metrics.throughput(config.duration_ms),
        fast_decisions=fast,
        slow_decisions=slow,
        consistency_violations=len(cluster.check_consistency()),
    )
