"""Per-key linearizability checking of taped client histories.

The checker implements the Wing & Gong search (the algorithm behind Knossos,
restricted to one key at a time): it looks for an order of the operations
that (a) respects real time — an operation that responded before another was
invoked must be linearized first — and (b) replays correctly against the
sequential spec (:mod:`repro.kvstore.spec`).  Pending operations (no
response recorded) may be linearized at any point after their invocation or
omitted entirely, because the protocol may still execute them.

Checking per key is exact, not an approximation: linearizability is *local*
(Herlihy & Wing), and operations on different keys of the store never
interact in the sequential spec, so a history is linearizable iff each
per-key sub-history is.

The search memoizes visited ``(remaining operations, register value)``
configurations (Lowe's just-in-time refinement), which keeps the common
no-violation case near-linear; a per-key state budget turns pathological
histories into an explicit *inconclusive* verdict instead of a hang.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.chaos.history import HistoryTape, Operation
from repro.kvstore.spec import RegisterState, apply_op

#: Default per-key budget of explored search states.
DEFAULT_MAX_STATES = 200_000


@dataclass
class KeyReport:
    """Verdict for one key's sub-history."""

    key: str
    ok: bool
    inconclusive: bool = False
    states_explored: int = 0
    ops_total: int = 0
    ops_pending: int = 0
    witness: Optional[str] = None


@dataclass
class LinearizabilityReport:
    """Verdict for a whole history."""

    key_reports: Dict[str, KeyReport] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether every key's sub-history is linearizable (and none timed out)."""
        return all(report.ok and not report.inconclusive
                   for report in self.key_reports.values())

    @property
    def violations(self) -> List[KeyReport]:
        """Key reports that failed the check outright."""
        return [report for report in self.key_reports.values()
                if not report.ok and not report.inconclusive]

    @property
    def inconclusive(self) -> List[KeyReport]:
        """Key reports whose search exhausted its state budget."""
        return [report for report in self.key_reports.values() if report.inconclusive]

    @property
    def states_explored(self) -> int:
        """Total search states explored across all keys."""
        return sum(report.states_explored for report in self.key_reports.values())

    def describe(self) -> str:
        """One-line human-readable summary."""
        if self.ok:
            return (f"linearizable: {len(self.key_reports)} keys, "
                    f"{self.states_explored} states explored")
        parts = [f"{report.key}: {report.witness or 'not linearizable'}"
                 for report in self.violations]
        parts.extend(f"{report.key}: inconclusive after {report.states_explored} states"
                     for report in self.inconclusive)
        return "NOT linearizable — " + "; ".join(parts)


def check_history(tape: HistoryTape,
                  max_states_per_key: int = DEFAULT_MAX_STATES) -> LinearizabilityReport:
    """Check every operation recorded on ``tape``."""
    return _check_grouped(tape.per_key(), max_states_per_key)


def check_operations(operations: Iterable[Operation],
                     max_states_per_key: int = DEFAULT_MAX_STATES) -> LinearizabilityReport:
    """Check a history given as a flat collection of operations."""
    per_key: Dict[str, List[Operation]] = {}
    for op in operations:
        per_key.setdefault(op.key, []).append(op)
    return _check_grouped(per_key, max_states_per_key)


def _check_grouped(per_key: Dict[str, List[Operation]],
                   max_states_per_key: int) -> LinearizabilityReport:
    report = LinearizabilityReport()
    for key, ops in per_key.items():
        report.key_reports[key] = _check_key(key, ops, max_states_per_key)
    return report


def _check_key(key: str, ops: Sequence[Operation], max_states: int) -> KeyReport:
    """Search for a valid linearization of one key's operations."""
    ops = sorted(ops, key=lambda op: (op.invoked_at, op.op_id))
    pending_ids = frozenset(op.op_id for op in ops if op.is_pending)
    report = KeyReport(key=key, ok=False, ops_total=len(ops),
                       ops_pending=len(pending_ids))
    if not ops:
        report.ok = True
        return report

    by_id = {op.op_id: op for op in ops}
    remaining = frozenset(by_id)
    #: visited (remaining set, register value) configurations.
    seen: Set[Tuple[frozenset, RegisterState]] = set()
    states = 0
    best_depth = 0
    best_stuck: frozenset = remaining

    # Same-client program order: a client is single-threaded, so its earlier
    # *completed* operation whose response does not come after a later
    # operation's invocation must be linearized first — even when the two
    # timestamps coincide (think-time-zero closed-loop clients invoke the
    # next command at the exact virtual instant the previous one responded,
    # and that tie must not dissolve the causal order).  A completed earlier
    # op that responded strictly *after* a later invocation (a reconnect's
    # abandoned command answering late) genuinely overlaps it and constrains
    # nothing.  ``blockers[o]`` lists those must-precede ops; ``o`` is
    # eligible only once none of them remain.
    blockers: Dict[int, Tuple[int, ...]] = {}
    for o in ops:
        blockers[o.op_id] = tuple(
            p.op_id for p in ops
            if p.client_id == o.client_id and p.op_id < o.op_id
            and not p.is_pending and p.responded_at <= o.invoked_at)

    # Iterative DFS: each frame is (remaining, state, iterator over candidate
    # linearization choices).  A recursion would hit Python's limit on long
    # per-key histories.
    def candidates(rem: frozenset) -> List[int]:
        """Ops that may be linearized next: nothing remaining responded before
        their invocation (pending ops never constrain others), and none of
        their same-client predecessors are still unlinearized."""
        min_response = min((by_id[op_id].responded_at for op_id in rem
                            if op_id not in pending_ids), default=None)
        chosen = [op_id for op_id in rem
                  if (min_response is None
                      or by_id[op_id].invoked_at <= min_response)
                  and not any(b in rem for b in blockers[op_id])]
        # Deterministic search order: tape order.
        return sorted(chosen)

    stack = [(remaining, None, iter(candidates(remaining)))]
    while stack:
        rem, state, choices = stack[-1]
        if rem <= pending_ids:
            # Every completed operation linearized; leftover pending ops
            # simply never took effect.
            report.ok = True
            report.states_explored = states
            return report
        advanced = False
        for op_id in choices:
            op = by_id[op_id]
            new_state, expected = apply_op(state, op.operation, op.value)
            if op_id not in pending_ids and expected != op.output:
                continue
            next_rem = rem - {op_id}
            config = (next_rem, new_state)
            if config in seen:
                continue
            seen.add(config)
            states += 1
            if states > max_states:
                report.inconclusive = True
                report.states_explored = states
                report.witness = f"state budget ({max_states}) exhausted"
                return report
            depth = len(by_id) - len(next_rem)
            if depth > best_depth:
                best_depth = depth
                best_stuck = next_rem
            stack.append((next_rem, new_state, iter(candidates(next_rem))))
            advanced = True
            break
        if not advanced:
            stack.pop()

    report.states_explored = states
    stuck = [by_id[op_id].brief() for op_id in sorted(best_stuck - pending_ids)]
    report.witness = (f"no linearization; best prefix linearized {best_depth}/{len(by_id)} "
                      f"ops, cannot place: {', '.join(stuck[:4])}"
                      + ("…" if len(stuck) > 4 else ""))
    return report
