"""The link-fault data plane.

One :class:`LinkFaults` instance is shared by every replica's transport in a
chaos run (installed through
:meth:`~repro.runtime.transport.SimulatorTransport.install_fault_filter`).
The transport offers it every outgoing wire message; the filter either lets
the message through untouched or applies the faults configured for that
directed link:

* **blocking** — the link is cut.  In ``"queue"`` mode (the default used by
  the partition primitives) messages are held and released in order when the
  link heals, modelling a TCP connection that stalls and then catches up; in
  ``"drop"`` mode they are lost outright, modelling UDP through a dead route.
* **loss** — each message is independently dropped with a probability;
* **duplication** — each message is independently delivered twice;
* **delay spikes** — each message is delayed by an extra base + uniform
  jitter before entering the network (large jitter also reorders).

All sampling draws from a dedicated deterministic stream, so enabling a
fault schedule never perturbs the draws of the network, the workload or any
other component, and a run replays exactly from its seed.

Faults apply per *directed* link, which is what makes asymmetric partitions
expressible; self-addressed messages are never intercepted (a node can
always talk to itself).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.sim.network import Network
from repro.sim.random import DeterministicRandom
from repro.sim.simulator import Simulator

#: A directed link, ``(src, dst)``.
Link = Tuple[int, int]


@dataclass
class FaultStats:
    """Counters describing everything the fault plane did during a run."""

    messages_held: int = 0
    messages_released: int = 0
    messages_dropped_on_block: int = 0
    messages_dropped_by_loss: int = 0
    messages_duplicated: int = 0
    messages_delayed: int = 0
    per_link_held: Dict[Link, int] = field(default_factory=dict)


class LinkFaults:
    """Mutable per-link fault state, consulted once per outgoing message.

    Args:
        sim: the shared simulator (supplies the clock for delayed releases).
        network: the shared network messages are forwarded into.
        rng: deterministic stream for loss/duplication/jitter sampling;
            fork it from the simulator's root stream under a dedicated label.
    """

    def __init__(self, sim: Simulator, network: Network, rng: DeterministicRandom) -> None:
        self.sim = sim
        self.network = network
        self.stats = FaultStats()
        self._rng = rng
        #: directed link -> blocking mode ("queue" | "drop").
        self._blocked: Dict[Link, str] = {}
        #: messages held on queue-blocked links, in send order.
        self._held: Dict[Link, List[Tuple[object, int]]] = {}
        self._loss: Dict[Link, float] = {}
        self._dup: Dict[Link, float] = {}
        #: directed link -> (extra base delay ms, uniform jitter ms).
        self._delay: Dict[Link, Tuple[float, float]] = {}

    # ------------------------------------------------------------- transport

    def intercept(self, src: int, dst: int, message: object, size_bytes: int) -> bool:
        """Apply link faults to one outgoing message.

        Returns ``True`` when the message was consumed (blocked, dropped or
        rescheduled by the fault plane); ``False`` lets the transport send it
        normally.
        """
        if src == dst:
            return False
        link = (src, dst)
        mode = self._blocked.get(link)
        if mode is not None:
            if mode == "queue":
                self._hold(link, message, size_bytes)
            else:
                self.stats.messages_dropped_on_block += 1
            return True
        loss = self._loss.get(link)
        if loss is not None and self._rng.random() < loss:
            self.stats.messages_dropped_by_loss += 1
            return True
        dup = self._dup.get(link)
        duplicated = dup is not None and self._rng.random() < dup
        if duplicated:
            self.stats.messages_duplicated += 1
        spike = self._delay.get(link)
        if spike is not None:
            # Each copy samples its own spike, so duplicates reorder too.
            self._delay_send(link, spike, message, size_bytes)
            if duplicated:
                self._delay_send(link, spike, message, size_bytes)
            return True
        if duplicated:
            self.network.send(src, dst, message, size_bytes=size_bytes)
        return False

    def _delay_send(self, link: Link, spike: Tuple[float, float], message: object,
                    size_bytes: int) -> None:
        """Schedule one copy of a message past its sampled extra delay."""
        base, jitter = spike
        extra = base + (self._rng.uniform(0.0, jitter) if jitter > 0 else 0.0)
        self.stats.messages_delayed += 1
        self.sim.schedule(extra, self._forward, args=(link[0], link[1], message,
                                                      size_bytes))

    def _hold(self, link: Link, message: object, size_bytes: int) -> None:
        """Park one message on a queue-blocked link."""
        self._held.setdefault(link, []).append((message, size_bytes))
        self.stats.messages_held += 1
        per_link = self.stats.per_link_held
        per_link[link] = per_link.get(link, 0) + 1

    def _forward(self, src: int, dst: int, message: object, size_bytes: int) -> None:
        """Enter the network after a delay spike, honouring blocks installed since."""
        mode = self._blocked.get((src, dst))
        if mode is not None:
            if mode == "queue":
                self._hold((src, dst), message, size_bytes)
            else:
                self.stats.messages_dropped_on_block += 1
            return
        self.network.send(src, dst, message, size_bytes=size_bytes)

    # ---------------------------------------------------------- fault control

    def block(self, links: Iterable[Link], mode: str = "queue") -> None:
        """Cut the given directed links (``"queue"`` holds traffic, ``"drop"`` loses it)."""
        if mode not in ("queue", "drop"):
            raise ValueError(f"unknown blocking mode {mode!r}")
        for link in links:
            self._blocked[link] = mode

    def unblock(self, links: Iterable[Link]) -> None:
        """Heal the given links, releasing any held messages in send order."""
        for link in links:
            self._blocked.pop(link, None)
            held = self._held.pop(link, None)
            if held:
                src, dst = link
                for message, size_bytes in held:
                    self.stats.messages_released += 1
                    self.network.send(src, dst, message, size_bytes=size_bytes)

    def unblock_all(self) -> None:
        """Heal every blocked link."""
        self.unblock(list(self._blocked))

    def set_loss(self, links: Iterable[Link], probability: float) -> None:
        """Drop each message on the given links independently with ``probability``."""
        for link in links:
            self._loss[link] = probability

    def clear_loss(self, links: Iterable[Link]) -> None:
        """Stop dropping messages on the given links."""
        for link in links:
            self._loss.pop(link, None)

    def set_duplication(self, links: Iterable[Link], probability: float) -> None:
        """Deliver each message on the given links twice with ``probability``."""
        for link in links:
            self._dup[link] = probability

    def clear_duplication(self, links: Iterable[Link]) -> None:
        """Stop duplicating messages on the given links."""
        for link in links:
            self._dup.pop(link, None)

    def set_delay_spike(self, links: Iterable[Link], extra_ms: float,
                        jitter_ms: float = 0.0) -> None:
        """Add ``extra_ms`` (+ uniform jitter) to each message on the given links."""
        for link in links:
            self._delay[link] = (extra_ms, jitter_ms)

    def clear_delay_spike(self, links: Iterable[Link]) -> None:
        """Remove the extra delay from the given links."""
        for link in links:
            self._delay.pop(link, None)

    @property
    def held_messages(self) -> int:
        """Messages currently parked on queue-blocked links."""
        return sum(len(held) for held in self._held.values())

    def is_blocked(self, src: int, dst: int) -> bool:
        """Whether the directed link is currently cut."""
        return (src, dst) in self._blocked


def cross_links(src_nodes: Iterable[int], dst_nodes: Iterable[int]) -> List[Link]:
    """All directed links from ``src_nodes`` to ``dst_nodes`` (self-links excluded)."""
    return [(src, dst) for src in src_nodes for dst in dst_nodes if src != dst]


def symmetric_links(group_a: Iterable[int], group_b: Iterable[int]) -> List[Link]:
    """All directed links between two groups, in both directions."""
    a, b = list(group_a), list(group_b)
    return cross_links(a, b) + cross_links(b, a)
