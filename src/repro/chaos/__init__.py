"""Chaos engineering for the consensus stack.

The package adds adversity beyond the scheduled crash of Figure 12:

* :mod:`repro.chaos.faults` — the link-fault data plane consulted by every
  :class:`~repro.runtime.transport.SimulatorTransport` through its fault
  filter seam (partitions, drops, duplication, delay spikes);
* :mod:`repro.chaos.nemesis` — the deterministic control plane: timed fault
  schedules (:class:`~repro.chaos.nemesis.NemesisPlan`), the named schedule
  library, and generative random schedules;
* :mod:`repro.chaos.history` — the client-side invocation/response tape;
* :mod:`repro.chaos.checker` — the per-key linearizability checker that
  judges taped histories against the key-value store's sequential spec.

Everything is seeded through the simulator's deterministic RNG, so a chaos
run replays exactly from ``(protocol, schedule, seed)``.
"""

from repro.chaos.checker import LinearizabilityReport, check_history, check_operations
from repro.chaos.faults import FaultStats, LinkFaults
from repro.chaos.history import HistoryTape, Operation
from repro.chaos.nemesis import NEMESIS_SCHEDULES, Nemesis, NemesisPlan, random_plan

__all__ = [
    "FaultStats",
    "HistoryTape",
    "LinearizabilityReport",
    "LinkFaults",
    "NEMESIS_SCHEDULES",
    "Nemesis",
    "NemesisPlan",
    "Operation",
    "check_history",
    "check_operations",
    "random_plan",
]
