"""Client-visible history taping.

A :class:`HistoryTape` records one :class:`Operation` per client command:
the *invocation* (operation, key, argument, virtual time) when the client
submits, and the *response* (observed output, virtual time) when the client's
callback fires.  Commands that never complete — the replica crashed, the
link was partitioned, the client timed out and moved on — stay **pending**:
the linearizability checker must allow a pending operation to have taken
effect at any point after its invocation, or never at all, because the
underlying protocol may still execute it.

The tape is the client-observable counterpart of the replica-internal
execution logs: :mod:`repro.core.invariants` checks what the replicas did,
:mod:`repro.chaos.checker` checks what the clients could *see*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.simulator import Simulator


@dataclass
class Operation:
    """One client operation: an invocation and (maybe) a response.

    Attributes:
        op_id: tape-wide unique id (also the tape insertion order).
        client_id: the invoking client.
        key: key the operation accesses.
        operation: ``"put"``, ``"get"`` or ``"delete"``.
        value: argument written by a ``put`` (``None`` otherwise).
        invoked_at: virtual time of the invocation.
        output: observed return value (the store returns the *previous* value
            for ``put``/``delete`` and the current value for ``get``).
        responded_at: virtual time of the response, ``None`` while pending.
    """

    op_id: int
    client_id: int
    key: str
    operation: str
    value: Optional[str]
    invoked_at: float
    output: Optional[str] = None
    responded_at: Optional[float] = None

    @property
    def is_pending(self) -> bool:
        """Whether the operation never received a response."""
        return self.responded_at is None

    def brief(self) -> str:
        """Compact one-line form for checker witnesses."""
        until = "?" if self.responded_at is None else f"{self.responded_at:.1f}"
        span = f"@{self.invoked_at:.1f}..{until}"
        if self.operation == "put":
            return f"c{self.client_id} put({self.value})->{self.output!r} {span}"
        return f"c{self.client_id} {self.operation}()->{self.output!r} {span}"


class HistoryTape:
    """Append-only record of every invocation/response a run's clients saw."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.operations: List[Operation] = []

    def invoke(self, client_id: int, key: str, operation: str,
               value: Optional[str] = None) -> Operation:
        """Record an invocation at the current virtual time and return its record."""
        op = Operation(op_id=len(self.operations), client_id=client_id, key=key,
                       operation=operation, value=value, invoked_at=self.sim.now)
        self.operations.append(op)
        return op

    def respond(self, op: Operation, output: Optional[str]) -> None:
        """Record the response for an earlier invocation (exactly once)."""
        if op.responded_at is not None:
            raise ValueError(f"operation {op.op_id} already responded")
        op.output = output
        op.responded_at = self.sim.now

    def __len__(self) -> int:
        return len(self.operations)

    @property
    def completed(self) -> List[Operation]:
        """Operations that received a response."""
        return [op for op in self.operations if not op.is_pending]

    @property
    def pending(self) -> List[Operation]:
        """Operations still waiting for a response (possibly forever)."""
        return [op for op in self.operations if op.is_pending]

    def per_key(self) -> Dict[str, List[Operation]]:
        """Operations grouped by key, preserving tape order within each key."""
        grouped: Dict[str, List[Operation]] = {}
        for op in self.operations:
            grouped.setdefault(op.key, []).append(op)
        return grouped


@dataclass
class TapedClientStats:
    """Small summary of a tape, for reports."""

    total: int = 0
    completed: int = 0
    pending: int = 0
    keys: int = 0

    @classmethod
    def of(cls, tape: HistoryTape) -> "TapedClientStats":
        """Summarize ``tape``."""
        completed = len(tape.completed)
        return cls(total=len(tape), completed=completed,
                   pending=len(tape) - completed, keys=len(tape.per_key()))
