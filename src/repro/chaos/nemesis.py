"""The nemesis: deterministic, scheduled composition of fault primitives.

A :class:`NemesisPlan` is a named, immutable set of timed faults; the
:class:`Nemesis` installs a plan against a running cluster by sharing one
:class:`~repro.chaos.faults.LinkFaults` data plane across every replica's
transport and scheduling the apply/revert callbacks on the simulator.  Plans
come from three places:

* the **named schedule library** (:data:`NEMESIS_SCHEDULES`) — the fixed
  vocabulary the conformance matrix and the CLI speak;
* :func:`random_plan` — generative schedules drawn from a deterministic
  stream (fork it with :meth:`~repro.sim.random.DeterministicRandom.fork_cell`
  so a random campaign replays from its seed);
* hand-built plans in tests.

Fault primitives and their liveness footprint:

* ``PartitionFault`` / ``AsymmetricPartitionFault`` in ``"queue"`` mode hold
  messages and release them on heal (a stalled TCP connection); every
  protocol in the repository tolerates them.  ``"drop"`` mode loses the
  messages instead; the runtime retransmission + catch-up layer
  (:mod:`repro.runtime.kernel`) recovers the lost quorum traffic after the
  heal, so drop-mode faults cost latency, not liveness.
* ``LossFault`` drops messages probabilistically — recovered the same way.
* ``DuplicationFault``, ``DelaySpikeFault``, ``ClockSkewFault`` are
  loss-free: safe for every protocol.
* ``CrashFault`` reuses the :class:`~repro.sim.failures.CrashInjector`
  machinery from Figure 12; messages addressed to (or in flight towards) a
  crashed node are lost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.chaos.faults import LinkFaults, cross_links, symmetric_links
from repro.sim.failures import ScheduledCrash
from repro.sim.random import DeterministicRandom

NodeGroup = Tuple[int, ...]


@dataclass(frozen=True)
class PartitionFault:
    """Cut connectivity between every pair of the given groups, then heal."""

    at_ms: float
    heal_at_ms: float
    groups: Tuple[NodeGroup, ...]
    mode: str = "queue"


@dataclass(frozen=True)
class AsymmetricPartitionFault:
    """Cut only the ``src -> dst`` direction, then heal."""

    at_ms: float
    heal_at_ms: float
    src_nodes: NodeGroup
    dst_nodes: NodeGroup
    mode: str = "queue"


@dataclass(frozen=True)
class LossFault:
    """Drop each message on the selected links with ``probability``."""

    at_ms: float
    until_ms: float
    probability: float
    src_nodes: Optional[NodeGroup] = None
    dst_nodes: Optional[NodeGroup] = None


@dataclass(frozen=True)
class DuplicationFault:
    """Deliver each message on the selected links twice with ``probability``."""

    at_ms: float
    until_ms: float
    probability: float
    src_nodes: Optional[NodeGroup] = None
    dst_nodes: Optional[NodeGroup] = None


@dataclass(frozen=True)
class DelaySpikeFault:
    """Add ``extra_ms`` (+ uniform ``jitter_ms``) to the selected links.

    A jitter comparable to (or larger than) the nominal link delay also
    *reorders* messages, which is the point of the ``dup-reorder`` schedule.
    """

    at_ms: float
    until_ms: float
    extra_ms: float
    jitter_ms: float = 0.0
    src_nodes: Optional[NodeGroup] = None
    dst_nodes: Optional[NodeGroup] = None


@dataclass(frozen=True)
class CrashFault:
    """Crash one node (and optionally restart it later)."""

    at_ms: float
    node_id: int
    restart_at_ms: Optional[float] = None


@dataclass(frozen=True)
class ClockSkewFault:
    """Scale one node's timer delays by ``factor`` during the window."""

    at_ms: float
    until_ms: float
    node_id: int
    factor: float


Fault = object  # any of the fault dataclasses above


@dataclass(frozen=True)
class NemesisPlan:
    """A named, immutable schedule of faults."""

    name: str
    faults: Tuple[Fault, ...]

    @property
    def quiesced_at_ms(self) -> float:
        """Earliest virtual time by which every fault has been reverted.

        A :class:`CrashFault` without a restart quiesces at its crash time:
        the node simply stays dead, which is a legal steady state.
        """
        end = 0.0
        for fault in self.faults:
            end = max(end, fault.at_ms)
            for attr in ("heal_at_ms", "until_ms", "restart_at_ms"):
                value = getattr(fault, attr, None)
                if value is not None:
                    end = max(end, value)
        return end

    def describe(self) -> str:
        """Multi-line human-readable form of the schedule."""
        lines = [f"nemesis plan '{self.name}' ({len(self.faults)} faults, "
                 f"quiesced by t={self.quiesced_at_ms:.0f}ms):"]
        for fault in sorted(self.faults, key=lambda f: f.at_ms):
            lines.append(f"  t={fault.at_ms:>7.0f}ms  {fault}")
        return "\n".join(lines)


class Nemesis:
    """Installs a :class:`NemesisPlan` against a running cluster.

    Construction wires the shared fault data plane into every replica's
    transport (through the fault-filter seam) and schedules every fault's
    apply/revert callbacks; nothing happens until the simulator reaches the
    scheduled times.

    Args:
        cluster: a built :class:`~repro.harness.cluster.Cluster`.
        plan: the fault schedule to execute.
    """

    def __init__(self, cluster, plan: NemesisPlan) -> None:
        self.cluster = cluster
        self.plan = plan
        sim = cluster.sim
        self.faults = LinkFaults(sim, cluster.network, sim.rng.fork("nemesis"))
        #: chronological record of every fault transition applied.
        self.log: List[Tuple[float, str]] = []
        for replica in cluster.replicas:
            install = getattr(replica.transport, "install_fault_filter", None)
            if install is not None:
                install(self.faults)
        self._all_nodes: Tuple[int, ...] = tuple(cluster.network.node_ids)
        for fault in plan.faults:
            self._schedule(fault)

    # ------------------------------------------------------------- scheduling

    def _note(self, text: str) -> None:
        self.log.append((self.cluster.sim.now, text))

    def _links_of(self, src_nodes: Optional[NodeGroup],
                  dst_nodes: Optional[NodeGroup]) -> List[Tuple[int, int]]:
        return cross_links(src_nodes or self._all_nodes, dst_nodes or self._all_nodes)

    def _schedule(self, fault: Fault) -> None:
        sim = self.cluster.sim
        if isinstance(fault, PartitionFault):
            links: List[Tuple[int, int]] = []
            for i, group_a in enumerate(fault.groups):
                for group_b in fault.groups[i + 1:]:
                    links.extend(symmetric_links(group_a, group_b))
            sim.schedule_at(fault.at_ms, self._apply_block, args=(links, fault.mode,
                                                                  f"partition {fault.groups}"))
            sim.schedule_at(fault.heal_at_ms, self._heal_block,
                            args=(links, f"heal partition {fault.groups}"))
        elif isinstance(fault, AsymmetricPartitionFault):
            links = cross_links(fault.src_nodes, fault.dst_nodes)
            label = f"one-way cut {fault.src_nodes}->{fault.dst_nodes}"
            sim.schedule_at(fault.at_ms, self._apply_block, args=(links, fault.mode, label))
            sim.schedule_at(fault.heal_at_ms, self._heal_block, args=(links, f"heal {label}"))
        elif isinstance(fault, LossFault):
            links = self._links_of(fault.src_nodes, fault.dst_nodes)
            sim.schedule_at(fault.at_ms, self._apply_simple,
                            args=(self.faults.set_loss, (links, fault.probability),
                                  f"loss p={fault.probability} on {len(links)} links"))
            sim.schedule_at(fault.until_ms, self._apply_simple,
                            args=(self.faults.clear_loss, (links,), "loss cleared"))
        elif isinstance(fault, DuplicationFault):
            links = self._links_of(fault.src_nodes, fault.dst_nodes)
            sim.schedule_at(fault.at_ms, self._apply_simple,
                            args=(self.faults.set_duplication, (links, fault.probability),
                                  f"duplication p={fault.probability} on {len(links)} links"))
            sim.schedule_at(fault.until_ms, self._apply_simple,
                            args=(self.faults.clear_duplication, (links,),
                                  "duplication cleared"))
        elif isinstance(fault, DelaySpikeFault):
            links = self._links_of(fault.src_nodes, fault.dst_nodes)
            sim.schedule_at(fault.at_ms, self._apply_simple,
                            args=(self.faults.set_delay_spike,
                                  (links, fault.extra_ms, fault.jitter_ms),
                                  f"delay spike +{fault.extra_ms}ms±{fault.jitter_ms} "
                                  f"on {len(links)} links"))
            sim.schedule_at(fault.until_ms, self._apply_simple,
                            args=(self.faults.clear_delay_spike, (links,),
                                  "delay spike cleared"))
        elif isinstance(fault, CrashFault):
            self.cluster.crash_injector.schedule(ScheduledCrash(
                node_id=fault.node_id, crash_at_ms=fault.at_ms,
                restart_at_ms=fault.restart_at_ms))
            sim.schedule_at(fault.at_ms, self._note, args=(f"crash node {fault.node_id}",))
            if fault.restart_at_ms is not None:
                sim.schedule_at(fault.restart_at_ms, self._note,
                                args=(f"restart node {fault.node_id}",))
        elif isinstance(fault, ClockSkewFault):
            sim.schedule_at(fault.at_ms, self._apply_skew, args=(fault.node_id, fault.factor))
            sim.schedule_at(fault.until_ms, self._apply_skew, args=(fault.node_id, 1.0))
        else:
            raise TypeError(f"unknown fault primitive: {fault!r}")

    # ---------------------------------------------------------------- actions

    def _apply_block(self, links, mode: str, label: str) -> None:
        self.faults.block(links, mode=mode)
        self._note(f"{label} [{mode}, {len(links)} links]")

    def _heal_block(self, links, label: str) -> None:
        self.faults.unblock(links)
        self._note(label)

    def _apply_simple(self, fn: Callable, args: tuple, label: str) -> None:
        fn(*args)
        self._note(label)

    def _apply_skew(self, node_id: int, factor: float) -> None:
        self.cluster.replicas[node_id].timer_scale = factor
        self._note(f"clock of node {node_id} scaled x{factor}")

    # ------------------------------------------------------------------ state

    def ensure_quiesced(self) -> None:
        """Force-revert every link fault and clock skew (defensive heal).

        The scheduled revert callbacks normally do this; calling it before a
        progress probe guarantees a clean fabric even for hand-built plans
        that forgot a heal.  Crashed nodes stay crashed (a legal steady
        state the probe must tolerate).
        """
        self.faults.unblock_all()
        nodes = self._all_nodes
        self.faults.clear_loss(cross_links(nodes, nodes))
        self.faults.clear_duplication(cross_links(nodes, nodes))
        self.faults.clear_delay_spike(cross_links(nodes, nodes))
        for replica in self.cluster.replicas:
            replica.timer_scale = 1.0

    @property
    def crashed_forever(self) -> List[int]:
        """Nodes the plan crashes and never restarts."""
        dead: Dict[int, bool] = {}
        for fault in self.plan.faults:
            if isinstance(fault, CrashFault):
                dead[fault.node_id] = fault.restart_at_ms is None
        return [node_id for node_id, forever in dead.items() if forever]


# ---------------------------------------------------------------------------
# Named schedule library
# ---------------------------------------------------------------------------
#
# Every builder has the signature ``(n, at_ms, hold_ms) -> NemesisPlan``:
# the fault begins at ``at_ms`` and the fabric is fully healed by
# ``at_ms + hold_ms``.  ``flaky-links`` and ``crash-restart`` lose messages;
# the runtime retransmission + catch-up layer recovers them after the heal,
# so every protocol can (and must) survive the whole library — that is the
# conformance matrix.


def _minority_partition(n: int, at_ms: float, hold_ms: float) -> NemesisPlan:
    """Symmetric queue-partition isolating a minority of nodes."""
    minority = tuple(range(n - max(1, (n - 1) // 2), n))
    majority = tuple(i for i in range(n) if i not in minority)
    return NemesisPlan("minority-partition", (
        PartitionFault(at_ms=at_ms, heal_at_ms=at_ms + hold_ms,
                       groups=(majority, minority)),))


def _asymmetric_partition(n: int, at_ms: float, hold_ms: float) -> NemesisPlan:
    """One-way cut: the last node's outbound links go dark."""
    mute = n - 1
    rest = tuple(i for i in range(n) if i != mute)
    return NemesisPlan("asymmetric-partition", (
        AsymmetricPartitionFault(at_ms=at_ms, heal_at_ms=at_ms + hold_ms,
                                 src_nodes=(mute,), dst_nodes=rest),))


def _partition_churn(n: int, at_ms: float, hold_ms: float) -> NemesisPlan:
    """Two successive partitions with different cuts, back to back."""
    half = hold_ms / 2.0
    cut_a = tuple(range(2))
    rest_a = tuple(range(2, n))
    cut_b = tuple(range(1, 3)) if n > 3 else cut_a
    rest_b = tuple(i for i in range(n) if i not in cut_b)
    return NemesisPlan("partition-churn", (
        PartitionFault(at_ms=at_ms, heal_at_ms=at_ms + half, groups=(rest_a, cut_a)),
        PartitionFault(at_ms=at_ms + half, heal_at_ms=at_ms + hold_ms,
                       groups=(rest_b, cut_b)),))


def _dup_reorder(n: int, at_ms: float, hold_ms: float) -> NemesisPlan:
    """Message duplication plus reordering jitter on every link."""
    return NemesisPlan("dup-reorder", (
        DuplicationFault(at_ms=at_ms, until_ms=at_ms + hold_ms, probability=0.25),
        DelaySpikeFault(at_ms=at_ms, until_ms=at_ms + hold_ms,
                        extra_ms=0.0, jitter_ms=60.0),))


def _delay_storm(n: int, at_ms: float, hold_ms: float) -> NemesisPlan:
    """Large extra delay with heavy jitter on every link (WAN brownout)."""
    return NemesisPlan("delay-storm", (
        DelaySpikeFault(at_ms=at_ms, until_ms=at_ms + hold_ms,
                        extra_ms=150.0, jitter_ms=100.0),))


def _slow_node(n: int, at_ms: float, hold_ms: float) -> NemesisPlan:
    """One node's inbound links slow to a crawl (GC-pausing peer)."""
    slow = n // 2
    others = tuple(i for i in range(n) if i != slow)
    return NemesisPlan("slow-node", (
        DelaySpikeFault(at_ms=at_ms, until_ms=at_ms + hold_ms, extra_ms=80.0,
                        jitter_ms=40.0, src_nodes=others, dst_nodes=(slow,)),))


def _clock_skew(n: int, at_ms: float, hold_ms: float) -> NemesisPlan:
    """One slow clock and one fast clock during the window."""
    return NemesisPlan("clock-skew", (
        ClockSkewFault(at_ms=at_ms, until_ms=at_ms + hold_ms, node_id=1, factor=3.0),
        ClockSkewFault(at_ms=at_ms, until_ms=at_ms + hold_ms, node_id=min(2, n - 1),
                       factor=0.4),))


def _crash_restart(n: int, at_ms: float, hold_ms: float) -> NemesisPlan:
    """Crash the last node mid-run, restart it at the heal (lossy)."""
    return NemesisPlan("crash-restart", (
        CrashFault(at_ms=at_ms, node_id=n - 1, restart_at_ms=at_ms + hold_ms),))


def _flaky_links(n: int, at_ms: float, hold_ms: float) -> NemesisPlan:
    """Probabilistic message loss on every link (lossy)."""
    return NemesisPlan("flaky-links", (
        LossFault(at_ms=at_ms, until_ms=at_ms + hold_ms, probability=0.15),))


#: The full schedule library (name -> builder).
NEMESIS_SCHEDULES: Dict[str, Callable[[int, float, float], NemesisPlan]] = {
    "minority-partition": _minority_partition,
    "asymmetric-partition": _asymmetric_partition,
    "partition-churn": _partition_churn,
    "dup-reorder": _dup_reorder,
    "delay-storm": _delay_storm,
    "slow-node": _slow_node,
    "clock-skew": _clock_skew,
    "crash-restart": _crash_restart,
    "flaky-links": _flaky_links,
}

#: The schedules every protocol must survive (the conformance matrix).  The
#: lossy pair (``crash-restart``, ``flaky-links``) is included: the runtime
#: retransmission + catch-up layer makes them recoverable.
CONFORMANCE_SCHEDULES: Tuple[str, ...] = (
    "minority-partition",
    "asymmetric-partition",
    "partition-churn",
    "dup-reorder",
    "delay-storm",
    "slow-node",
    "clock-skew",
    "crash-restart",
    "flaky-links",
)


def build_schedule(name: str, n: int, at_ms: float, hold_ms: float) -> NemesisPlan:
    """Instantiate a named schedule for an ``n``-node cluster."""
    try:
        builder = NEMESIS_SCHEDULES[name]
    except KeyError:
        raise ValueError(f"unknown nemesis schedule {name!r}; "
                         f"known: {sorted(NEMESIS_SCHEDULES)}") from None
    return builder(n, at_ms, hold_ms)


def random_plan(rng: DeterministicRandom, n: int, at_ms: float, hold_ms: float,
                fault_count: int = 3, include_lossy: bool = False) -> NemesisPlan:
    """Generate a random fault schedule from a deterministic stream.

    Each fault occupies a random sub-window of ``[at_ms, at_ms + hold_ms]``;
    the plan is fully healed by the end of the window.  With
    ``include_lossy`` the generator may also draw message loss and
    crash/restart faults (recovered after the heal by the runtime
    retransmission + catch-up layer).

    Fork ``rng`` per campaign cell (e.g. ``root.fork_cell(("chaos", seed,
    i))``) so every generated plan replays from its coordinates.
    """
    kinds = ["partition", "asymmetric", "dup", "delay", "skew"]
    if include_lossy:
        kinds += ["loss", "crash"]
    faults: List[Fault] = []
    for _ in range(fault_count):
        start = at_ms + rng.uniform(0.0, hold_ms * 0.5)
        end = start + rng.uniform(hold_ms * 0.2, hold_ms * 0.5)
        end = min(end, at_ms + hold_ms)
        kind = rng.choice(kinds)
        if kind == "partition":
            cut = tuple(sorted(_sample(rng, n, rng.randint(1, max(1, n // 2)))))
            rest = tuple(i for i in range(n) if i not in cut)
            faults.append(PartitionFault(at_ms=start, heal_at_ms=end, groups=(rest, cut)))
        elif kind == "asymmetric":
            mute = rng.randint(0, n - 1)
            rest = tuple(i for i in range(n) if i != mute)
            faults.append(AsymmetricPartitionFault(at_ms=start, heal_at_ms=end,
                                                   src_nodes=(mute,), dst_nodes=rest))
        elif kind == "dup":
            faults.append(DuplicationFault(at_ms=start, until_ms=end,
                                           probability=rng.uniform(0.05, 0.4)))
        elif kind == "delay":
            faults.append(DelaySpikeFault(at_ms=start, until_ms=end,
                                          extra_ms=rng.uniform(20.0, 200.0),
                                          jitter_ms=rng.uniform(0.0, 120.0)))
        elif kind == "skew":
            faults.append(ClockSkewFault(at_ms=start, until_ms=end,
                                         node_id=rng.randint(0, n - 1),
                                         factor=rng.choice([0.3, 0.5, 2.0, 4.0])))
        elif kind == "loss":
            faults.append(LossFault(at_ms=start, until_ms=end,
                                    probability=rng.uniform(0.05, 0.3)))
        else:  # crash
            faults.append(CrashFault(at_ms=start, node_id=rng.randint(0, n - 1),
                                     restart_at_ms=end))
    return NemesisPlan("random", tuple(faults))


def _sample(rng: DeterministicRandom, n: int, k: int) -> List[int]:
    """Draw ``k`` distinct node ids deterministically."""
    nodes = list(range(n))
    rng.shuffle(nodes)
    return nodes[:k]
