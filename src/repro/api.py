"""One public facade over the repro toolkit.

Everything an external caller (a notebook, a script, the examples) needs is
re-exported here, so user code imports one module instead of spelunking the
package layout::

    from repro import api

    result = api.run_experiment(api.ExperimentConfig(protocol="caesar"))
    chaos = api.run_chaos(api.ChaosConfig(schedule="minority-partition"))
    cluster = api.serve_cluster(api.ServeConfig(protocol="caesar", replicas=3))

The four entry points:

* :func:`run_experiment` — one protocol, one workload, on the simulator;
* :func:`run_sweep` — many experiment cells, optionally in parallel;
* :func:`run_chaos` — a protocol under a nemesis fault schedule, with
  linearizability checking;
* :func:`serve_cluster` — a real multiprocess TCP cluster on this host
  (paired with :func:`run_loadgen` to drive it);
* :func:`run_overload_sweep` — offered load swept past the saturation knee
  on either substrate, with optional admission control
  (:func:`admission_policy`) and persistence into a :class:`ResultsStore`;
* :func:`run_sharded` — a hash-partitioned keyspace over S independent
  consensus groups (:class:`ShardedConfig`), on generator-built WAN
  topologies (:func:`wan_topology`), optionally under zipfian skew
  (:class:`ZipfWorkloadConfig`).

Each entry point has a config dataclass (``ExperimentConfig``,
``ChaosConfig``, ``ServeConfig``, ``LoadgenConfig``, plus the underlying
``ClusterConfig`` / ``NetworkConfig`` / ``WorkloadConfig``), and every config
that maps onto CLI flags has a ``from_args`` classmethod — the CLI itself is
just argparse + these constructors.
"""

from __future__ import annotations

from repro.consensus.command import Command, CommandResult
# The baseline protocols register themselves on import; pulling the module
# in here means ``api.PROTOCOLS`` is fully populated for facade users.
from repro.harness import protocols as _protocols  # noqa: F401
from repro.harness.chaos import ChaosConfig, ChaosResult, run_chaos
from repro.harness.cluster import (PROTOCOLS, Cluster, ClusterConfig,
                                   build_cluster, register_protocol)
from repro.harness.experiment import (ExperimentConfig, ExperimentResult,
                                      run_experiment)
from repro.harness.overload import (LoadPoint, OverloadConfig, OverloadResult,
                                    run_overload_sweep, store_overload_result)
from repro.harness.shard import (CrossShardCoordinator, ShardedConfig,
                                 ShardedResult, ShardRouter, run_sharded)
from repro.harness.sweep import SweepCell, SweepResult, run_sweep, sweep_cell
from repro.metrics.report import render_report
from repro.metrics.store import ResultsStore, RunRecord, current_git_commit
from repro.net.client import (LoadgenConfig, LoadgenReport, fetch_stats,
                              run_loadgen)
from repro.net.cluster import LocalCluster, ServeConfig, serve_cluster
from repro.net.replica import ReplicaConfig, ReplicaServer, serve_replica
from repro.runtime.admission import (AdmissionPolicy, InflightLimit, NoAdmission,
                                     QueueDeadline, admission_policy)
from repro.sim.network import NetworkConfig
from repro.sim.topology import (Topology, custom_topology, ec2_five_sites,
                                wan_topology, with_replicas_per_site)
from repro.workload.generator import WorkloadConfig, ZipfWorkloadConfig

__all__ = [
    # entry points
    "run_experiment",
    "run_sweep",
    "run_chaos",
    "serve_cluster",
    "run_loadgen",
    "serve_replica",
    "run_overload_sweep",
    "run_sharded",
    # configs
    "ExperimentConfig",
    "ChaosConfig",
    "ClusterConfig",
    "NetworkConfig",
    "WorkloadConfig",
    "ZipfWorkloadConfig",
    "ShardedConfig",
    "ServeConfig",
    "LoadgenConfig",
    "ReplicaConfig",
    "OverloadConfig",
    # results / building blocks
    "ExperimentResult",
    "ChaosResult",
    "SweepCell",
    "SweepResult",
    "sweep_cell",
    "LoadgenReport",
    "LocalCluster",
    "ReplicaServer",
    "Cluster",
    "ShardedResult",
    "ShardRouter",
    "CrossShardCoordinator",
    "Topology",
    "ec2_five_sites",
    "custom_topology",
    "wan_topology",
    "with_replicas_per_site",
    "Command",
    "CommandResult",
    "PROTOCOLS",
    "build_cluster",
    "register_protocol",
    "fetch_stats",
    # overload / admission / results store
    "OverloadResult",
    "LoadPoint",
    "store_overload_result",
    "AdmissionPolicy",
    "NoAdmission",
    "InflightLimit",
    "QueueDeadline",
    "admission_policy",
    "ResultsStore",
    "RunRecord",
    "render_report",
    "current_git_commit",
]
