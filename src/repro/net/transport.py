"""Asyncio TCP transport: the real-socket backend of the Transport contract.

One :class:`AsyncioTransport` serves one replica process.  Outgoing traffic
uses one TCP connection per destination peer, dialed by this side and
re-dialed with capped exponential backoff whenever it drops; incoming
traffic arrives on connections the *peer* dialed (accepted by the replica
server), so every directed link ``A -> B`` is its own connection, exactly
like the directed links of the simulated network.

Messages are encoded once through the canonical registry codec
(:data:`repro.runtime.registry.WIRE`) and framed with a 4-byte length prefix
(:mod:`repro.net.framing`).  While a destination is unreachable its messages
are *dropped*, not queued: that is the UDP-like contract the protocol kernel
already survives — the PR-6 retransmission + catch-up layer turns the loss
into latency, over sockets exactly as it does under the nemesis loss faults.

:class:`PeerNetwork` is the socket-world counterpart of the simulated
:class:`~repro.sim.network.Network`: the same ``node_ids`` / ``register`` /
``stats`` surface (so the kernel runs unchanged) plus the transport-factory
hook that hands replicas an :class:`AsyncioTransport`.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.net.clock import WallClock
from repro.net.framing import encode_frame
from repro.net.wire import ROLE_REPLICA, Hello
from repro.runtime.clock import Timer
from repro.runtime.registry import WIRE
from repro.runtime.transport import Transport
from repro.sim.network import NetworkConfig, NetworkStats

#: Per-connection outgoing buffer cap: above this many unsent bytes the
#: destination is considered stalled and further messages are dropped
#: (retransmission recovers them later) instead of ballooning memory.
WRITE_BUFFER_LIMIT = 4 * 1024 * 1024


@dataclass(frozen=True)
class ReconnectPolicy:
    """Backoff for re-dialing a lost peer connection."""

    initial_ms: float = 50.0
    factor: float = 2.0
    max_ms: float = 2000.0
    connect_timeout_s: float = 5.0


class PeerNetwork:
    """Socket-world peer map satisfying the kernel's network duck-type.

    Args:
        clock: the replica's :class:`~repro.net.clock.WallClock`.
        local_id: this process's replica id (must appear in ``peers``).
        peers: replica id -> ``(host, port)`` listen address.
    """

    def __init__(self, clock: WallClock, local_id: int,
                 peers: Dict[int, Tuple[str, int]],
                 reconnect: Optional[ReconnectPolicy] = None) -> None:
        if local_id not in peers:
            raise ValueError(f"local replica {local_id} missing from peer map {sorted(peers)}")
        self.clock = clock
        self.local_id = local_id
        self.peers = dict(peers)
        self.reconnect = reconnect or ReconnectPolicy()
        self.stats = NetworkStats()
        self.config = NetworkConfig()
        self._nodes: Dict[int, object] = {}

    @property
    def node_ids(self) -> List[int]:
        """All replica ids in the peer map, ascending."""
        return sorted(self.peers)

    def register(self, node) -> None:
        """Attach the locally hosted replica (the only node in this process)."""
        if node.node_id != self.local_id:
            raise ValueError(f"node {node.node_id} registered on the peer network "
                             f"of replica {self.local_id}")
        if node.node_id in self._nodes:
            raise ValueError(f"node {node.node_id} already registered")
        self._nodes[node.node_id] = node

    def node(self, node_id: int):
        """The locally registered replica (raises for remote ids)."""
        return self._nodes[node_id]

    def create_transport(self, node, batching=None) -> "AsyncioTransport":
        """Transport-factory hook used by :class:`~repro.sim.node.Node`."""
        if batching is not None:
            raise NotImplementedError("outgoing batching is not supported over TCP yet")
        return AsyncioTransport(node, self)

    def deliver_local(self, src: int, message: object) -> None:
        """Hand an inbound (or self-addressed) message to the hosted replica."""
        node = self._nodes.get(self.local_id)
        if node is None or node.crashed:
            self.stats.messages_to_crashed += 1
            return
        self.stats.messages_delivered += 1
        node.receive(src, message)


class PeerConnection:
    """One outgoing directed link: dial, hello, keep alive, re-dial on loss."""

    def __init__(self, network: PeerNetwork, dst: int) -> None:
        self.network = network
        self.dst = dst
        self.host, self.port = network.peers[dst]
        self.policy = network.reconnect
        self.writer: Optional[asyncio.StreamWriter] = None
        self.connects = 0
        self._task: Optional[asyncio.Task] = None
        self._closed = False

    def start(self) -> None:
        """Begin (re)connecting in the background (idempotent)."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name=f"peer-{self.network.local_id}->{self.dst}")

    @property
    def connected(self) -> bool:
        """Whether a live socket to the peer currently exists."""
        return self.writer is not None

    def send_frame(self, frame: bytes) -> bool:
        """Write one frame if connected and not stalled; ``False`` = dropped."""
        writer = self.writer
        if writer is None:
            return False
        if writer.transport.get_write_buffer_size() > WRITE_BUFFER_LIMIT:
            return False
        try:
            writer.write(frame)
        except (ConnectionError, RuntimeError):
            self.writer = None
            return False
        return True

    async def _run(self) -> None:
        backoff_ms = self.policy.initial_ms
        while not self._closed:
            reader = None
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(self.host, self.port),
                    timeout=self.policy.connect_timeout_s)
                writer.write(encode_frame(WIRE.encode(
                    Hello(sender=self.network.local_id, role=ROLE_REPLICA))))
                await writer.drain()
                self.writer = writer
                self.connects += 1
                backoff_ms = self.policy.initial_ms
                # The peer never sends on this directed link; a read only
                # returns at EOF / reset, i.e. when the link died.
                while True:
                    data = await reader.read(4096)
                    if not data:
                        break
            except asyncio.CancelledError:
                break
            except (ConnectionError, OSError, asyncio.TimeoutError):
                pass
            finally:
                self._teardown_writer()
            if self._closed:
                break
            await asyncio.sleep(backoff_ms / 1000.0)
            backoff_ms = min(backoff_ms * self.policy.factor, self.policy.max_ms)

    def _teardown_writer(self) -> None:
        writer, self.writer = self.writer, None
        if writer is not None:
            try:
                writer.close()
            except RuntimeError:
                pass

    def close(self) -> None:
        """Stop reconnecting and drop the live socket (idempotent)."""
        self._closed = True
        if self._task is not None:
            self._task.cancel()
        self._teardown_writer()


class AsyncioTransport(Transport):
    """Transport over real TCP sockets (see the module docstring).

    Lifecycle: constructed with the replica (timers work immediately via the
    wall clock), :meth:`start` dials every peer, :meth:`close` tears the
    dialed connections down.  Sends before the dial completes — or while a
    peer is down — are dropped and counted in ``network.stats``.
    """

    def __init__(self, node, network: PeerNetwork) -> None:
        self.node = node
        self.network = network
        self.clock = network.clock
        self._node_id = node.node_id
        self._connections: Dict[int, PeerConnection] = {}
        self._started = False
        self._closed = False

    @property
    def node_ids(self) -> List[int]:
        return self.network.node_ids

    def start(self) -> None:
        """Dial every remote peer (idempotent)."""
        if self._started or self._closed:
            return
        self._started = True
        for dst in self.network.node_ids:
            if dst == self._node_id:
                continue
            connection = PeerConnection(self.network, dst)
            self._connections[dst] = connection
            connection.start()

    def connection(self, dst: int) -> Optional[PeerConnection]:
        """The outgoing connection towards ``dst`` (``None`` before start)."""
        return self._connections.get(dst)

    def send(self, dst: int, message: object, size_bytes: int = 64) -> None:
        """Encode, frame and transmit one message (drop when unreachable)."""
        if self._closed:
            return
        payload = WIRE.encode(message)
        self._transmit(dst, message, payload, encode_frame(payload))

    def broadcast(self, message: object, include_self: bool = True,
                  size_bytes: int = 64) -> None:
        """Send to every peer, encoding the message exactly once."""
        if self._closed:
            return
        payload = WIRE.encode(message)
        frame = encode_frame(payload)
        local = self._node_id
        for dst in self.network.node_ids:
            if dst == local and not include_self:
                continue
            self._transmit(dst, message, payload, frame)

    def _transmit(self, dst: int, message: object, payload: bytes, frame: bytes) -> None:
        stats = self.network.stats
        stats.messages_sent += 1
        stats.bytes_sent += len(frame)
        # The socket backend encodes every message anyway, so real codec
        # bytes are always accounted — same counters the footprint benchmark
        # reads from simulator runs with wire_accounting enabled.
        stats.codec_bytes_sent += len(payload)
        type_name = type(message).__name__
        per_type = stats.per_type_codec_bytes
        per_type[type_name] = per_type.get(type_name, 0) + len(payload)
        if dst == self._node_id:
            # Self-sends never cross the wire: straight into the local
            # receive path (which defers dispatch through the clock).
            self.network.deliver_local(dst, message)
            return
        connection = self._connections.get(dst)
        if connection is None or not connection.send_frame(frame):
            stats.messages_dropped += 1

    def set_timer(self, delay_ms: float, callback) -> Timer:
        """Arm a timer on the wall clock (asyncio event loop)."""
        return Timer(self.clock.schedule(delay_ms, callback))

    def close(self) -> None:
        """Tear down every dialed connection (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for connection in self._connections.values():
            connection.close()
        self._connections.clear()
