"""Wire-level envelope messages for the TCP deployment mode.

Every frame on a socket carries one *registered* message — protocol messages
reuse their existing registrations (the canonical codec from
:mod:`repro.runtime.registry` IS the wire format), and this module registers
the handful of envelope types the socket world additionally needs:

* :class:`Hello` — the mandatory first frame on every connection, naming the
  sender and its role, so the receiving replica knows whether subsequent
  frames are peer protocol traffic (dispatched into the kernel with the
  peer's id as ``src``) or client requests;
* :class:`ClientRequest` / :class:`ClientReply` — a client command and its
  result, reusing the shared :data:`~repro.runtime.fields.COMMAND` codec so
  a TCP client submits byte-for-byte the same command the simulator's
  in-process clients submit;
* :class:`StatsRequest` / :class:`StatsReply` — the stats-export control
  round: a reply carries the replica's JSON-encoded
  :class:`~repro.runtime.stats.ProtocolStats` + substrate counters, shaped
  exactly like the simulator harness reports them.

Because these are ordinary registered messages, the Hypothesis round-trip
suite covers them automatically and their byte footprints show up in the
same accounting as every protocol message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.consensus.command import Command
from repro.runtime.codec import STRING, UINT, OptionalCodec
from repro.runtime.fields import COMMAND, COMMAND_ID
from repro.runtime.registry import register_message

#: Connection roles announced in :class:`Hello`.
ROLE_REPLICA = 0
ROLE_CLIENT = 1
ROLE_CONTROL = 2

ROLE_NAMES = {ROLE_REPLICA: "replica", ROLE_CLIENT: "client",
              ROLE_CONTROL: "control"}


@register_message(sender=UINT, role=UINT)
@dataclass(frozen=True, slots=True)
class Hello:
    """Mandatory first frame on every connection: who is calling, and why.

    ``sender`` is the peer's replica id for :data:`ROLE_REPLICA` connections
    and a client/control id otherwise (ids are per-role namespaces; only
    replica ids are routed).
    """

    sender: int
    role: int


@register_message(command=COMMAND)
@dataclass(frozen=True, slots=True)
class ClientRequest:
    """A client command submitted to the receiving replica for ordering."""

    command: Command


@register_message(command_id=COMMAND_ID, value=OptionalCodec(STRING), rejected=UINT)
@dataclass(frozen=True, slots=True)
class ClientReply:
    """The executed command's result, sent on the submitting connection.

    ``rejected`` (0/1) marks replies produced by the replica's admission
    policy shedding the command instead of ordering it.
    """

    command_id: Tuple[int, int]
    value: Optional[str] = None
    rejected: int = 0


@register_message(sender=UINT, include_executed=UINT)
@dataclass(frozen=True, slots=True)
class StatsRequest:
    """Ask a replica for its statistics snapshot.

    ``include_executed`` (0/1) additionally requests the full executed
    command-id list — used by the loopback oracle tests and the loadgen
    full-replication check; large, so off by default.
    """

    sender: int
    include_executed: int = 0


@register_message(sender=UINT, payload=STRING)
@dataclass(frozen=True, slots=True)
class StatsReply:
    """JSON-encoded statistics snapshot (see ``ReplicaServer.stats_payload``)."""

    sender: int
    payload: str
