"""Length-prefixed framing for the TCP wire.

A frame is a 4-byte big-endian length followed by exactly that many payload
bytes; the payload is one registry-encoded message
(:meth:`repro.runtime.registry.MessageRegistry.encode` output).  The framing
layer is deliberately dumb — no checksums, no versioning — because the codec
underneath is canonical and self-describing (type-id varint first), and TCP
already guarantees integrity and ordering per connection.

:class:`FrameDecoder` is an incremental parser: feed it whatever chunk sizes
the socket produces (half a header, three frames and a tail, one byte at a
time) and it yields complete payloads in order.  This is the partial-read
handling the asyncio transport relies on.
"""

from __future__ import annotations

import struct
from typing import Iterator, List

#: Frame header: payload length as an unsigned 32-bit big-endian integer.
HEADER = struct.Struct(">I")

#: Hard ceiling on a single frame's payload (16 MiB).  A length above this is
#: unambiguously a corrupt or hostile stream — no registered message, even a
#: maximal catch-up reply, comes anywhere close — and failing fast beats
#: buffering gigabytes.
MAX_FRAME_BYTES = 16 * 1024 * 1024


class FramingError(ValueError):
    """Raised when a stream violates the framing contract."""


def encode_frame(payload: bytes) -> bytes:
    """Wrap one encoded message into a length-prefixed frame."""
    if len(payload) > MAX_FRAME_BYTES:
        raise FramingError(f"frame payload of {len(payload)} bytes exceeds "
                           f"the {MAX_FRAME_BYTES}-byte limit")
    return HEADER.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental decoder turning an arbitrary byte stream into payloads.

    The decoder never copies more than once: chunks accumulate in a list and
    are joined only when a frame boundary is known to be inside them.
    """

    def __init__(self) -> None:
        self._chunks: List[bytes] = []
        self._buffered = 0
        #: payload length of the frame currently being read (None = reading
        #: the header).
        self._need: int | None = None

    @property
    def buffered_bytes(self) -> int:
        """Bytes received but not yet emitted as part of a complete frame."""
        return self._buffered

    def feed(self, data: bytes) -> Iterator[bytes]:
        """Add ``data`` to the buffer and yield every completed payload."""
        if data:
            self._chunks.append(data)
            self._buffered += len(data)
        while True:
            if self._need is None:
                header = self._take(HEADER.size)
                if header is None:
                    return
                (self._need,) = HEADER.unpack(header)
                if self._need > MAX_FRAME_BYTES:
                    raise FramingError(
                        f"incoming frame of {self._need} bytes exceeds the "
                        f"{MAX_FRAME_BYTES}-byte limit (corrupt stream?)")
            payload = self._take(self._need)
            if payload is None:
                return
            self._need = None
            yield payload

    def _take(self, count: int) -> bytes | None:
        """Remove exactly ``count`` bytes from the buffer, or ``None`` if short."""
        if self._buffered < count:
            return None
        buffer = b"".join(self._chunks) if len(self._chunks) != 1 else self._chunks[0]
        taken, rest = buffer[:count], buffer[count:]
        self._chunks = [rest] if rest else []
        self._buffered = len(rest)
        return taken
