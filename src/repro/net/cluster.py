"""Single-host multiprocess cluster launcher (``repro serve``).

:class:`LocalCluster` runs each replica as a real OS process with its own
event loop, GIL and sockets — the closest single-host stand-in for the
paper's multi-node deployment.  Processes are started with the ``spawn``
method so every child begins from a clean interpreter (fresh imports, fresh
message-registry state, no inherited event loops), which also keeps
:meth:`LocalCluster.restart` safe to call from inside an asyncio test.

Multi-host deployments use the same machinery minus the launcher: run
``repro serve --node-id i`` once per host with the full ``--peer`` map, then
point ``repro loadgen`` at any subset of the replicas.
"""

from __future__ import annotations

import multiprocessing
import signal
import socket
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.replica import ReplicaConfig


@dataclass
class ServeConfig:
    """Settings for launching a local N-replica cluster.

    Attributes:
        protocol: protocol name for every replica.
        replicas: cluster size (ignored when ``peers`` is given).
        seed: shared base seed (each replica forks per-node streams from it,
            with the same labels as the simulator).
        host: bind address for auto-allocated peer maps.
        peers: explicit peer map (multi-host mode); ``None`` allocates free
            localhost ports.
        retransmit: kernel retransmission master switch.
        recovery: enable protocol recovery machinery.
        admission: admission-control spec installed on every replica
            (``"none"``, ``"inflight:K"``, ``"deadline:MS"``).
    """

    protocol: str = "caesar"
    replicas: int = 3
    seed: int = 0
    host: str = "127.0.0.1"
    peers: Optional[Dict[int, Tuple[str, int]]] = None
    retransmit: bool = True
    recovery: bool = False
    admission: Optional[str] = None

    @classmethod
    def from_args(cls, args, **overrides) -> "ServeConfig":
        """Build a config from CLI args (single place flags become a config)."""
        kwargs = dict(protocol=getattr(args, "protocol", "caesar"),
                      replicas=getattr(args, "replicas", 3),
                      seed=getattr(args, "seed", 0),
                      host=getattr(args, "host", "127.0.0.1"),
                      peers=parse_peers(getattr(args, "peer", None) or []),
                      retransmit=not getattr(args, "no_retransmit", False),
                      recovery=getattr(args, "recovery", False),
                      admission=getattr(args, "admission", None))
        if kwargs["peers"] is not None:
            kwargs["replicas"] = len(kwargs["peers"])
        kwargs.update(overrides)
        return cls(**kwargs)


def parse_peers(specs: List[str]) -> Optional[Dict[int, Tuple[str, int]]]:
    """Parse ``ID=HOST:PORT`` specs into a peer map (``None`` when empty)."""
    if not specs:
        return None
    peers: Dict[int, Tuple[str, int]] = {}
    for spec in specs:
        try:
            node_part, addr = spec.split("=", 1)
            host, port_part = addr.rsplit(":", 1)
            peers[int(node_part)] = (host, int(port_part))
        except ValueError:
            raise ValueError(f"bad --peer {spec!r}; expected ID=HOST:PORT") from None
    return peers


def allocate_ports(host: str, count: int) -> List[int]:
    """Reserve ``count`` distinct free TCP ports on ``host``.

    The sockets are bound, read, then closed — a classic TOCTOU window, but
    the ports stay distinct and collisions on a quiet CI host are vanishingly
    rare (replicas bind them back within milliseconds).
    """
    sockets, ports = [], []
    try:
        for _ in range(count):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.bind((host, 0))
            sockets.append(sock)
            ports.append(sock.getsockname()[1])
    finally:
        for sock in sockets:
            sock.close()
    return ports


def _replica_process_main(config: ReplicaConfig) -> None:
    """Entry point of one replica child process."""
    import asyncio

    from repro.net.replica import serve_replica

    async def main() -> None:
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, stop.set)
        await serve_replica(config, stop_event=stop)

    asyncio.run(main())


@dataclass
class LocalCluster:
    """A running single-host cluster of replica processes."""

    config: ServeConfig
    peers: Dict[int, Tuple[str, int]]
    replica_configs: Dict[int, ReplicaConfig]
    processes: Dict[int, multiprocessing.Process] = field(default_factory=dict)

    @property
    def node_ids(self) -> List[int]:
        """All replica ids, ascending."""
        return sorted(self.peers)

    def start(self) -> None:
        """Spawn every replica process (idempotent per replica)."""
        ctx = multiprocessing.get_context("spawn")
        for node_id in self.node_ids:
            if node_id in self.processes and self.processes[node_id].is_alive():
                continue
            process = ctx.Process(target=_replica_process_main,
                                  args=(self.replica_configs[node_id],),
                                  name=f"repro-replica-{node_id}", daemon=True)
            process.start()
            self.processes[node_id] = process

    def wait_ready(self, timeout_s: float = 30.0) -> None:
        """Block until every replica accepts TCP connections."""
        deadline = time.monotonic() + timeout_s
        for node_id in self.node_ids:
            host, port = self.peers[node_id]
            while True:
                try:
                    socket.create_connection((host, port), timeout=1.0).close()
                    break
                except OSError:
                    process = self.processes.get(node_id)
                    if process is not None and not process.is_alive():
                        raise RuntimeError(
                            f"replica {node_id} exited during startup "
                            f"(exitcode {process.exitcode})") from None
                    if time.monotonic() >= deadline:
                        raise TimeoutError(
                            f"replica {node_id} not accepting connections on "
                            f"{host}:{port} after {timeout_s:.0f}s") from None
                    time.sleep(0.05)

    def kill(self, node_id: int) -> None:
        """Kill one replica process abruptly (SIGKILL — a real crash)."""
        process = self.processes[node_id]
        process.kill()
        process.join(timeout=10.0)

    def restart(self, node_id: int, wait_ready_s: float = 30.0) -> None:
        """Start a fresh (amnesiac) process for a killed replica.

        The restarted replica has empty state; the kernel catch-up layer
        replays decided commands from its peers, just as in the simulator's
        crash/restart chaos schedules.
        """
        ctx = multiprocessing.get_context("spawn")
        process = ctx.Process(target=_replica_process_main,
                              args=(self.replica_configs[node_id],),
                              name=f"repro-replica-{node_id}", daemon=True)
        process.start()
        self.processes[node_id] = process
        if wait_ready_s > 0:
            host, port = self.peers[node_id]
            deadline = time.monotonic() + wait_ready_s
            while True:
                try:
                    socket.create_connection((host, port), timeout=1.0).close()
                    return
                except OSError:
                    if time.monotonic() >= deadline:
                        raise TimeoutError(
                            f"restarted replica {node_id} not accepting "
                            f"connections within {wait_ready_s:.0f}s") from None
                    time.sleep(0.05)

    def stop(self, timeout_s: float = 10.0) -> None:
        """Terminate every replica process (idempotent)."""
        for process in self.processes.values():
            if process.is_alive():
                process.terminate()
        deadline = time.monotonic() + timeout_s
        for process in self.processes.values():
            process.join(timeout=max(0.1, deadline - time.monotonic()))
            if process.is_alive():
                process.kill()
                process.join(timeout=5.0)

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def build_local_cluster(config: ServeConfig) -> LocalCluster:
    """Resolve the peer map and per-replica configs (without starting)."""
    if config.peers is not None:
        peers = dict(config.peers)
    else:
        ports = allocate_ports(config.host, config.replicas)
        peers = {i: (config.host, port) for i, port in enumerate(ports)}
    replica_configs = {
        node_id: ReplicaConfig(node_id=node_id, peers=peers,
                               protocol=config.protocol, seed=config.seed,
                               retransmit=config.retransmit,
                               recovery=config.recovery,
                               admission=config.admission)
        for node_id in peers}
    return LocalCluster(config=config, peers=peers, replica_configs=replica_configs)


def serve_cluster(config: Optional[ServeConfig] = None,
                  wait_ready_s: float = 30.0) -> LocalCluster:
    """Launch a local cluster and wait until every replica is reachable."""
    cluster = build_local_cluster(config or ServeConfig())
    cluster.start()
    cluster.wait_ready(timeout_s=wait_ready_s)
    return cluster
