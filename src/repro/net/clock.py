"""Monotonic wall clock + asyncio timer service satisfying the kernel's API.

:class:`WallClock` is the real-time counterpart of the discrete-event
:class:`~repro.sim.simulator.Simulator`: the same ``now`` (milliseconds,
float) and ``schedule(delay_ms, callback, priority, args)`` surface, backed
by the asyncio event loop's monotonic clock instead of an event heap.  The
protocol kernel, the retransmission buffer, the catch-up probes and the
closed/open-loop clients all run unchanged against it.

Time starts at 0.0 when the clock is created (process start for a replica),
so durations and timer math behave exactly like virtual time; absolute
values are process-local and never cross the wire.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Optional, Tuple

from repro.runtime.clock import Clock
from repro.sim.random import DeterministicRandom


class ScheduledCall:
    """Cancellable handle for one wall-clock deferred call.

    Duck-type of :class:`~repro.sim.events.Event` as far as the runtime
    needs: ``cancel()`` and ``cancelled``.
    """

    __slots__ = ("_handle", "_cancelled")

    def __init__(self, handle: asyncio.TimerHandle) -> None:
        self._handle = handle
        self._cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        self._cancelled = True
        self._handle.cancel()

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._cancelled


class WallClock(Clock):
    """Clock over the asyncio event loop's monotonic time source.

    Args:
        seed: seed for the clock-owned :class:`DeterministicRandom`; per-node
            forks (retransmission jitter, workload streams) derive from it
            with exactly the same labels as in the simulator, so stochastic
            *choices* stay reproducible even though timing is real.
        loop: event loop to schedule on (default: the running loop).
    """

    def __init__(self, seed: int = 0, loop: Optional[asyncio.AbstractEventLoop] = None) -> None:
        self._loop = loop or asyncio.get_event_loop()
        self._t0 = self._loop.time()
        self.rng = DeterministicRandom(seed)

    @property
    def now(self) -> float:
        """Milliseconds of monotonic time since the clock was created."""
        return (self._loop.time() - self._t0) * 1000.0

    def schedule(self, delay: float, callback: Callable[..., None], priority: int = 0,
                 args: Tuple = ()) -> ScheduledCall:
        """Run ``callback(*args)`` after ``delay`` milliseconds of wall time.

        ``priority`` is accepted for interface compatibility with the
        simulator and ignored: the event loop fires same-deadline callbacks
        in scheduling order, which is the only ordering protocol code relies
        on in real time.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule an event in the past (delay={delay})")
        if delay <= 0:
            # call_soon keeps zero-delay dispatch (the per-message hot path)
            # off the heap-based timer queue.
            handle = self._loop.call_soon(callback, *args)
        else:
            handle = self._loop.call_later(delay / 1000.0, callback, *args)
        return ScheduledCall(handle)

    def schedule_at(self, time: float, callback: Callable[..., None], priority: int = 0,
                    args: Tuple = ()) -> ScheduledCall:
        """Schedule ``callback`` at an absolute clock reading (ms since start)."""
        return self.schedule(max(0.0, time - self.now), callback, priority, args)
