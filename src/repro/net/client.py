"""TCP clients: the socket-side counterpart of the in-process workload.

:class:`RemoteReplica` is a connection to one replica server that quacks
like a :class:`~repro.consensus.interface.ConsensusReplica` as far as the
workload clients care (``node_id`` / ``crashed`` / ``submit``), so the
*same* :class:`~repro.workload.clients.ClosedLoopClient` and
:class:`~repro.workload.clients.OpenLoopClient` that drive simulator runs
drive real clusters — running on a :class:`~repro.net.clock.WallClock`
instead of the simulator, with latencies measured in real milliseconds.

:func:`run_loadgen` is the engine behind ``repro loadgen``: it connects the
configured clients, replays the seeded workload (identical command streams
to a simulator run with the same seed), waits for completion and full
replication, and returns a :class:`LoadgenReport`.

:func:`fetch_stats` is a small *blocking* helper (plain sockets, no asyncio)
for control-plane callers — the cluster launcher and the CLI — to pull a
replica's JSON statistics snapshot.
"""

from __future__ import annotations

import asyncio
import json
import socket
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.consensus.command import Command, CommandResult
from repro.metrics.collector import MetricsCollector
from repro.net.clock import WallClock
from repro.net.framing import FrameDecoder, encode_frame
from repro.net.wire import (ROLE_CLIENT, ROLE_CONTROL, ClientReply,
                            ClientRequest, Hello, StatsReply, StatsRequest)
from repro.runtime.registry import WIRE
from repro.sim.random import DeterministicRandom
from repro.workload.clients import ClientPool, ClosedLoopClient, OpenLoopClient
from repro.workload.generator import ConflictWorkload, WorkloadConfig


class RemoteReplica:
    """A replica reached over TCP, presenting the local-replica surface.

    Args:
        node_id: the remote replica's id (used as every command's origin).
        host/port: the replica server's listen address.
        client_id: id announced in the connection's Hello frame.
    """

    def __init__(self, node_id: int, host: str, port: int, client_id: int = 0) -> None:
        self.node_id = node_id
        self.host = host
        self.port = port
        self.client_id = client_id
        #: mirrors the local-replica surface: flips when the connection dies,
        #: so closed-loop reconnect logic behaves as it does in-sim.
        self.crashed = False
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._pending: Dict[Tuple[int, int], Callable[[CommandResult], None]] = {}

    async def connect(self) -> None:
        """Dial the replica and start dispatching replies."""
        reader, writer = await asyncio.open_connection(self.host, self.port)
        writer.write(encode_frame(WIRE.encode(
            Hello(sender=self.client_id, role=ROLE_CLIENT))))
        await writer.drain()
        self._writer = writer
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_replies(reader), name=f"client-{self.client_id}->{self.node_id}")

    async def _read_replies(self, reader: asyncio.StreamReader) -> None:
        decoder = FrameDecoder()
        try:
            while True:
                data = await reader.read(64 * 1024)
                if not data:
                    break
                for payload in decoder.feed(data):
                    message = WIRE.decode_one(payload)
                    if isinstance(message, ClientReply):
                        callback = self._pending.pop(message.command_id, None)
                        if callback is not None:
                            callback(CommandResult(command_id=message.command_id,
                                                   value=message.value,
                                                   rejected=bool(message.rejected)))
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self.crashed = True

    def submit(self, command: Command,
               callback: Optional[Callable[[CommandResult], None]] = None) -> None:
        """Send a command for ordering; ``callback`` fires on its reply."""
        if callback is not None:
            self._pending[command.command_id] = callback
        writer = self._writer
        if writer is None or writer.is_closing():
            self.crashed = True
            return
        try:
            writer.write(encode_frame(WIRE.encode(ClientRequest(command=command))))
        except (ConnectionError, RuntimeError):
            self.crashed = True

    @property
    def outstanding(self) -> int:
        """Commands submitted but not yet answered."""
        return len(self._pending)

    async def close(self) -> None:
        """Drop the connection (idempotent)."""
        if self._reader_task is not None:
            self._reader_task.cancel()
            self._reader_task = None
        if self._writer is not None:
            try:
                self._writer.close()
            except RuntimeError:
                pass
            self._writer = None


def fetch_stats(host: str, port: int, include_executed: bool = False,
                timeout_s: float = 10.0) -> Dict[str, object]:
    """Fetch one replica's JSON statistics snapshot (blocking, no asyncio)."""
    with socket.create_connection((host, port), timeout=timeout_s) as sock:
        sock.sendall(encode_frame(WIRE.encode(Hello(sender=0, role=ROLE_CONTROL))))
        sock.sendall(encode_frame(WIRE.encode(
            StatsRequest(sender=0, include_executed=int(include_executed)))))
        decoder = FrameDecoder()
        while True:
            data = sock.recv(64 * 1024)
            if not data:
                raise ConnectionError(f"replica at {host}:{port} closed the "
                                      "connection before replying to StatsRequest")
            for payload in decoder.feed(data):
                message = WIRE.decode_one(payload)
                if isinstance(message, StatsReply):
                    return json.loads(message.payload)


@dataclass
class LoadgenConfig:
    """Parameters for one load-generation run against a live cluster.

    Attributes:
        endpoints: replica id -> ``(host, port)``; clients are spread
            round-robin across them (one "site" each, like the paper's
            co-located clients).
        clients: number of clients in total.
        commands_per_client: closed-loop budget per client (ignored in open
            loop).
        open_loop: use Poisson open-loop injection instead of closed loop.
        rate_per_client: open-loop injection rate (commands/second/client).
        duration_ms: open-loop injection window.
        conflict_rate: shared-key probability of the generated workload.
        seed: workload seed; the command streams equal a simulator run with
            the same seed/client count.
        warmup_ms: real milliseconds after start during which latency samples
            are discarded (mirrors the simulator's warm-up window; completed
            commands still count toward closed-loop budgets).
        workload: full workload override (wins over ``conflict_rate``).
        timeout_s: overall wall-clock budget for the run.
        drain_s: extra budget for full replication after clients finish.
    """

    endpoints: Dict[int, Tuple[str, int]]
    clients: int = 3
    commands_per_client: int = 10
    open_loop: bool = False
    rate_per_client: float = 50.0
    duration_ms: float = 2000.0
    conflict_rate: float = 0.02
    seed: int = 0
    warmup_ms: float = 0.0
    workload: Optional[WorkloadConfig] = None
    timeout_s: float = 60.0
    drain_s: float = 10.0

    @classmethod
    def from_args(cls, args, endpoints: Dict[int, Tuple[str, int]],
                  **overrides) -> "LoadgenConfig":
        """Build a config from CLI args (single place flags become a config).

        ``endpoints`` comes from the caller because it is resolved outside
        the flag vocabulary (``--endpoint`` entries or a ``--launch``-ed
        cluster's live peer map).
        """
        kwargs = dict(endpoints=endpoints,
                      clients=getattr(args, "clients", 3),
                      commands_per_client=getattr(args, "commands", 10),
                      open_loop=getattr(args, "open_loop", False),
                      rate_per_client=getattr(args, "rate", 50.0),
                      duration_ms=getattr(args, "duration", 2000.0),
                      conflict_rate=getattr(args, "conflicts", 2.0) / 100.0,
                      seed=getattr(args, "seed", 0),
                      warmup_ms=getattr(args, "warmup_ms", 0.0),
                      timeout_s=getattr(args, "timeout", 60.0))
        kwargs.update(overrides)
        return cls(**kwargs)


@dataclass
class LoadgenReport:
    """Outcome of a :func:`run_loadgen` run.

    ``throughput_per_second`` counts *completed* commands only, so with an
    admission policy installed it is the run's goodput; ``rejected`` counts
    commands the policy shed.
    """

    submitted: int
    completed: int
    rejected: int
    wall_seconds: float
    mean_latency_ms: Optional[float]
    p50_latency_ms: Optional[float]
    p99_latency_ms: Optional[float]
    p999_latency_ms: Optional[float]
    throughput_per_second: float
    per_replica: Dict[int, Dict[str, object]] = field(default_factory=dict)
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the run completed its workload with no failures."""
        return not self.failures

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly view (CLI output / CI artifacts)."""
        return {"submitted": self.submitted, "completed": self.completed,
                "rejected": self.rejected,
                "wall_seconds": self.wall_seconds,
                "mean_latency_ms": self.mean_latency_ms,
                "p50_latency_ms": self.p50_latency_ms,
                "p99_latency_ms": self.p99_latency_ms,
                "p999_latency_ms": self.p999_latency_ms,
                "throughput_per_second": self.throughput_per_second,
                "ok": self.ok, "failures": list(self.failures),
                "per_replica": {str(k): v for k, v in self.per_replica.items()}}


def run_loadgen(config: LoadgenConfig) -> LoadgenReport:
    """Drive a live cluster with the seeded workload (blocking wrapper)."""
    return asyncio.run(_loadgen(config))


async def _loadgen(config: LoadgenConfig) -> LoadgenReport:
    loop = asyncio.get_running_loop()
    clock = WallClock(seed=config.seed, loop=loop)
    metrics = MetricsCollector(warmup_ms=config.warmup_ms)
    workload_config = config.workload or WorkloadConfig(conflict_rate=config.conflict_rate)
    replica_ids = sorted(config.endpoints)
    failures: List[str] = []

    remotes: List[RemoteReplica] = []
    # Open-loop failover targets: one shared connection per replica, handed
    # to every client as its fallback set.  Command ids are globally unique,
    # so a shared connection routes each reply to the right callback.
    fallback_remotes: Dict[int, RemoteReplica] = {}
    if config.open_loop and len(replica_ids) > 1:
        for replica_id in replica_ids:
            host, port = config.endpoints[replica_id]
            fallback = RemoteReplica(replica_id, host, port,
                                     client_id=config.clients + replica_id)
            await fallback.connect()
            fallback_remotes[replica_id] = fallback
            remotes.append(fallback)
    pool = ClientPool()
    base_rng = DeterministicRandom(config.seed)
    for client_id in range(config.clients):
        replica_id = replica_ids[client_id % len(replica_ids)]
        host, port = config.endpoints[replica_id]
        remote = RemoteReplica(replica_id, host, port, client_id=client_id)
        await remote.connect()
        remotes.append(remote)
        # Same fork labels as the simulator harness: identical command
        # streams for identical seeds, which is what makes oracle
        # comparisons across substrates possible.
        workload = ConflictWorkload(client_id=client_id, origin=replica_id,
                                    config=workload_config,
                                    rng=base_rng.fork(f"client-{client_id}"))
        if config.open_loop:
            fallbacks = [fallback_remotes[other] for other in replica_ids
                         if other != replica_id and other in fallback_remotes]
            pool.add(OpenLoopClient(client_id, remote, workload, clock, metrics,
                                    rate_per_second=config.rate_per_client,
                                    rng=base_rng.fork(f"arrivals-{client_id}"),
                                    stop_after_ms=config.duration_ms,
                                    fallback_replicas=fallbacks))
        else:
            pool.add(ClosedLoopClient(client_id, remote, workload, clock, metrics,
                                      max_commands=config.commands_per_client))

    started_at = loop.time()
    deadline = started_at + config.timeout_s
    pool.start_all()
    if config.open_loop:
        await asyncio.sleep(config.duration_ms / 1000.0)
        pool.stop_all()
        # Let outstanding commands drain.
        while (loop.time() < deadline
               and any(remote.outstanding for remote in remotes)):
            await asyncio.sleep(0.05)
    else:
        # Shed commands consume their loop slot (the client moves on), so the
        # budget is met once every slot is answered — completed or rejected.
        expected = config.clients * config.commands_per_client
        while (loop.time() < deadline
               and pool.total_completed + pool.total_rejected < expected):
            await asyncio.sleep(0.05)
        answered = pool.total_completed + pool.total_rejected
        if answered < expected:
            failures.append(f"timeout: {answered}/{expected} commands "
                            f"answered within {config.timeout_s:.0f}s")
    wall_seconds = loop.time() - started_at
    submitted = (sum(client.submitted for client in pool.clients) if config.open_loop
                 else pool.total_completed + pool.total_rejected)
    completed = pool.total_completed
    rejected = pool.total_rejected
    for remote in remotes:
        await remote.close()

    per_replica = await _drain_and_collect(config, completed, failures)

    summary = metrics.summary()
    return LoadgenReport(
        submitted=submitted, completed=completed, rejected=rejected,
        wall_seconds=wall_seconds,
        mean_latency_ms=summary.mean if summary else None,
        p50_latency_ms=summary.median if summary else None,
        p99_latency_ms=summary.p99 if summary else None,
        p999_latency_ms=summary.p999 if summary else None,
        throughput_per_second=completed / wall_seconds if wall_seconds > 0 else 0.0,
        per_replica=per_replica, failures=failures)


async def _drain_and_collect(config: LoadgenConfig, completed: int,
                             failures: List[str]) -> Dict[int, Dict[str, object]]:
    """Wait until every replica executed every completed command; gather stats."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + config.drain_s
    per_replica: Dict[int, Dict[str, object]] = {}
    lagging = dict(config.endpoints)
    while lagging:
        for replica_id, (host, port) in list(lagging.items()):
            try:
                stats = await asyncio.to_thread(fetch_stats, host, port)
            except OSError as exc:
                stats = {"error": f"{type(exc).__name__}: {exc}"}
            per_replica[replica_id] = stats
            if stats.get("commands_executed", -1) >= completed:
                del lagging[replica_id]
        if not lagging or loop.time() >= deadline:
            break
        await asyncio.sleep(0.1)
    for replica_id in sorted(lagging):
        got = per_replica.get(replica_id, {})
        failures.append(
            f"replica {replica_id} executed {got.get('commands_executed', 'n/a')} "
            f"of {completed} commands within the {config.drain_s:.0f}s drain window"
            + (f" ({got['error']})" if "error" in got else ""))
    return per_replica
