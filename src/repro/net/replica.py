"""One consensus replica behind a TCP listener.

:class:`ReplicaServer` hosts exactly the replica objects the simulator
harness builds — same :data:`~repro.harness.cluster.PROTOCOLS` builders,
same kernel, same retransmission/catch-up machinery — wired to a
:class:`~repro.net.clock.WallClock` and an
:class:`~repro.net.transport.AsyncioTransport` instead of the discrete-event
substrate.  The server accepts three kinds of connections, told apart by the
mandatory :class:`~repro.net.wire.Hello` first frame:

* **replica** — inbound protocol traffic from a peer; every subsequent frame
  is decoded and dispatched into the kernel with the peer's id as ``src``;
* **client** — :class:`~repro.net.wire.ClientRequest` frames are submitted
  for ordering and answered with :class:`~repro.net.wire.ClientReply` on the
  same connection once the command executes;
* **control** — :class:`~repro.net.wire.StatsRequest` frames are answered
  with a JSON statistics snapshot (also honoured on client connections).

The CPU cost model defaults to :func:`~repro.sim.costs.zero_cost_model`:
over real sockets the process burns *actual* CPU, so simulating it on top
would double-count.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.consensus.quorums import QuorumSystem
from repro.net.clock import WallClock
from repro.net.framing import FrameDecoder, FramingError, encode_frame
from repro.net.transport import PeerNetwork, ReconnectPolicy
from repro.net.wire import (ROLE_CLIENT, ROLE_CONTROL, ROLE_NAMES, ROLE_REPLICA,
                            ClientReply, ClientRequest, Hello, StatsReply,
                            StatsRequest)
from repro.runtime.registry import WIRE
from repro.sim.costs import zero_cost_model


@dataclass
class ReplicaConfig:
    """Everything one replica process needs to join a cluster.

    Attributes:
        node_id: this replica's id (must be a key of ``peers``).
        peers: replica id -> ``(host, port)`` listen address for the whole
            cluster, this replica included.
        protocol: name in :data:`~repro.harness.cluster.PROTOCOLS`.
        seed: seed for the replica's deterministic RNG forks (same labels as
            the simulator, so stochastic choices match across substrates).
        retransmit: master switch for the kernel retransmission layer; keep
            it on — over TCP it is what recovers messages dropped while a
            peer was down.
        recovery: enable the protocol's recovery machinery (failure detector
            + recovery proposals), as ``--recovery`` does in the simulator.
        admission: admission-control spec guarding the client submit path
            (``"none"``, ``"inflight:K"``, ``"deadline:MS"``; ``None`` = no
            hook) — same policies the simulator harness installs.
        protocol_options: extra builder options, merged after the
            ``recovery`` translation (same semantics as the experiment
            harness).
    """

    node_id: int
    peers: Dict[int, Tuple[str, int]]
    protocol: str = "caesar"
    seed: int = 0
    retransmit: bool = True
    recovery: bool = False
    admission: Optional[str] = None
    protocol_options: Dict[str, object] = field(default_factory=dict)

    def protocol_builder_options(self) -> Dict[str, object]:
        """Translate generic settings into per-protocol builder options."""
        options = dict(self.protocol_options)
        if self.protocol == "caesar":
            if options.get("config") is None:
                from repro.core.caesar import CaesarConfig

                options["config"] = CaesarConfig(recovery_enabled=self.recovery)
        elif self.protocol in ("epaxos", "multipaxos"):
            options.setdefault("recovery_enabled", self.recovery)
        return options


class ReplicaServer:
    """A protocol replica listening on a TCP socket (see module docstring).

    Args:
        config: the replica's identity, peer map and protocol settings.
        server_socket: optional pre-bound listening socket (used by the
            in-process loopback harness to bind port 0 before peer maps are
            exchanged); when omitted the server binds the address from the
            peer map.
        reconnect: outbound dial/backoff policy override.
    """

    def __init__(self, config: ReplicaConfig, *, server_socket=None,
                 reconnect: Optional[ReconnectPolicy] = None) -> None:
        self.config = config
        self._server_socket = server_socket
        self._reconnect = reconnect
        self.clock: Optional[WallClock] = None
        self.network: Optional[PeerNetwork] = None
        self.replica = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._accepted: set = set()
        self._started = False
        self._closed = False

    async def start(self) -> None:
        """Build the replica and start listening + dialing (call once)."""
        if self._started:
            return
        self._started = True
        # Baseline protocol builders register themselves at import time.
        from repro.harness import protocols as _protocols  # noqa: F401
        from repro.harness.cluster import PROTOCOLS

        config = self.config
        if config.protocol not in PROTOCOLS:
            raise ValueError(f"unknown protocol {config.protocol!r}; "
                             f"known: {sorted(PROTOCOLS)}")
        loop = asyncio.get_running_loop()
        self.clock = WallClock(seed=config.seed, loop=loop)
        self.network = PeerNetwork(self.clock, config.node_id, config.peers,
                                   reconnect=self._reconnect)
        quorums = QuorumSystem.for_cluster(len(config.peers))
        builder = PROTOCOLS[config.protocol]
        self.replica = builder(config.node_id, self.clock, self.network, quorums,
                               config.protocol_builder_options(), zero_cost_model())
        if not config.retransmit:
            configure = getattr(self.replica, "configure_retransmit", None)
            if configure is not None:
                configure(enabled=False)
        if config.admission is not None:
            from repro.runtime.admission import admission_policy

            self.replica.admission = admission_policy(config.admission)
        if self._server_socket is not None:
            self._server = await asyncio.start_server(
                self._on_connection, sock=self._server_socket)
        else:
            host, port = config.peers[config.node_id]
            self._server = await asyncio.start_server(self._on_connection, host, port)
        self.replica.transport.start()
        self.replica.start()

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        """Serve one accepted connection until EOF / error."""
        decoder = FrameDecoder()
        hello: Optional[Hello] = None
        self._accepted.add(writer)
        try:
            while True:
                data = await reader.read(64 * 1024)
                if not data:
                    break
                for payload in decoder.feed(data):
                    message = WIRE.decode_one(payload)
                    if hello is None:
                        if not isinstance(message, Hello):
                            raise FramingError(
                                f"first frame must be Hello, got {type(message).__name__}")
                        hello = message
                        continue
                    self._dispatch(hello, message, writer)
        except (ConnectionError, FramingError, asyncio.IncompleteReadError,
                asyncio.CancelledError):
            pass
        finally:
            self._accepted.discard(writer)
            try:
                writer.close()
            except RuntimeError:
                pass

    def _dispatch(self, hello: Hello, message: object,
                  writer: asyncio.StreamWriter) -> None:
        """Route one decoded frame according to the connection's role."""
        if isinstance(message, StatsRequest):
            reply = StatsReply(sender=self.config.node_id,
                               payload=json.dumps(self.stats_payload(
                                   include_executed=bool(message.include_executed))))
            writer.write(encode_frame(WIRE.encode(reply)))
            return
        if hello.role == ROLE_REPLICA:
            self.network.deliver_local(hello.sender, message)
            return
        if hello.role == ROLE_CLIENT and isinstance(message, ClientRequest):
            self._submit(message.command, writer)
            return
        raise FramingError(f"unexpected {type(message).__name__} on a "
                           f"{ROLE_NAMES.get(hello.role, hello.role)} connection")

    def _submit(self, command, writer: asyncio.StreamWriter) -> None:
        """Submit a client command; answer on ``writer`` once executed."""

        def on_executed(result) -> None:
            if writer.is_closing():
                return
            reply = ClientReply(command_id=command.command_id, value=result.value,
                                rejected=int(result.rejected))
            try:
                writer.write(encode_frame(WIRE.encode(reply)))
            except (ConnectionError, RuntimeError):
                pass

        self.replica.submit(command, callback=on_executed)

    def stats_payload(self, include_executed: bool = False) -> Dict[str, object]:
        """Statistics snapshot mirroring the simulator harness report shapes."""
        replica = self.replica
        stats = self.network.stats
        payload: Dict[str, object] = {
            "node_id": self.config.node_id,
            "protocol": self.config.protocol,
            "uptime_ms": self.clock.now,
            "commands_executed": replica.commands_executed,
            "messages_handled": replica.messages_handled,
            "stats": dict(replica.stats.non_zero()),
            "admission": (replica.admission.stats.as_dict()
                          | {"policy": replica.admission.describe()}
                          if replica.admission is not None else None),
            "network": {
                "messages_sent": stats.messages_sent,
                "messages_delivered": stats.messages_delivered,
                "messages_dropped": stats.messages_dropped,
                "bytes_sent": stats.bytes_sent,
                "codec_bytes_sent": stats.codec_bytes_sent,
                "per_type_codec_bytes": dict(stats.per_type_codec_bytes),
            },
        }
        if include_executed:
            payload["executed"] = [list(c.command_id) for c in replica.execution_log]
        return payload

    @property
    def port(self) -> int:
        """The port the server is actually listening on (after :meth:`start`)."""
        return self._server.sockets[0].getsockname()[1]

    def crash(self) -> None:
        """Mark the hosted replica crashed (in-process fault injection)."""
        self.replica.crash()

    async def stop(self) -> None:
        """Stop listening, tear down peer connections (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._accepted):
            try:
                writer.close()
            except RuntimeError:
                pass
        self._accepted.clear()
        if self.replica is not None:
            self.replica.transport.close()


async def serve_replica(config: ReplicaConfig,
                        ready: Optional[Callable[[ReplicaServer], None]] = None,
                        stop_event: Optional[asyncio.Event] = None) -> None:
    """Run one replica until ``stop_event`` is set (or forever)."""
    server = ReplicaServer(config)
    await server.start()
    if ready is not None:
        ready(server)
    try:
        if stop_event is None:
            await asyncio.Event().wait()
        else:
            await stop_event.wait()
    finally:
        await server.stop()
