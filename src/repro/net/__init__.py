"""Real-network deployment mode: asyncio TCP transport for the protocols.

The :mod:`repro.net` package runs the *same* protocol code the simulator
runs — same kernels, same messages, same retransmission/catch-up layer —
over real sockets:

* :mod:`repro.net.framing` — length-prefixed frames with partial-read
  handling;
* :mod:`repro.net.wire` — the envelope messages (Hello / ClientRequest /
  ClientReply / StatsRequest / StatsReply), registered in the canonical
  codec;
* :mod:`repro.net.clock` — wall-clock implementation of the kernel's
  clock/timer API;
* :mod:`repro.net.transport` — the :class:`AsyncioTransport` backend of the
  Transport contract, with per-peer reconnect/backoff;
* :mod:`repro.net.replica` — one replica behind a TCP listener;
* :mod:`repro.net.client` — TCP clients reusing the workload drivers, and
  the ``repro loadgen`` engine;
* :mod:`repro.net.cluster` — the single-host multiprocess launcher behind
  ``repro serve``;
* :mod:`repro.net.loopback` — in-process localhost clusters + the simulator
  oracle used by the equivalence tests.
"""

from repro.net.client import (LoadgenConfig, LoadgenReport, RemoteReplica,
                              fetch_stats, run_loadgen)
from repro.net.clock import WallClock
from repro.net.cluster import (LocalCluster, ServeConfig, build_local_cluster,
                               parse_peers, serve_cluster)
from repro.net.framing import FrameDecoder, FramingError, encode_frame
from repro.net.replica import ReplicaConfig, ReplicaServer, serve_replica
from repro.net.transport import AsyncioTransport, PeerNetwork, ReconnectPolicy

__all__ = [
    "AsyncioTransport",
    "FrameDecoder",
    "FramingError",
    "LoadgenConfig",
    "LoadgenReport",
    "LocalCluster",
    "PeerNetwork",
    "ReconnectPolicy",
    "RemoteReplica",
    "ReplicaConfig",
    "ReplicaServer",
    "ServeConfig",
    "WallClock",
    "build_local_cluster",
    "encode_frame",
    "fetch_stats",
    "parse_peers",
    "run_loadgen",
    "serve_cluster",
    "serve_replica",
]
