"""In-process loopback cluster + simulator oracle for equivalence tests.

The loopback harness runs N :class:`~repro.net.replica.ReplicaServer`\\ s in
ONE event loop in ONE process, on real localhost TCP sockets (pre-bound to
port 0, so no fixed ports and no port races).  It exists for tests: real
framing, real partial reads, real asyncio scheduling — but fast to start,
easy to fault-inject (``crash`` flips the hosted replica in place) and with
direct access to every replica's execution log.

:func:`run_loopback` and :func:`run_sim_oracle` replay the *same* seeded
workload — identical RNG fork labels, identical client-to-replica
assignment — over sockets and in the discrete-event simulator respectively,
so their executed command sets must match exactly.  That is the oracle
equivalence the tier-1 suite checks for every protocol.
"""

from __future__ import annotations

import asyncio
import socket
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.metrics.collector import MetricsCollector
from repro.net.client import RemoteReplica
from repro.net.clock import WallClock
from repro.net.replica import ReplicaConfig, ReplicaServer
from repro.net.transport import ReconnectPolicy
from repro.sim.random import DeterministicRandom
from repro.workload.clients import ClientPool, ClosedLoopClient
from repro.workload.generator import ConflictWorkload, WorkloadConfig

#: Fast re-dial for single-host loops: crashes should heal in tens of ms.
LOOPBACK_RECONNECT = ReconnectPolicy(initial_ms=20.0, factor=1.5, max_ms=200.0,
                                     connect_timeout_s=2.0)


@dataclass
class ClusterRun:
    """Executed state of one cluster run (either substrate).

    ``executed`` maps replica id to its execution-log command ids in order;
    ``violations`` counts pairwise conflicting-order violations between all
    replica logs (must be 0 for a correct run).
    """

    protocol: str
    expected: int
    completed: int
    executed: Dict[int, List[Tuple[int, int]]] = field(default_factory=dict)
    violations: int = 0
    stats: Dict[int, Dict[str, object]] = field(default_factory=dict)

    @property
    def executed_sets(self) -> Dict[int, frozenset]:
        """Executed command ids per replica, as comparable sets."""
        return {node_id: frozenset(ids) for node_id, ids in self.executed.items()}


class LoopbackCluster:
    """N replica servers sharing one event loop over localhost TCP."""

    def __init__(self, protocol: str, replicas: int = 3, seed: int = 0,
                 recovery: bool = False) -> None:
        self.protocol = protocol
        self.seed = seed
        sockets = []
        for _ in range(replicas):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.bind(("127.0.0.1", 0))
            sockets.append(sock)
        self.peers = {i: ("127.0.0.1", sock.getsockname()[1])
                      for i, sock in enumerate(sockets)}
        self.servers: Dict[int, ReplicaServer] = {
            i: ReplicaServer(
                ReplicaConfig(node_id=i, peers=self.peers, protocol=protocol,
                              seed=seed, recovery=recovery),
                server_socket=sock, reconnect=LOOPBACK_RECONNECT)
            for i, sock in enumerate(sockets)}

    async def start(self) -> None:
        """Start every replica server."""
        for server in self.servers.values():
            await server.start()

    async def stop(self) -> None:
        """Stop every replica server."""
        for server in self.servers.values():
            await server.stop()

    def snapshot(self, completed: int) -> ClusterRun:
        """Capture executed logs + stats into a :class:`ClusterRun`."""
        run = ClusterRun(protocol=self.protocol, expected=completed, completed=completed)
        logs = {}
        for node_id, server in sorted(self.servers.items()):
            log = server.replica.execution_log
            logs[node_id] = log
            run.executed[node_id] = [c.command_id for c in log]
            run.stats[node_id] = server.stats_payload()
        run.violations = _pairwise_violations(logs)
        return run


def _pairwise_violations(logs: Dict[int, object]) -> int:
    """Total conflicting-order violations across all replica-log pairs."""
    ids = sorted(logs)
    return sum(len(logs[a].conflicting_order_violations(logs[b]))
               for i, a in enumerate(ids) for b in ids[i + 1:])


def run_loopback(protocol: str, replicas: int = 3, clients: int = 3,
                 commands_per_client: int = 8, conflict_rate: float = 0.3,
                 seed: int = 1, timeout_s: float = 30.0,
                 kill_replica: Optional[int] = None,
                 kill_after_commands: int = 0,
                 recovery: bool = False) -> ClusterRun:
    """Run a seeded closed-loop workload over localhost TCP (blocking).

    With ``kill_replica`` set, that replica is crashed (listener closed,
    outbound links torn down, node marked crashed) once the pool completes
    ``kill_after_commands`` commands — clients pinned to it reconnect via
    their timeout path, and the survivors must still finish the workload.
    Kill runs should also set ``recovery=True``: a command the dead replica
    was leading when it died stays undecided forever without the recovery
    protocol (retransmission is sender-side and catch-up only replays
    *decided* commands), and every later conflicting command would block
    behind it.
    """
    return asyncio.run(_run_loopback(protocol, replicas, clients,
                                     commands_per_client, conflict_rate, seed,
                                     timeout_s, kill_replica, kill_after_commands,
                                     recovery))


async def _run_loopback(protocol: str, replicas: int, clients: int,
                        commands_per_client: int, conflict_rate: float,
                        seed: int, timeout_s: float,
                        kill_replica: Optional[int],
                        kill_after_commands: int,
                        recovery: bool = False) -> ClusterRun:
    loop = asyncio.get_running_loop()
    cluster = LoopbackCluster(protocol, replicas=replicas, seed=seed,
                              recovery=recovery)
    await cluster.start()
    clock = WallClock(seed=seed, loop=loop)
    killed = False

    def _kill_now() -> None:
        nonlocal killed
        killed = True
        server = cluster.servers[kill_replica]
        server.crash()
        loop.create_task(server.stop())

    if kill_replica is not None:
        metrics: MetricsCollector = _KillAfter(kill_after_commands, _kill_now)
    else:
        metrics = MetricsCollector(warmup_ms=0.0)
    workload_config = WorkloadConfig(conflict_rate=conflict_rate)
    base_rng = DeterministicRandom(seed)
    replica_ids = sorted(cluster.peers)
    surviving_ids = [i for i in replica_ids if i != kill_replica]

    pool = ClientPool()
    remotes: List[RemoteReplica] = []
    try:
        for client_id in range(clients):
            replica_id = replica_ids[client_id % len(replica_ids)]
            host, port = cluster.peers[replica_id]
            remote = RemoteReplica(replica_id, host, port, client_id=client_id)
            await remote.connect()
            remotes.append(remote)
            workload = ConflictWorkload(client_id=client_id, origin=replica_id,
                                        config=workload_config,
                                        rng=base_rng.fork(f"client-{client_id}"))
            fallbacks = None
            reconnect_ms = None
            if kill_replica is not None:
                # Clients of the doomed replica fail over to a survivor.  The
                # retry timeout must exceed the leader's fast-proposal timeout
                # plus a slow round: a command proposed in the suspicion
                # window pays that full fallback latency, and abandoning it a
                # hair earlier discards the reply and restarts the cycle.
                fallbacks = [_Redialer(remotes, cluster, i) for i in surviving_ids]
                reconnect_ms = 3000.0
            pool.add(ClosedLoopClient(client_id, remote, workload, clock, metrics,
                                      max_commands=commands_per_client,
                                      reconnect_timeout_ms=reconnect_ms,
                                      fallback_replicas=fallbacks))

        expected = clients * commands_per_client
        deadline = loop.time() + timeout_s
        pool.start_all()
        while loop.time() < deadline:
            if pool.total_completed >= expected:
                break
            await asyncio.sleep(0.02)

        # Drain: every *live* replica must execute every completed command.
        live = surviving_ids if killed else replica_ids
        while loop.time() < deadline:
            if all(cluster.servers[i].replica.commands_executed >= pool.total_completed
                   for i in live):
                break
            await asyncio.sleep(0.02)

        run = ClusterRun(protocol=protocol, expected=expected,
                         completed=pool.total_completed)
        logs = {}
        for node_id in live:
            log = cluster.servers[node_id].replica.execution_log
            logs[node_id] = log
            run.executed[node_id] = [c.command_id for c in log]
            run.stats[node_id] = cluster.servers[node_id].stats_payload()
        run.violations = _pairwise_violations(logs)
        return run
    finally:
        for remote in remotes:
            await remote.close()
        await cluster.stop()


class _KillAfter(MetricsCollector):
    """Collector that fires a callback at the Nth completed command.

    Kill runs trigger the crash from the completion path itself rather than
    a polling loop: on fast hardware the whole workload can finish between
    two polls, which would quietly turn "kill mid-run" into "kill after the
    run".  Firing on the exact Nth record keeps the fault mid-workload on
    every machine.
    """

    def __init__(self, threshold: int, on_threshold, warmup_ms: float = 0.0) -> None:
        super().__init__(warmup_ms=warmup_ms)
        self._threshold = threshold
        self._on_threshold = on_threshold
        self._seen = 0
        self._fired = False

    def record_command(self, origin: int, proposer: int, latency_ms: float,
                       completed_at: float, key: str) -> None:
        super().record_command(origin=origin, proposer=proposer, latency_ms=latency_ms,
                               completed_at=completed_at, key=key)
        self._seen += 1
        if self._seen >= self._threshold and not self._fired:
            self._fired = True
            self._on_threshold()


class _Redialer:
    """Lazy fallback target: dials the survivor only if a client fails over."""

    def __init__(self, remotes: List[RemoteReplica], cluster: LoopbackCluster,
                 node_id: int) -> None:
        self._remotes = remotes
        self._cluster = cluster
        self.node_id = node_id
        self._remote: Optional[RemoteReplica] = None

    @property
    def crashed(self) -> bool:
        return self._remote.crashed if self._remote is not None else False

    def submit(self, command, callback=None) -> None:
        if self._remote is None or self._remote.crashed:
            host, port = self._cluster.peers[self.node_id]
            self._remote = RemoteReplica(self.node_id, host, port,
                                         client_id=1000 + self.node_id)
            self._remotes.append(self._remote)
            task = asyncio.get_running_loop().create_task(self._remote.connect())
            # Submit once the dial lands (commands are idempotent to retry
            # from the client's point of view: closed-loop re-submission).
            task.add_done_callback(
                lambda _t: self._remote.submit(command, callback))
            return
        self._remote.submit(command, callback)


def run_sim_oracle(protocol: str, replicas: int = 3, clients: int = 3,
                   commands_per_client: int = 8, conflict_rate: float = 0.3,
                   seed: int = 1, deadline_ms: float = 120_000.0) -> ClusterRun:
    """Replay the loopback workload in the discrete-event simulator.

    Same seed, same fork labels, same client-to-replica assignment as
    :func:`run_loopback` — the executed command sets of the two runs must be
    identical, which is exactly what the oracle tests assert.
    """
    from repro.harness.cluster import ClusterConfig, build_cluster
    from repro.sim.topology import lan_topology

    cluster = build_cluster(ClusterConfig(protocol=protocol,
                                          topology=lan_topology(replicas),
                                          seed=seed))
    metrics = MetricsCollector(warmup_ms=0.0)
    workload_config = WorkloadConfig(conflict_rate=conflict_rate)
    base_rng = DeterministicRandom(seed)
    pool = ClientPool()
    for client_id in range(clients):
        replica = cluster.replicas[client_id % len(cluster.replicas)]
        workload = ConflictWorkload(client_id=client_id, origin=replica.node_id,
                                    config=workload_config,
                                    rng=base_rng.fork(f"client-{client_id}"))
        pool.add(ClosedLoopClient(client_id, replica, workload, cluster.sim, metrics,
                                  max_commands=commands_per_client))

    expected = clients * commands_per_client
    for replica in cluster.replicas:
        replica.start()
    pool.start_all()
    cluster.sim.run_until(
        lambda: (pool.total_completed >= expected
                 and all(r.commands_executed >= expected for r in cluster.replicas)),
        deadline=deadline_ms)

    run = ClusterRun(protocol=protocol, expected=expected,
                     completed=pool.total_completed)
    logs = {}
    for replica in cluster.replicas:
        logs[replica.node_id] = replica.execution_log
        run.executed[replica.node_id] = [c.command_id for c in replica.execution_log]
    run.violations = _pairwise_violations(logs)
    return run
