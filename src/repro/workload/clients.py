"""Simulated clients driving the consensus replicas.

Two arrival models, matching the paper's methodology:

* :class:`ClosedLoopClient` — keeps exactly one command outstanding; used for
  the latency experiments ("we issued requests in a closed loop by placing 10
  clients co-located with each node").
* :class:`OpenLoopClient` — injects commands at a target rate regardless of
  completions; used for the throughput experiments.

Both record completed-command latencies into a shared
:class:`~repro.metrics.collector.MetricsCollector`, and both support
re-targeting to another replica when the original one crashes (the Figure 12
client-reconnection behaviour).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional

from repro.consensus.command import Command, CommandResult
from repro.consensus.interface import ConsensusReplica
from repro.metrics.collector import MetricsCollector
from repro.sim.random import DeterministicRandom
from repro.sim.simulator import Simulator
from repro.workload.generator import ConflictWorkload


class ClosedLoopClient:
    """A client that always has exactly one outstanding command.

    Args:
        client_id: unique id (also used in command ids).
        replica: replica the client submits to (its "local" site).
        workload: command generator for this client.
        sim: shared simulator.
        metrics: collector receiving per-command latency samples.
        think_time_ms: optional pause between completing one command and
            submitting the next (0 reproduces the paper's setup).
        reconnect_timeout_ms: if a command does not complete within this time
            (e.g. the replica crashed), the client re-submits a fresh command
            to another replica.
        fallback_replicas: replicas to reconnect to after a timeout.
        max_commands: stop after completing this many commands (``None`` =
            run until stopped).  Fixed budgets make runs comparable across
            substrates: the oracle tests replay the identical workload
            prefix in the simulator and over TCP.
        history: optional invocation/response tape
            (:class:`repro.chaos.history.HistoryTape`).  Every submission is
            taped as an invocation; a command abandoned after a reconnect
            timeout stays *pending* on the tape — the protocol may still
            execute it, and the linearizability checker accounts for that.
        rejection_backoff_ms: pause before resubmitting after an admission
            rejection.  Rejections are delivered in the same virtual instant
            as the submit, so retrying immediately would spin (and recurse)
            without ever letting the replica's queue drain.
    """

    rejection_backoff_ms = 1.0

    def __init__(self, client_id: int, replica: ConsensusReplica, workload: ConflictWorkload,
                 sim: Simulator, metrics: MetricsCollector, think_time_ms: float = 0.0,
                 reconnect_timeout_ms: Optional[float] = None,
                 fallback_replicas: Optional[List[ConsensusReplica]] = None,
                 history=None, max_commands: Optional[int] = None) -> None:
        self.client_id = client_id
        self.replica = replica
        self.workload = workload
        self.sim = sim
        self.metrics = metrics
        self.think_time_ms = think_time_ms
        self.reconnect_timeout_ms = reconnect_timeout_ms
        self.fallback_replicas = fallback_replicas or []
        self.history = history
        self.max_commands = max_commands
        self.completed = 0
        self.rejected = 0
        self.timeouts = 0
        self._running = False
        self._outstanding_seq: Optional[int] = None

    def start(self) -> None:
        """Begin the submit/complete loop."""
        self._running = True
        self._submit_next()

    def stop(self) -> None:
        """Stop after the current command completes."""
        self._running = False

    def _submit_next(self) -> None:
        if not self._running:
            return
        command = self.workload.next_command()
        if command.origin != self.replica.node_id:
            # The client reconnected to a different replica after a crash.
            command = dataclasses.replace(command, origin=self.replica.node_id)
        submitted_at = self.sim.now
        self._outstanding_seq = command.command_id[1]
        taped = (self.history.invoke(self.client_id, command.key, command.operation,
                                     command.value)
                 if self.history is not None else None)

        def on_result(result: CommandResult, cmd: Command = command,
                      started: float = submitted_at) -> None:
            if taped is not None:
                # The response is taped even after a reconnect replaced the
                # command: the client *observed* this output.
                self.history.respond(taped, result.value)
            if self._outstanding_seq != cmd.command_id[1]:
                return  # A reconnection already replaced this command.
            self._outstanding_seq = None
            if result.rejected:
                # Admission control shed the command; it still consumes the
                # loop slot (the client moves on) but is no latency sample.
                self.rejected += 1
            else:
                self.completed += 1
                self.metrics.record_command(origin=cmd.origin, proposer=self.replica.node_id,
                                            latency_ms=self.sim.now - started,
                                            completed_at=self.sim.now, key=cmd.key)
            if (self.max_commands is not None
                    and self.completed + self.rejected >= self.max_commands):
                self._running = False
                return
            if result.rejected:
                self.sim.schedule(max(self.think_time_ms, self.rejection_backoff_ms),
                                  self._submit_next)
            elif self.think_time_ms > 0:
                self.sim.schedule(self.think_time_ms, self._submit_next)
            else:
                self._submit_next()

        self.replica.submit(command, callback=on_result)
        if self.reconnect_timeout_ms is not None:
            sequence = command.command_id[1]
            self.sim.schedule(self.reconnect_timeout_ms,
                              lambda: self._maybe_reconnect(sequence))

    def _maybe_reconnect(self, sequence: int) -> None:
        """Re-target to a live replica when the outstanding command timed out."""
        if not self._running or self._outstanding_seq != sequence:
            return
        self.timeouts += 1
        self._outstanding_seq = None
        live = [replica for replica in self.fallback_replicas if not replica.crashed]
        if self.replica.crashed and live:
            self.replica = live[0]
        self._submit_next()


class OpenLoopClient:
    """A client injecting commands at a fixed average rate (Poisson arrivals).

    Args:
        client_id: unique id.
        replica: replica the client submits to.
        workload: command generator.
        sim: shared simulator.
        metrics: collector receiving latency samples.
        rate_per_second: average injection rate.
        rng: random stream for exponential inter-arrival times.
        stop_after_ms: stop injecting after this much virtual time (optional).
        fallback_replicas: replicas to fail over to when the current target
            crashes; like :class:`ClosedLoopClient`, the client rewrites
            ``command.origin`` after a retarget so per-origin latency stays
            attributed to the replica that actually served the command.
        history: optional invocation/response tape (see
            :class:`ClosedLoopClient`).
    """

    def __init__(self, client_id: int, replica: ConsensusReplica, workload: ConflictWorkload,
                 sim: Simulator, metrics: MetricsCollector, rate_per_second: float,
                 rng: DeterministicRandom, stop_after_ms: Optional[float] = None,
                 fallback_replicas: Optional[List[ConsensusReplica]] = None,
                 history=None) -> None:
        self.client_id = client_id
        self.replica = replica
        self.workload = workload
        self.sim = sim
        self.metrics = metrics
        self.rate_per_second = rate_per_second
        self.rng = rng
        self.stop_after_ms = stop_after_ms
        self.fallback_replicas = fallback_replicas or []
        self.history = history
        self.submitted = 0
        self.completed = 0
        self.rejected = 0
        self.retargets = 0
        self._running = False
        self._started_at = 0.0

    def start(self) -> None:
        """Begin injecting commands."""
        self._running = True
        self._started_at = self.sim.now
        self._schedule_next()

    def stop(self) -> None:
        """Stop injecting (outstanding commands still complete)."""
        self._running = False

    def _schedule_next(self) -> None:
        if not self._running:
            return
        rate_per_ms = self.rate_per_second / 1000.0
        delay = self.rng.expovariate(rate_per_ms) if rate_per_ms > 0 else float("inf")
        self.sim.schedule(delay, self._inject)

    def _inject(self) -> None:
        if not self._running:
            return
        if (self.stop_after_ms is not None
                and self.sim.now - self._started_at >= self.stop_after_ms):
            self._running = False
            return
        if self.replica.crashed:
            # Fail over instead of injecting into a dead replica forever
            # (the open-loop twin of ClosedLoopClient._maybe_reconnect).
            live = [replica for replica in self.fallback_replicas if not replica.crashed]
            if live:
                self.replica = live[0]
                self.retargets += 1
        command = self.workload.next_command()
        if command.origin != self.replica.node_id:
            # Rewrite the origin after a retarget so per-origin latency is
            # attributed to the replica that actually proposed the command.
            command = dataclasses.replace(command, origin=self.replica.node_id)
        submitted_at = self.sim.now
        self.submitted += 1
        proposer = self.replica.node_id
        taped = (self.history.invoke(self.client_id, command.key, command.operation,
                                     command.value)
                 if self.history is not None else None)

        def on_result(result: CommandResult, cmd: Command = command,
                      started: float = submitted_at) -> None:
            if taped is not None:
                self.history.respond(taped, result.value)
            if result.rejected:
                self.rejected += 1
                return
            self.completed += 1
            self.metrics.record_command(origin=cmd.origin, proposer=proposer,
                                        latency_ms=self.sim.now - started,
                                        completed_at=self.sim.now, key=cmd.key)

        self.replica.submit(command, callback=on_result)
        self._schedule_next()


@dataclass
class ClientPool:
    """A named collection of clients started and stopped together."""

    clients: List[object] = field(default_factory=list)

    def add(self, client) -> None:
        """Add a client to the pool."""
        self.clients.append(client)

    def start_all(self) -> None:
        """Start every client in the pool."""
        for client in self.clients:
            client.start()

    def stop_all(self) -> None:
        """Stop every client in the pool."""
        for client in self.clients:
            client.stop()

    @property
    def total_completed(self) -> int:
        """Total commands completed across the pool."""
        return sum(client.completed for client in self.clients)

    @property
    def total_rejected(self) -> int:
        """Total commands shed by admission control across the pool."""
        return sum(getattr(client, "rejected", 0) for client in self.clients)

    @property
    def total_submitted(self) -> int:
        """Total commands submitted (open-loop clients only track this)."""
        return sum(getattr(client, "submitted", client.completed)
                   for client in self.clients)
