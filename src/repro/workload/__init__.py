"""Workload generation: conflict-controlled key selection and client processes.

The paper's benchmark (Section VI) issues update commands against a
replicated key-value store.  A command is *conflicting* when its key is drawn
from a pool of 100 keys shared by every client; otherwise the key comes from
the client's private pool.  Closed-loop clients (one outstanding command
each) drive the latency experiments; open-loop clients (Poisson arrivals at a
target rate) drive the throughput experiments.
"""

from repro.workload.clients import ClientPool, ClosedLoopClient, OpenLoopClient
from repro.workload.generator import ConflictWorkload, WorkloadConfig

__all__ = [
    "ConflictWorkload",
    "WorkloadConfig",
    "ClosedLoopClient",
    "OpenLoopClient",
    "ClientPool",
]
