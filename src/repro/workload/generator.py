"""Conflict-controlled command generation.

Mirrors the paper's benchmark: "When the clients issue conflicting commands,
the key is picked from a shared pool of 100 keys with a certain probability
depending on the experiment.  As a result, by categorizing a workload with
10% of conflicting commands, we refer to the fact that 10% of the accessed
keys belong to the shared pool."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.consensus.command import Command
from repro.sim.random import DeterministicRandom


@dataclass
class WorkloadConfig:
    """Parameters of the conflict-controlled workload.

    Attributes:
        conflict_rate: probability that a command's key comes from the shared
            pool (0.0 – 1.0), i.e. the paper's "percentage of conflicting
            commands".
        shared_pool_size: number of keys in the shared pool (paper: 100).
        private_pool_size: number of keys in each client's private pool; keys
            from different clients' private pools never collide.  Keeping the
            pool small lets ownership-based protocols (M2Paxos) amortize their
            per-key acquisition cost, as in the paper's steady-state runs.
        payload_size: nominal command size in bytes (paper: 15).
        write_fraction: fraction of commands that are writes (the paper's
            benchmark only issues updates, hence the default of 1.0).
    """

    conflict_rate: float = 0.0
    shared_pool_size: int = 100
    private_pool_size: int = 20
    payload_size: int = 15
    write_fraction: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.conflict_rate <= 1.0:
            raise ValueError("conflict_rate must be within [0, 1]")
        if self.shared_pool_size <= 0 or self.private_pool_size <= 0:
            raise ValueError("key pools must be non-empty")


class ConflictWorkload:
    """Generates commands for one client with a controlled conflict rate.

    Args:
        client_id: globally unique client identifier; becomes the first
            element of every generated command id.
        origin: replica index the client is co-located with.
        config: workload parameters.
        rng: deterministic random stream for key/operation choices.
    """

    def __init__(self, client_id: int, origin: int, config: WorkloadConfig,
                 rng: DeterministicRandom) -> None:
        self.client_id = client_id
        self.origin = origin
        self.config = config
        self._rng = rng
        self._sequence = 0
        self.generated = 0
        self.conflicting_generated = 0

    def next_command(self) -> Command:
        """Generate the client's next command."""
        sequence = self._sequence
        self._sequence += 1
        self.generated += 1
        if self._rng.random() < self.config.conflict_rate:
            self.conflicting_generated += 1
            key = f"shared-{self._rng.randint(0, self.config.shared_pool_size - 1)}"
        else:
            key = (f"private-{self.client_id}-"
                   f"{self._rng.randint(0, self.config.private_pool_size - 1)}")
        if self._rng.random() < self.config.write_fraction:
            operation = "put"
            value = f"v{self.client_id}.{sequence}"
        else:
            operation = "get"
            value = None
        return Command(command_id=(self.client_id, sequence), key=key, operation=operation,
                       value=value, origin=self.origin, payload_size=self.config.payload_size)

    @property
    def observed_conflict_rate(self) -> float:
        """Fraction of generated commands whose key came from the shared pool."""
        if self.generated == 0:
            return 0.0
        return self.conflicting_generated / self.generated
