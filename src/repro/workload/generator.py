"""Conflict-controlled and skewed command generation.

:class:`ConflictWorkload` mirrors the paper's benchmark: "When the clients
issue conflicting commands, the key is picked from a shared pool of 100 keys
with a certain probability depending on the experiment.  As a result, by
categorizing a workload with 10% of conflicting commands, we refer to the
fact that 10% of the accessed keys belong to the shared pool."

:class:`ZipfWorkload` adds the skewed (hot-key) access pattern the sharding
study needs: keys ranked by popularity with Zipf exponent ``s``, so a few hot
keys absorb most of the traffic and the shards that own them see most of the
conflicts.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

from repro.consensus.command import Command
from repro.sim.random import DeterministicRandom


@dataclass
class WorkloadConfig:
    """Parameters of the conflict-controlled workload.

    Attributes:
        conflict_rate: probability that a command's key comes from the shared
            pool (0.0 – 1.0), i.e. the paper's "percentage of conflicting
            commands".
        shared_pool_size: number of keys in the shared pool (paper: 100).
        private_pool_size: number of keys in each client's private pool; keys
            from different clients' private pools never collide.  Keeping the
            pool small lets ownership-based protocols (M2Paxos) amortize their
            per-key acquisition cost, as in the paper's steady-state runs.
        payload_size: nominal command size in bytes (paper: 15).
        write_fraction: fraction of commands that are writes (the paper's
            benchmark only issues updates, hence the default of 1.0).
    """

    conflict_rate: float = 0.0
    shared_pool_size: int = 100
    private_pool_size: int = 20
    payload_size: int = 15
    write_fraction: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.conflict_rate <= 1.0:
            raise ValueError("conflict_rate must be within [0, 1]")
        if self.shared_pool_size <= 0 or self.private_pool_size <= 0:
            raise ValueError("key pools must be non-empty")


class ConflictWorkload:
    """Generates commands for one client with a controlled conflict rate.

    Args:
        client_id: globally unique client identifier; becomes the first
            element of every generated command id.
        origin: replica index the client is co-located with.
        config: workload parameters.
        rng: deterministic random stream for key/operation choices.
    """

    def __init__(self, client_id: int, origin: int, config: WorkloadConfig,
                 rng: DeterministicRandom) -> None:
        self.client_id = client_id
        self.origin = origin
        self.config = config
        self._rng = rng
        self._sequence = 0
        self.generated = 0
        self.conflicting_generated = 0

    def next_command(self) -> Command:
        """Generate the client's next command."""
        sequence = self._sequence
        self._sequence += 1
        self.generated += 1
        if self._rng.random() < self.config.conflict_rate:
            self.conflicting_generated += 1
            key = f"shared-{self._rng.randint(0, self.config.shared_pool_size - 1)}"
        else:
            key = (f"private-{self.client_id}-"
                   f"{self._rng.randint(0, self.config.private_pool_size - 1)}")
        if self._rng.random() < self.config.write_fraction:
            operation = "put"
            value = f"v{self.client_id}.{sequence}"
        else:
            operation = "get"
            value = None
        return Command(command_id=(self.client_id, sequence), key=key, operation=operation,
                       value=value, origin=self.origin, payload_size=self.config.payload_size)

    @property
    def observed_conflict_rate(self) -> float:
        """Fraction of generated commands whose key came from the shared pool."""
        if self.generated == 0:
            return 0.0
        return self.conflicting_generated / self.generated


@dataclass
class ZipfWorkloadConfig:
    """Parameters of the zipfian (skewed) workload.

    Every client draws keys from one shared ranked key space: key rank ``r``
    (0-based) is chosen with probability proportional to ``1 / (r + 1) ** s``.
    With ``s = 0`` the distribution is uniform over the key space; larger
    ``s`` concentrates traffic on the low ranks.

    Attributes:
        s: Zipf exponent (>= 0).
        key_space: number of distinct keys (ranks ``0 .. key_space - 1``).
        hot_keys: size of the hot-key pool; the lowest-ranked ``hot_keys``
            keys count as *hot* for reporting (``observed_hot_rate``).
        payload_size: nominal command size in bytes.
        write_fraction: fraction of commands that are writes.
    """

    s: float = 1.0
    key_space: int = 1000
    hot_keys: int = 10
    payload_size: int = 15
    write_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.s < 0:
            raise ValueError("zipf exponent s must be >= 0")
        if self.key_space <= 0:
            raise ValueError("key_space must be positive")
        if not 0 <= self.hot_keys <= self.key_space:
            raise ValueError("hot_keys must be within [0, key_space]")


#: Cached cumulative distributions keyed on ``(key_space, s)``: building the
#: CDF is O(key_space) and every client of a run shares the same one.
_ZIPF_CDF_CACHE: Dict[Tuple[int, float], List[float]] = {}


def _zipf_cdf(key_space: int, s: float) -> List[float]:
    cached = _ZIPF_CDF_CACHE.get((key_space, s))
    if cached is None:
        weights = [1.0 / (rank + 1) ** s for rank in range(key_space)]
        total = sum(weights)
        cdf: List[float] = []
        running = 0.0
        for weight in weights:
            running += weight
            cdf.append(running / total)
        cached = _ZIPF_CDF_CACHE[(key_space, s)] = cdf
    return cached


class ZipfWorkload:
    """Generates zipf-distributed commands for one client.

    Keys are named ``zipf-<rank>`` so the rank (and hence hotness) of any
    generated key can be recovered from its name.  The interface matches
    :class:`ConflictWorkload` (``next_command`` plus observed-rate
    properties), so clients accept either.
    """

    def __init__(self, client_id: int, origin: int, config: ZipfWorkloadConfig,
                 rng: DeterministicRandom) -> None:
        self.client_id = client_id
        self.origin = origin
        self.config = config
        self._rng = rng
        self._cdf = _zipf_cdf(config.key_space, config.s)
        self._sequence = 0
        self.generated = 0
        self.hot_generated = 0

    def next_command(self) -> Command:
        """Generate the client's next command."""
        sequence = self._sequence
        self._sequence += 1
        self.generated += 1
        rank = bisect.bisect_left(self._cdf, self._rng.random())
        rank = min(rank, self.config.key_space - 1)
        if rank < self.config.hot_keys:
            self.hot_generated += 1
        if self._rng.random() < self.config.write_fraction:
            operation = "put"
            value = f"v{self.client_id}.{sequence}"
        else:
            operation = "get"
            value = None
        return Command(command_id=(self.client_id, sequence), key=f"zipf-{rank}",
                       operation=operation, value=value, origin=self.origin,
                       payload_size=self.config.payload_size)

    @property
    def observed_hot_rate(self) -> float:
        """Fraction of generated commands that hit the hot-key pool."""
        if self.generated == 0:
            return 0.0
        return self.hot_generated / self.generated


#: Either workload configuration; :func:`build_workload` dispatches on type.
WorkloadSpec = Union[WorkloadConfig, ZipfWorkloadConfig]


def build_workload(client_id: int, origin: int, config: WorkloadSpec,
                   rng: DeterministicRandom):
    """Instantiate the workload matching the given configuration type."""
    if isinstance(config, ZipfWorkloadConfig):
        return ZipfWorkload(client_id=client_id, origin=origin, config=config, rng=rng)
    if isinstance(config, WorkloadConfig):
        return ConflictWorkload(client_id=client_id, origin=origin, config=config, rng=rng)
    raise TypeError(f"unsupported workload config: {type(config).__name__}")
