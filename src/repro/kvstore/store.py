"""In-memory key-value store used as the replicated state machine."""

from __future__ import annotations

from typing import Dict, Optional

from repro.consensus.command import Command
from repro.kvstore.state_machine import StateMachine


class KeyValueStore(StateMachine):
    """A deterministic dictionary-backed key-value store.

    ``put`` stores the command's value under its key and returns the previous
    value; ``get`` returns the current value; ``delete`` removes the key and
    returns the removed value.  Any unknown operation raises ``ValueError`` so
    that replicas never silently diverge on unsupported commands.
    """

    def __init__(self) -> None:
        self._data: Dict[str, str] = {}
        self.applied_count = 0

    def apply(self, command: Command) -> Optional[str]:
        """Apply one command; see class docstring for the operation semantics."""
        self.applied_count += 1
        if command.operation == "put":
            previous = self._data.get(command.key)
            self._data[command.key] = command.value if command.value is not None else ""
            return previous
        if command.operation == "get":
            return self._data.get(command.key)
        if command.operation == "delete":
            return self._data.pop(command.key, None)
        raise ValueError(f"unsupported operation: {command.operation!r}")

    def get(self, key: str) -> Optional[str]:
        """Read a key directly (outside consensus), for tests and examples."""
        return self._data.get(key)

    def __len__(self) -> int:
        return len(self._data)

    def snapshot(self) -> dict:
        """Copy of the whole store."""
        return dict(self._data)

    def reset(self) -> None:
        """Remove all keys."""
        self._data.clear()
        self.applied_count = 0
