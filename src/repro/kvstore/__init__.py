"""Replicated state machine substrate: a simple key-value store.

The paper's benchmark issues client commands that update keys of a fully
replicated key-value store; two commands conflict when they access the same
key.  :class:`~repro.kvstore.store.KeyValueStore` is that state machine, and
:class:`~repro.kvstore.state_machine.StateMachine` is the interface consensus
replicas program against (so other state machines can be plugged in).
"""

from repro.kvstore.state_machine import StateMachine
from repro.kvstore.store import KeyValueStore

__all__ = ["StateMachine", "KeyValueStore"]
