"""Sequential specification of the key-value store, per key.

The linearizability checker needs an executable model of what each operation
*should* return when applied to a register holding the key's current value.
This module states :class:`~repro.kvstore.store.KeyValueStore`'s semantics in
that per-key register form (``None`` models an absent key):

* ``put v``    — stores ``v`` (an absent argument stores ``""``), returns the
  previous value;
* ``get``      — returns the current value;
* ``delete``   — removes the key, returns the removed value.

``tests/test_chaos_checker.py`` pins the spec to the real store with a
property test, so the two can never drift apart silently.
"""

from __future__ import annotations

from typing import Optional, Tuple

#: Value of one key's register; ``None`` means the key is absent.
RegisterState = Optional[str]


def apply_op(state: RegisterState, operation: str,
             value: Optional[str] = None) -> Tuple[RegisterState, Optional[str]]:
    """Apply one operation to a key's register.

    Args:
        state: the register's current value (``None`` = absent).
        operation: ``"put"``, ``"get"`` or ``"delete"``.
        value: the argument written by a ``put``.

    Returns:
        ``(new_state, output)`` — the register after the operation and the
        value the operation returns to the client.
    """
    if operation == "put":
        return (value if value is not None else "", state)
    if operation == "get":
        return (state, state)
    if operation == "delete":
        return (None, state)
    raise ValueError(f"unsupported operation: {operation!r}")
