"""Abstract state machine applied by consensus replicas."""

from __future__ import annotations

from typing import Optional

from repro.consensus.command import Command


class StateMachine:
    """Interface for deterministic state machines driven by decided commands.

    Implementations must be deterministic: applying the same sequence of
    commands on two replicas must produce identical state and identical
    return values, otherwise replication is meaningless.
    """

    def apply(self, command: Command) -> Optional[str]:
        """Apply one command and return its result (visible to the client)."""
        raise NotImplementedError

    def snapshot(self) -> dict:
        """Return a serializable snapshot of the full state (for checks/tests)."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear all state (used when re-initialising a replica in tests)."""
        raise NotImplementedError
