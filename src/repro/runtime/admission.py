"""Pluggable admission control at the replica submit path.

Past the saturation knee an open-loop workload grows the replica's inflight
set without bound, and every queueing model says the same thing happens to
latency.  Admission control bounds that queue: a policy inspects each client
submission *before* the protocol sees it and either admits it or sheds it
with an immediate rejection, trading a little goodput for a bounded tail.

The policies are substrate-neutral — the same objects guard
:meth:`repro.consensus.interface.ConsensusReplica.submit` on the simulator
and :meth:`repro.net.replica.ReplicaServer._submit` over TCP — because they
only ever see ``(command_id, now)`` pairs:

* :class:`NoAdmission` — admit everything; the counting baseline.
* :class:`InflightLimit` — reject when the replica already has
  ``max_inflight`` commands admitted but not yet executed (classic
  bounded-queue backpressure).
* :class:`QueueDeadline` — shed arrivals while the *oldest* inflight
  command has been queued longer than ``deadline_ms``: once the head of the
  queue has already blown the deadline, a newly enqueued command is doomed
  to miss it too, so rejecting it early is strictly kinder than serving it
  late.

Policies are configured by spec string (``none``, ``inflight:64``,
``deadline:250``) so they travel through CLI flags, ``ServeConfig`` and the
multiprocess replica launcher unchanged.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: ``(client_id, sequence)`` — mirrors :data:`repro.consensus.command.CommandId`
#: without importing the consensus layer into the runtime.
CommandKey = Tuple[int, int]


@dataclass
class AdmissionStats:
    """Counters one policy accumulates over a run."""

    admitted: int = 0
    rejected: int = 0
    #: rejections attributed to the inflight bound
    rejected_inflight: int = 0
    #: rejections attributed to queue-deadline shedding
    shed_deadline: int = 0
    #: highest simultaneous inflight count observed
    max_inflight: int = 0

    def as_dict(self) -> Dict[str, int]:
        """JSON-friendly snapshot (stats endpoints, results store)."""
        return {"admitted": self.admitted, "rejected": self.rejected,
                "rejected_inflight": self.rejected_inflight,
                "shed_deadline": self.shed_deadline,
                "max_inflight": self.max_inflight}


class AdmissionPolicy:
    """Base class: tracks the inflight set and the per-policy counters.

    Subclasses override :meth:`_check` to veto a submission; the bookkeeping
    (inflight tracking, counters) is shared.  ``try_admit`` returns ``None``
    to admit or a short reason string for the rejection, and ``release``
    must be called when an admitted command finishes (executes at the
    proposer) — unknown ids are ignored, so callers may release on every
    execution without filtering.
    """

    #: spec name, overridden by subclasses.
    name = "abstract"

    def __init__(self) -> None:
        self.stats = AdmissionStats()
        #: admission time per inflight command, insertion-ordered — the
        #: first entry is always the oldest admitted command still pending.
        self._inflight: "OrderedDict[CommandKey, float]" = OrderedDict()

    @property
    def inflight(self) -> int:
        """Commands admitted here and not yet released."""
        return len(self._inflight)

    def oldest_age_ms(self, now: float) -> float:
        """Age of the oldest inflight command (0 when the queue is empty)."""
        if not self._inflight:
            return 0.0
        return now - next(iter(self._inflight.values()))

    def try_admit(self, command_id: CommandKey, now: float) -> Optional[str]:
        """Admit or reject one submission; returns a rejection reason or ``None``."""
        reason = self._check(now)
        if reason is not None:
            self.stats.rejected += 1
            return reason
        self.stats.admitted += 1
        self._inflight[command_id] = now
        if len(self._inflight) > self.stats.max_inflight:
            self.stats.max_inflight = len(self._inflight)
        return None

    def release(self, command_id: CommandKey, now: float) -> None:
        """Mark an admitted command finished (no-op for unknown ids)."""
        self._inflight.pop(command_id, None)

    def _check(self, now: float) -> Optional[str]:
        """Subclass hook: return a rejection reason, or ``None`` to admit."""
        raise NotImplementedError

    def describe(self) -> str:
        """The spec string that would rebuild this policy."""
        return self.name


class NoAdmission(AdmissionPolicy):
    """Admit everything; exists so baselines still count inflight/admitted."""

    name = "none"

    def _check(self, now: float) -> Optional[str]:
        return None


class InflightLimit(AdmissionPolicy):
    """Reject submissions once ``max_inflight`` commands are outstanding."""

    name = "inflight"

    def __init__(self, max_inflight: int = 64) -> None:
        super().__init__()
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.limit = max_inflight

    def _check(self, now: float) -> Optional[str]:
        if len(self._inflight) >= self.limit:
            self.stats.rejected_inflight += 1
            return f"inflight limit {self.limit} reached"
        return None

    def describe(self) -> str:
        return f"inflight:{self.limit}"


class QueueDeadline(AdmissionPolicy):
    """Shed arrivals while the oldest queued command exceeds ``deadline_ms``."""

    name = "deadline"

    def __init__(self, deadline_ms: float = 500.0) -> None:
        super().__init__()
        if deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive")
        self.deadline_ms = deadline_ms

    def _check(self, now: float) -> Optional[str]:
        if self._inflight and self.oldest_age_ms(now) > self.deadline_ms:
            self.stats.shed_deadline += 1
            return f"queue older than {self.deadline_ms:.0f}ms deadline"
        return None

    def describe(self) -> str:
        return f"deadline:{self.deadline_ms:g}"


#: Registered policy constructors, keyed by spec name.
POLICIES = {
    NoAdmission.name: NoAdmission,
    InflightLimit.name: InflightLimit,
    QueueDeadline.name: QueueDeadline,
}


def admission_policy(spec: Optional[str]) -> Optional[AdmissionPolicy]:
    """Build a policy from its spec string.

    ``None`` and ``""`` mean "no admission hook at all" (zero overhead on
    the submit path); ``"none"`` installs the counting no-op baseline;
    ``"inflight:K"`` and ``"deadline:MS"`` build the bounded policies with
    their parameter (``inflight`` / ``deadline`` alone use the defaults).
    """
    if spec is None or spec == "":
        return None
    name, _, parameter = spec.partition(":")
    name = name.strip().lower()
    if name not in POLICIES:
        raise ValueError(f"unknown admission policy {spec!r}; "
                         f"known: {sorted(POLICIES)}")
    if name == NoAdmission.name:
        if parameter:
            raise ValueError(f"admission policy 'none' takes no parameter, got {spec!r}")
        return NoAdmission()
    if not parameter:
        return POLICIES[name]()
    try:
        if name == InflightLimit.name:
            return InflightLimit(max_inflight=int(parameter))
        return QueueDeadline(deadline_ms=float(parameter))
    except ValueError as exc:
        raise ValueError(f"bad admission policy parameter in {spec!r}: {exc}") from None


@dataclass
class AdmissionSnapshot:
    """Aggregated admission counters across a cluster's replicas."""

    policy: str = ""
    stats: AdmissionStats = field(default_factory=AdmissionStats)

    def as_dict(self) -> Dict[str, object]:
        return {"policy": self.policy, **self.stats.as_dict()}


def aggregate_admission(policies) -> Optional[AdmissionSnapshot]:
    """Sum the counters of several replicas' policies (``None`` if none set)."""
    present = [policy for policy in policies if policy is not None]
    if not present:
        return None
    snapshot = AdmissionSnapshot(policy=present[0].describe())
    for policy in present:
        snapshot.stats.admitted += policy.stats.admitted
        snapshot.stats.rejected += policy.stats.rejected
        snapshot.stats.rejected_inflight += policy.stats.rejected_inflight
        snapshot.stats.shed_deadline += policy.stats.shed_deadline
        snapshot.stats.max_inflight = max(snapshot.stats.max_inflight,
                                          policy.stats.max_inflight)
    return snapshot
