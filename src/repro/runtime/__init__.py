"""Protocol-runtime kernel shared by every replica implementation.

The :mod:`repro.runtime` package is the common substrate the five protocols
(CAESAR, EPaxos, M2Paxos, Mencius, Multi-Paxos) run on:

* :mod:`repro.runtime.codec` — composable field codecs producing a compact,
  deterministic byte encoding for every wire value;
* :mod:`repro.runtime.registry` — the declarative message registry: each
  slotted message type is registered once with per-field codecs, which gives
  every protocol exact-type dispatch and byte-accurate wire accounting;
* :mod:`repro.runtime.fields` — shared field codecs for the consensus value
  types (commands, ballots, logical timestamps);
* :mod:`repro.runtime.kernel` — :class:`~repro.runtime.kernel.ProtocolKernel`,
  the replica base class providing declarative message dispatch
  (:func:`~repro.runtime.kernel.handles`), quorum trackers, ballot registers
  and failure-detector scaffolding;
* :mod:`repro.runtime.transport` — the :class:`~repro.runtime.transport.Transport`
  interface decoupling replicas from the simulated network, with the
  simulator-backed transport (including transport-level batching) as the
  first backend;
* :mod:`repro.runtime.stats` — the unified per-replica
  :class:`~repro.runtime.stats.ProtocolStats` record.

Adding a new protocol means: declare its messages with
:func:`~repro.runtime.registry.register_message`, subclass ``ProtocolKernel``,
mark handlers with ``@handles(MessageType)``, and register a builder with the
harness — the kernel supplies dispatch, stats, quorum tracking, timers,
transport and failure detection.  See README.md for a worked example.
"""

from repro.runtime.registry import WIRE, MessageRegistry, register_message
from repro.runtime.stats import ProtocolStats
from repro.runtime.transport import SimulatorTransport, Transport

#: Kernel names are re-exported lazily: the kernel depends on the replica
#: interface, which depends on the simulated node, which imports the
#: transport from this package — an eager import here would close that loop.
_KERNEL_EXPORTS = ("BallotRegister", "ProtocolKernel", "QuorumTracker", "handles")


def __getattr__(name: str):
    if name in _KERNEL_EXPORTS:
        from repro.runtime import kernel

        return getattr(kernel, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BallotRegister",
    "MessageRegistry",
    "ProtocolKernel",
    "ProtocolStats",
    "QuorumTracker",
    "SimulatorTransport",
    "Transport",
    "WIRE",
    "handles",
    "register_message",
]
