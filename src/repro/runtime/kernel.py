"""The protocol-runtime kernel every replica runs on.

:class:`ProtocolKernel` extends the bare
:class:`~repro.consensus.interface.ConsensusReplica` (state machine, decision
records, execution log) with the plumbing the five protocols used to
hand-roll independently:

* **declarative message dispatch** — handlers are marked with
  ``@handles(MessageType)`` and collected per class; the kernel's uniform
  :meth:`ProtocolKernel.handle_message` performs the exact-type lookup, so no
  replica defines its own dispatch table;
* **failure-detector scaffolding** — replicas declare their detector once
  with :meth:`ProtocolKernel.use_failure_detector`; the kernel starts it,
  feeds it heartbeats and counts every message as liveness evidence;
* **quorum trackers** (:class:`QuorumTracker`) — insertion-ordered vote
  collection with a threshold, replacing the per-protocol reply dicts and
  ack sets;
* **ballot registers** (:class:`BallotRegister`) — highest-joined-ballot
  bookkeeping per command;
* **unified statistics** — every replica carries one
  :class:`~repro.runtime.stats.ProtocolStats` record;
* **retransmission** (:class:`RetransmitBuffer`) — quorum-pending broadcasts
  are re-sent to non-voters on a capped-exponential-backoff timer until the
  quorum is reached or the round is superseded, so probabilistic message
  loss costs latency instead of liveness;
* **catch-up** (:class:`CatchUpRequest` / :class:`CatchUpReply`) — a replica
  whose execution has a persistent gap (restarted, or partitioned while
  decisions happened elsewhere) asks its peers to replay the decided
  messages it is missing; protocols describe the gap via
  :meth:`ProtocolKernel.catchup_need` and answer via
  :meth:`ProtocolKernel.catchup_supply`.

Both layers are **byte-neutral on loss-free runs**: the retransmission scan
defers while a quorum is still gathering votes (and while the CPU is
backlogged), and the catch-up probe only fires when execution has been
*stuck on the same gap* for a full check interval — neither happens when
every message arrives.  The jittered backoff draws from a dedicated RNG
fork only when a resend actually happens, so clean runs consume no extra
randomness.

Protocol subclasses implement only their actual protocol logic: the
``propose`` entry point and one ``@handles``-marked method per message type.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple, Type

from repro.consensus.ballots import Ballot
from repro.consensus.interface import ConsensusReplica
from repro.consensus.quorums import QuorumSystem
from repro.kvstore.state_machine import StateMachine
from repro.runtime.codec import STRING, UINT, SeqCodec
from repro.runtime.registry import MessageCodec, register_message
from repro.runtime.stats import ProtocolStats
from repro.sim.costs import CostModel
from repro.sim.failures import FailureDetector, Heartbeat
from repro.sim.network import Network
from repro.sim.node import Timer
from repro.sim.simulator import Simulator

#: Function attribute carrying the message classes a method handles.
_HANDLES_ATTR = "_kernel_handles"


def handles(message_cls: Type):
    """Mark a kernel method as the handler for ``message_cls``.

    The kernel collects marked methods per class (subclasses may override a
    base handler by re-marking a method for the same message type) and builds
    the exact-type dispatch used by :meth:`ProtocolKernel.handle_message`.
    """

    def mark(fn: Callable) -> Callable:
        setattr(fn, _HANDLES_ATTR, getattr(fn, _HANDLES_ATTR, ()) + (message_cls,))
        return fn

    return mark


class QuorumTracker:
    """Insertion-ordered vote collector with a fixed threshold.

    Args:
        threshold: votes (including ``extra_votes``) needed for the quorum.
        extra_votes: votes counted implicitly (typically the collector's own
            vote when it does not message itself).
    """

    __slots__ = ("threshold", "extra_votes", "_votes")

    def __init__(self, threshold: int, extra_votes: int = 0) -> None:
        self.threshold = threshold
        self.extra_votes = extra_votes
        self._votes: Dict[int, object] = {}

    @classmethod
    def unreachable(cls) -> "QuorumTracker":
        """A tracker that can never become quorate.

        Used as the dataclass default for vote-collecting state: a
        construction site that forgets to pass a real tracker then stalls
        loudly (nothing ever reaches quorum) instead of silently treating
        zero votes as a quorum.
        """
        return cls(threshold=float("inf"))

    def vote(self, src: int, payload: object = True) -> bool:
        """Record ``src``'s vote (replacing any earlier one); True once quorate."""
        self._votes[src] = payload
        return len(self._votes) + self.extra_votes >= self.threshold

    @property
    def count(self) -> int:
        """Votes recorded so far, including the implicit extra votes."""
        return len(self._votes) + self.extra_votes

    @property
    def reached(self) -> bool:
        """Whether the threshold has been met."""
        return len(self._votes) + self.extra_votes >= self.threshold

    def payloads(self) -> List[object]:
        """Recorded vote payloads, in arrival order (implicit votes excluded)."""
        return list(self._votes.values())

    def voters(self) -> List[int]:
        """Voter ids, in arrival order."""
        return list(self._votes)

    def get(self, src: int) -> Optional[object]:
        """The payload ``src`` voted with, or ``None``."""
        return self._votes.get(src)


class BallotRegister(dict):
    """Highest joined ballot per command (CAESAR-style ballot bookkeeping).

    A plain ``dict`` of ``key -> Ballot`` (so reads and writes on the message
    hot path stay native-speed) extended with the two ballot decision rules.
    """

    def allows(self, key, ballot: Ballot) -> bool:
        """Whether a message at ``ballot`` may be processed for ``key``."""
        current = self.get(key)
        return current is None or ballot >= current

    def observe(self, key, ballot: Ballot) -> None:
        """Adopt ``ballot`` if it is at least as high as the current one."""
        current = self.get(key)
        if current is None or ballot >= current:
            self[key] = ballot


@dataclass(frozen=True)
class RetransmitPolicy:
    """Tuning knobs for the kernel's retransmission and catch-up layer.

    The defaults are deliberately conservative relative to clean-run quorum
    latencies (a wide-area quorum gathers in ~300 ms): the first resend only
    happens after ``initial_timeout_ms`` with *no* new votes, so loss-free
    runs never retransmit and their metric series stay byte-identical.

    Attributes:
        enabled: master switch; disabling restores the PR-5 behaviour
            (safe-but-not-live under message loss).
        scan_every_ms: how often the buffer looks for overdue rounds (armed
            lazily — no pending rounds, no timer).
        initial_timeout_ms: quiet time before the first resend of a round.
        backoff_factor: per-attempt timeout multiplier (capped below).
        max_timeout_ms: backoff ceiling.
        jitter_ms: uniform jitter added to each backoff deadline, drawn from
            a dedicated RNG fork only when a resend actually happened.
        max_attempts: resend budget per round before the buffer gives up
            (recovery / catch-up then owns the round's fate).
        backlog_defer_ms: if the node's CPU backlog exceeds this, the scan
            (and the catch-up probe) defers wholesale — votes are queued,
            not lost.
        catchup_check_ms: quiet time before a noted execution gap triggers a
            :class:`CatchUpRequest` (also the re-check interval).
        catchup_backoff_factor: per-attempt catch-up interval multiplier.
        catchup_max_interval_ms: catch-up backoff ceiling.
        catchup_max_attempts: catch-up probes per unchanged gap signature.
        catchup_reply_limit: max replayed messages per reply.
    """

    enabled: bool = True
    scan_every_ms: float = 250.0
    initial_timeout_ms: float = 1500.0
    backoff_factor: float = 2.0
    max_timeout_ms: float = 6000.0
    jitter_ms: float = 50.0
    max_attempts: int = 12
    backlog_defer_ms: float = 200.0
    catchup_check_ms: float = 600.0
    catchup_backoff_factor: float = 2.0
    catchup_max_interval_ms: float = 4800.0
    catchup_max_attempts: int = 10
    catchup_reply_limit: int = 128


@register_message(sender=UINT, cursor=UINT, want=SeqCodec(STRING))
@dataclass(frozen=True, slots=True)
class CatchUpRequest:
    """Ask peers to replay decided state this replica is missing.

    ``cursor`` is a protocol-defined low-water mark (e.g. the next
    unexecuted slot); ``want`` is an optional list of protocol-defined
    tokens naming specific missing items (e.g. EPaxos instance ids).
    """

    sender: int
    cursor: int
    want: Tuple[str, ...] = ()


@register_message(sender=UINT, messages=SeqCodec(MessageCodec()))
@dataclass(frozen=True, slots=True)
class CatchUpReply:
    """Replayed decided messages; each is re-dispatched through the normal
    handler path at the receiver (decided-message handlers are idempotent)."""

    sender: int
    messages: Tuple = ()


class _RetransmitEntry:
    """One quorum-pending broadcast round tracked by the buffer."""

    __slots__ = ("message", "size_bytes", "tracker", "done", "voters",
                 "deadline", "timeout", "attempts", "last_count")

    def __init__(self, message: object, size_bytes: int,
                 tracker: Optional[QuorumTracker],
                 done: Optional[Callable[[], bool]],
                 voters: Optional[Callable[[], List[int]]],
                 now: float, timeout: float) -> None:
        self.message = message
        self.size_bytes = size_bytes
        self.tracker = tracker
        self.done = done
        self.voters = voters
        self.timeout = timeout
        self.deadline = now + timeout
        self.attempts = 0
        self.last_count = tracker.count if tracker is not None else 0


class RetransmitBuffer:
    """Re-sends quorum-pending broadcasts until acked or superseded.

    A protocol :meth:`track`\\ s a round when it broadcasts a message that
    gathers votes in a :class:`QuorumTracker`; the buffer periodically scans
    for rounds that have been quiet past their deadline and re-sends the
    message to every peer that has not voted yet, with capped exponential
    backoff.  Rounds resolve themselves (tracker quorate / ``done``
    predicate) or are resolved explicitly when superseded.

    The scan timer is armed lazily — an empty buffer schedules nothing, so
    a finished run drains and the simulator's event queue empties.
    """

    def __init__(self, kernel: "ProtocolKernel", policy: RetransmitPolicy) -> None:
        self.kernel = kernel
        self.policy = policy
        self._entries: Dict[object, _RetransmitEntry] = {}
        self._timer: Optional[Timer] = None
        #: jitter stream, forked per node; drawn from only on actual resends
        #: so loss-free runs consume no randomness from it.
        self._jitter = kernel.sim.rng.fork(f"retransmit-{kernel.node_id}")

    def __len__(self) -> int:
        return len(self._entries)

    def track(self, key: object, message: object, *, size_bytes: int = 64,
              tracker: Optional[QuorumTracker] = None,
              done: Optional[Callable[[], bool]] = None,
              voters: Optional[Callable[[], List[int]]] = None) -> None:
        """Start (or supersede) the pending round ``key``.

        Args:
            key: protocol-chosen identity of the round; re-tracking the same
                key replaces the previous message (slow path supersedes fast
                path).
            message: the broadcast to re-send while the round is pending.
            size_bytes: wire size charged per resend.
            tracker: the round's vote collector; by default the round
                resolves once it is quorate and voters are skipped on
                resend.
            done: overrides the tracker's ``reached`` as the resolution
                predicate (e.g. committed flags that outlive the tracker).
            voters: overrides the tracker's voter list as the skip set.
        """
        if not self.policy.enabled:
            return
        self._entries[key] = _RetransmitEntry(
            message, size_bytes, tracker, done, voters,
            self.kernel.sim.now, self.policy.initial_timeout_ms)
        self._arm()

    def resolve(self, key: object) -> None:
        """Drop the pending round ``key`` (decided, superseded, or aborted)."""
        self._entries.pop(key, None)

    def clear(self) -> None:
        """Drop every pending round and stop the scan timer."""
        self._entries.clear()
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def rearm_after_restart(self) -> None:
        """Re-establish the scan chain after a crash/restart cycle.

        A timer armed before the crash either fired while crashed (silently
        skipped) or is still scheduled; cancelling it and re-arming keeps
        exactly one scan chain alive.
        """
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._arm()

    # ------------------------------------------------------------- internals

    def _arm(self) -> None:
        if self._timer is None and self._entries:
            self._timer = self.kernel.set_timer(self.policy.scan_every_ms, self._scan)

    @staticmethod
    def _is_done(entry: _RetransmitEntry) -> bool:
        if entry.done is not None:
            return entry.done()
        return entry.tracker.reached if entry.tracker is not None else False

    @staticmethod
    def _count(entry: _RetransmitEntry) -> int:
        return entry.tracker.count if entry.tracker is not None else 0

    @staticmethod
    def _voters(entry: _RetransmitEntry) -> List[int]:
        if entry.voters is not None:
            return entry.voters()
        return entry.tracker.voters() if entry.tracker is not None else []

    def _scan(self) -> None:
        self._timer = None
        if not self._entries:
            return
        kernel = self.kernel
        policy = self.policy
        if kernel.cpu_backlog_ms > policy.backlog_defer_ms:
            # Votes may simply be queued behind CPU work; resending now
            # would be noise (and would perturb saturated loss-free runs).
            self._arm()
            return
        now = kernel.sim.now
        for key in list(self._entries):
            entry = self._entries[key]
            if self._is_done(entry):
                del self._entries[key]
                continue
            if now < entry.deadline:
                continue
            count = self._count(entry)
            if count > entry.last_count:
                # The round is making progress — push the deadline out
                # instead of resending.
                entry.last_count = count
                entry.deadline = now + entry.timeout
                continue
            entry.attempts += 1
            if entry.attempts > policy.max_attempts:
                del self._entries[key]
                continue
            skip = set(self._voters(entry))
            skip.add(kernel.node_id)
            for dst in kernel.network.node_ids:
                if dst in skip:
                    continue
                kernel.send(dst, entry.message, size_bytes=entry.size_bytes)
                kernel.stats.retransmissions_sent += 1
            entry.timeout = min(entry.timeout * policy.backoff_factor,
                                policy.max_timeout_ms)
            entry.deadline = now + entry.timeout + self._jitter.uniform(
                0.0, policy.jitter_ms)
        self._arm()


class ProtocolKernel(ConsensusReplica):
    """Base class for protocol replicas running on the runtime kernel.

    Subclasses mark message handlers with :func:`handles`; the kernel builds
    the dispatch, owns the unified stats record, and runs the (optional)
    failure detector declared via :meth:`use_failure_detector`.
    """

    #: per-class map ``message class -> handler method name`` (built once).
    _handler_specs: Dict[Type, str] = {}

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        specs: Dict[Type, str] = {}
        for base in reversed(cls.__mro__):
            for name, attr in vars(base).items():
                for message_cls in getattr(attr, _HANDLES_ATTR, ()):
                    specs[message_cls] = name
        cls._handler_specs = specs

    def __init__(self, node_id: int, sim: Simulator, network: Network, quorums: QuorumSystem,
                 state_machine: StateMachine, cost_model: Optional[CostModel] = None) -> None:
        super().__init__(node_id, sim, network, quorums, state_machine, cost_model)
        self.stats = ProtocolStats()
        self.failure_detector: Optional[FailureDetector] = None
        self._fd_setup: Optional[Dict[str, object]] = None
        self.retransmit = RetransmitBuffer(self, RetransmitPolicy())
        self._catchup_timer: Optional[Timer] = None
        self._catchup_attempts = 0
        self._catchup_signature: Optional[tuple] = None
        #: bound-method dispatch table (exact type -> handler), built once per
        #: instance so the hot path is a dict lookup plus a call.
        self._dispatch = {message_cls: getattr(self, name)
                          for message_cls, name in type(self)._handler_specs.items()}

    # ------------------------------------------------------ message dispatch

    def handle_message(self, src: int, message: object) -> None:
        """Uniform dispatch path: liveness evidence, then the exact-type handler."""
        if self.failure_detector is not None:
            self.failure_detector.observe_any_message(src)
        handler = self._dispatch.get(type(message))
        if handler is None:
            raise TypeError(f"unexpected message type {type(message).__name__}")
        handler(src, message)

    @handles(Heartbeat)
    def _on_heartbeat(self, src: int, message: Heartbeat) -> None:
        """Feed a heartbeat to the failure detector (no-op when disabled)."""
        if self.failure_detector is not None:
            self.failure_detector.observe_heartbeat(message)

    # ----------------------------------------------------- failure detection

    def use_failure_detector(self, heartbeat_every_ms: float, suspect_after_ms: float,
                             on_suspect: Callable[[int], None]) -> None:
        """Declare the failure detector :meth:`start` should run."""
        self._fd_setup = dict(heartbeat_every_ms=heartbeat_every_ms,
                              suspect_after_ms=suspect_after_ms, on_suspect=on_suspect)

    def start(self) -> None:
        """Start background machinery (failure detector); call once per run."""
        if self._fd_setup is not None and self.failure_detector is None:
            self.failure_detector = FailureDetector(
                owner=self, peer_ids=self.network.node_ids, **self._fd_setup)
            self.failure_detector.start()

    # --------------------------------------------------------- retransmission

    def track_retransmit(self, key: object, message: object, *, size_bytes: int = 64,
                         tracker: Optional[QuorumTracker] = None,
                         done: Optional[Callable[[], bool]] = None,
                         voters: Optional[Callable[[], List[int]]] = None) -> None:
        """Track a quorum-pending broadcast for resend (see
        :meth:`RetransmitBuffer.track`)."""
        self.retransmit.track(key, message, size_bytes=size_bytes,
                              tracker=tracker, done=done, voters=voters)

    def resolve_retransmit(self, key: object) -> None:
        """Stop retransmitting the round ``key``."""
        self.retransmit.resolve(key)

    def configure_retransmit(self, *, enabled: Optional[bool] = None,
                             policy: Optional[RetransmitPolicy] = None) -> None:
        """Replace the retransmission policy or flip the master switch.

        Disabling clears all pending rounds and stops the catch-up probe —
        this restores the pre-retransmission behaviour (safe but not live
        under message loss), which the negative-control tests rely on.
        """
        if policy is not None:
            self.retransmit.policy = policy
        if enabled is not None:
            self.retransmit.policy = replace(self.retransmit.policy, enabled=enabled)
        if not self.retransmit.policy.enabled:
            self.retransmit.clear()
            if self._catchup_timer is not None:
                self._catchup_timer.cancel()
                self._catchup_timer = None
            self._catchup_signature = None
            self._catchup_attempts = 0

    # --------------------------------------------------------------- catch-up

    def catchup_need(self) -> Optional[Tuple[int, Tuple[str, ...]]]:
        """Describe this replica's execution gap, or ``None`` when caught up.

        Protocol hook.  Returns ``(cursor, want)`` — a protocol-defined
        low-water mark plus tokens naming specific missing items — that is
        broadcast in a :class:`CatchUpRequest` if the gap persists.
        """
        return None

    def catchup_supply(self, cursor: int, want: Tuple[str, ...]):
        """Decided messages this replica can replay for a peer's gap.

        Protocol hook.  Returns an iterable of registered decided-type
        messages (e.g. commits); each is re-dispatched through the normal
        handler path at the requester.
        """
        return []

    def note_progress_gap(self) -> None:
        """Note that local execution may be stuck behind missing decisions.

        Protocols call this wherever execution order is (re)evaluated.  If a
        gap exists and no probe is armed, a one-shot check fires after
        ``catchup_check_ms``; only a gap whose *signature* (executed count +
        the gap description) is unchanged for the whole interval triggers a
        :class:`CatchUpRequest` — a live clean run never does.
        """
        if (not self.retransmit.policy.enabled or self.crashed
                or self._catchup_timer is not None):
            return
        need = self.catchup_need()
        if need is None:
            return
        self._catchup_signature = (self.commands_executed,) + tuple(need)
        self._catchup_attempts = 0
        self._catchup_timer = self.set_timer(
            self.retransmit.policy.catchup_check_ms, self._catchup_check)

    def _catchup_check(self) -> None:
        self._catchup_timer = None
        policy = self.retransmit.policy
        if not policy.enabled:
            return
        if self.cpu_backlog_ms > policy.backlog_defer_ms:
            self._catchup_timer = self.set_timer(policy.catchup_check_ms,
                                                 self._catchup_check)
            return
        need = self.catchup_need()
        if need is None:
            self._catchup_signature = None
            self._catchup_attempts = 0
            return
        signature = (self.commands_executed,) + tuple(need)
        if signature != self._catchup_signature:
            # Something moved (or the gap changed shape): restart the clock.
            self._catchup_signature = signature
            self._catchup_attempts = 0
            self._catchup_timer = self.set_timer(policy.catchup_check_ms,
                                                 self._catchup_check)
            return
        self._catchup_attempts += 1
        if self._catchup_attempts > policy.catchup_max_attempts:
            return
        cursor, want = need
        self.stats.catchup_requests += 1
        self.broadcast(CatchUpRequest(sender=self.node_id, cursor=cursor,
                                      want=tuple(want)), include_self=False)
        interval = min(
            policy.catchup_check_ms
            * policy.catchup_backoff_factor ** self._catchup_attempts,
            policy.catchup_max_interval_ms)
        self._catchup_timer = self.set_timer(interval, self._catchup_check)

    @handles(CatchUpRequest)
    def _on_catchup_request(self, src: int, message: CatchUpRequest) -> None:
        policy = self.retransmit.policy
        if not policy.enabled:
            return
        supplies = list(self.catchup_supply(message.cursor, message.want))
        if not supplies:
            return
        supplies = supplies[:policy.catchup_reply_limit]
        self.stats.catchup_replies += 1
        self.send(src, CatchUpReply(sender=self.node_id, messages=tuple(supplies)),
                  size_bytes=64 * (1 + len(supplies)))

    @handles(CatchUpReply)
    def _on_catchup_reply(self, src: int, message: CatchUpReply) -> None:
        for inner in message.messages:
            self.handle_message(src, inner)

    # ------------------------------------------------------------- life cycle

    def on_restart(self) -> None:
        """Re-establish the timer chains a crash silently killed."""
        super().on_restart()
        self.retransmit.rearm_after_restart()
        if self._catchup_timer is not None:
            self._catchup_timer.cancel()
            self._catchup_timer = None
        self._catchup_attempts = 0
        self._catchup_signature = None
        self.note_progress_gap()
