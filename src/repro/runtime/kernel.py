"""The protocol-runtime kernel every replica runs on.

:class:`ProtocolKernel` extends the bare
:class:`~repro.consensus.interface.ConsensusReplica` (state machine, decision
records, execution log) with the plumbing the five protocols used to
hand-roll independently:

* **declarative message dispatch** — handlers are marked with
  ``@handles(MessageType)`` and collected per class; the kernel's uniform
  :meth:`ProtocolKernel.handle_message` performs the exact-type lookup, so no
  replica defines its own dispatch table;
* **failure-detector scaffolding** — replicas declare their detector once
  with :meth:`ProtocolKernel.use_failure_detector`; the kernel starts it,
  feeds it heartbeats and counts every message as liveness evidence;
* **quorum trackers** (:class:`QuorumTracker`) — insertion-ordered vote
  collection with a threshold, replacing the per-protocol reply dicts and
  ack sets;
* **ballot registers** (:class:`BallotRegister`) — highest-joined-ballot
  bookkeeping per command;
* **unified statistics** — every replica carries one
  :class:`~repro.runtime.stats.ProtocolStats` record.

Protocol subclasses implement only their actual protocol logic: the
``propose`` entry point and one ``@handles``-marked method per message type.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Type

from repro.consensus.ballots import Ballot
from repro.consensus.interface import ConsensusReplica
from repro.consensus.quorums import QuorumSystem
from repro.kvstore.state_machine import StateMachine
from repro.runtime.stats import ProtocolStats
from repro.sim.costs import CostModel
from repro.sim.failures import FailureDetector, Heartbeat
from repro.sim.network import Network
from repro.sim.simulator import Simulator

#: Function attribute carrying the message classes a method handles.
_HANDLES_ATTR = "_kernel_handles"


def handles(message_cls: Type):
    """Mark a kernel method as the handler for ``message_cls``.

    The kernel collects marked methods per class (subclasses may override a
    base handler by re-marking a method for the same message type) and builds
    the exact-type dispatch used by :meth:`ProtocolKernel.handle_message`.
    """

    def mark(fn: Callable) -> Callable:
        setattr(fn, _HANDLES_ATTR, getattr(fn, _HANDLES_ATTR, ()) + (message_cls,))
        return fn

    return mark


class QuorumTracker:
    """Insertion-ordered vote collector with a fixed threshold.

    Args:
        threshold: votes (including ``extra_votes``) needed for the quorum.
        extra_votes: votes counted implicitly (typically the collector's own
            vote when it does not message itself).
    """

    __slots__ = ("threshold", "extra_votes", "_votes")

    def __init__(self, threshold: int, extra_votes: int = 0) -> None:
        self.threshold = threshold
        self.extra_votes = extra_votes
        self._votes: Dict[int, object] = {}

    @classmethod
    def unreachable(cls) -> "QuorumTracker":
        """A tracker that can never become quorate.

        Used as the dataclass default for vote-collecting state: a
        construction site that forgets to pass a real tracker then stalls
        loudly (nothing ever reaches quorum) instead of silently treating
        zero votes as a quorum.
        """
        return cls(threshold=float("inf"))

    def vote(self, src: int, payload: object = True) -> bool:
        """Record ``src``'s vote (replacing any earlier one); True once quorate."""
        self._votes[src] = payload
        return len(self._votes) + self.extra_votes >= self.threshold

    @property
    def count(self) -> int:
        """Votes recorded so far, including the implicit extra votes."""
        return len(self._votes) + self.extra_votes

    @property
    def reached(self) -> bool:
        """Whether the threshold has been met."""
        return len(self._votes) + self.extra_votes >= self.threshold

    def payloads(self) -> List[object]:
        """Recorded vote payloads, in arrival order (implicit votes excluded)."""
        return list(self._votes.values())

    def voters(self) -> List[int]:
        """Voter ids, in arrival order."""
        return list(self._votes)

    def get(self, src: int) -> Optional[object]:
        """The payload ``src`` voted with, or ``None``."""
        return self._votes.get(src)


class BallotRegister(dict):
    """Highest joined ballot per command (CAESAR-style ballot bookkeeping).

    A plain ``dict`` of ``key -> Ballot`` (so reads and writes on the message
    hot path stay native-speed) extended with the two ballot decision rules.
    """

    def allows(self, key, ballot: Ballot) -> bool:
        """Whether a message at ``ballot`` may be processed for ``key``."""
        current = self.get(key)
        return current is None or ballot >= current

    def observe(self, key, ballot: Ballot) -> None:
        """Adopt ``ballot`` if it is at least as high as the current one."""
        current = self.get(key)
        if current is None or ballot >= current:
            self[key] = ballot


class ProtocolKernel(ConsensusReplica):
    """Base class for protocol replicas running on the runtime kernel.

    Subclasses mark message handlers with :func:`handles`; the kernel builds
    the dispatch, owns the unified stats record, and runs the (optional)
    failure detector declared via :meth:`use_failure_detector`.
    """

    #: per-class map ``message class -> handler method name`` (built once).
    _handler_specs: Dict[Type, str] = {}

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        specs: Dict[Type, str] = {}
        for base in reversed(cls.__mro__):
            for name, attr in vars(base).items():
                for message_cls in getattr(attr, _HANDLES_ATTR, ()):
                    specs[message_cls] = name
        cls._handler_specs = specs

    def __init__(self, node_id: int, sim: Simulator, network: Network, quorums: QuorumSystem,
                 state_machine: StateMachine, cost_model: Optional[CostModel] = None) -> None:
        super().__init__(node_id, sim, network, quorums, state_machine, cost_model)
        self.stats = ProtocolStats()
        self.failure_detector: Optional[FailureDetector] = None
        self._fd_setup: Optional[Dict[str, object]] = None
        #: bound-method dispatch table (exact type -> handler), built once per
        #: instance so the hot path is a dict lookup plus a call.
        self._dispatch = {message_cls: getattr(self, name)
                          for message_cls, name in type(self)._handler_specs.items()}

    # ------------------------------------------------------ message dispatch

    def handle_message(self, src: int, message: object) -> None:
        """Uniform dispatch path: liveness evidence, then the exact-type handler."""
        if self.failure_detector is not None:
            self.failure_detector.observe_any_message(src)
        handler = self._dispatch.get(type(message))
        if handler is None:
            raise TypeError(f"unexpected message type {type(message).__name__}")
        handler(src, message)

    @handles(Heartbeat)
    def _on_heartbeat(self, src: int, message: Heartbeat) -> None:
        """Feed a heartbeat to the failure detector (no-op when disabled)."""
        if self.failure_detector is not None:
            self.failure_detector.observe_heartbeat(message)

    # ----------------------------------------------------- failure detection

    def use_failure_detector(self, heartbeat_every_ms: float, suspect_after_ms: float,
                             on_suspect: Callable[[int], None]) -> None:
        """Declare the failure detector :meth:`start` should run."""
        self._fd_setup = dict(heartbeat_every_ms=heartbeat_every_ms,
                              suspect_after_ms=suspect_after_ms, on_suspect=on_suspect)

    def start(self) -> None:
        """Start background machinery (failure detector); call once per run."""
        if self._fd_setup is not None and self.failure_detector is None:
            self.failure_detector = FailureDetector(
                owner=self, peer_ids=self.network.node_ids, **self._fd_setup)
            self.failure_detector.start()
