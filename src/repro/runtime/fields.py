"""Shared field codecs for the consensus value types.

These are the composite codecs protocol modules use when registering their
wire messages: commands, ballots, logical timestamps and the id collections
built from them.  Defining them once keeps every protocol's wire layout for
the shared types identical, which is what makes cross-protocol byte
footprints comparable.
"""

from __future__ import annotations

from repro.consensus.ballots import Ballot
from repro.consensus.command import Command
from repro.consensus.timestamps import LogicalTimestamp
from repro.runtime.codec import (
    BOOL,
    ID_PAIR,
    SINT,
    STRING,
    UINT,
    FrozenSetCodec,
    OptionalCodec,
    StructCodec,
)

#: ``(client_id, sequence)`` command ids / ``(replica, instance)`` instance ids.
COMMAND_ID = ID_PAIR
INSTANCE_ID = ID_PAIR

#: Sets of ids, canonically sorted on the wire.
COMMAND_ID_SET = FrozenSetCodec(COMMAND_ID)
INSTANCE_ID_SET = FrozenSetCodec(INSTANCE_ID)

BALLOT = StructCodec(Ballot, [("round", UINT), ("node_id", UINT)])

TIMESTAMP = StructCodec(LogicalTimestamp, [("counter", UINT), ("node_id", UINT)])

COMMAND = StructCodec(Command, [
    ("command_id", COMMAND_ID),
    ("key", STRING),
    ("operation", STRING),
    ("value", OptionalCodec(STRING)),
    ("origin", SINT),
    ("payload_size", UINT),
])

OPTIONAL_COMMAND = OptionalCodec(COMMAND)
OPTIONAL_BALLOT = OptionalCodec(BALLOT)
OPTIONAL_TIMESTAMP = OptionalCodec(TIMESTAMP)
OPTIONAL_STRING = OptionalCodec(STRING)

__all__ = [
    "BALLOT",
    "BOOL",
    "COMMAND",
    "COMMAND_ID",
    "COMMAND_ID_SET",
    "INSTANCE_ID",
    "INSTANCE_ID_SET",
    "OPTIONAL_BALLOT",
    "OPTIONAL_COMMAND",
    "OPTIONAL_STRING",
    "OPTIONAL_TIMESTAMP",
    "SINT",
    "STRING",
    "TIMESTAMP",
    "UINT",
]
