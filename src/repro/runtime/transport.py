"""The transport seam between protocol replicas and the world.

Replicas talk to a :class:`Transport`, never to the network directly: the
transport owns outgoing I/O, batching, and the replica's timer service, and
can be swapped for a different backend without touching protocol code.  Two
backends implement the contract:

* :class:`SimulatorTransport` — messages and timers go through the shared
  discrete-event :class:`~repro.sim.network.Network` / simulator (the
  oracle: deterministic, seedable, byte-identical across runs);
* :class:`~repro.net.transport.AsyncioTransport` — the same wire messages
  travel length-prefixed over real TCP sockets between replica processes,
  and timers map onto the asyncio event loop (the measurement path).

Lifecycle contract
------------------

Every transport moves through the same three phases, verified for both
backends by one conformance suite (``tests/test_transport_contract.py``):

1. **construction** — the transport is bound to its owning replica; no I/O
   happens yet, but :attr:`Transport.node_ids` and timers must already work
   (protocols arm timers from their constructors).
2. **started** — after :meth:`Transport.start`, ``send`` / ``broadcast``
   deliver (or begin attempting to deliver) messages.  ``start`` is
   idempotent.  Calling ``send`` before ``start`` must not raise: the
   simulator backend is always live, the socket backend queues or drops
   until its connections establish — exactly the semantics of a real
   datacenter boot.
3. **closed** — after :meth:`Transport.close`, no further delivery is
   attempted and all transport-owned resources (connections, pending
   timers it manages internally) are released.  ``close`` is idempotent;
   ``send`` after ``close`` is a silent no-op (a crashed process cannot
   observe its own lost sends).

Timer service
-------------

``set_timer(delay_ms, callback)`` returns a :class:`~repro.runtime.clock.Timer`
and ``cancel_timer(timer)`` cancels one; the owning node applies clock skew
and crash-gating *before* delegating here, so transports only translate a
plain delay onto their clock (event heap or event loop).  Timers are how the
kernel's retransmission scans and catch-up probes run identically on both
substrates.

Wire accounting
---------------

When the network's :attr:`~repro.sim.network.NetworkConfig.wire_accounting`
flag is set, every transmitted message (or batch envelope) is also measured
through the message registry's codec and accumulated into the network's
``codec_bytes_sent`` / ``per_type_codec_bytes`` counters.  This is what the
message-footprint benchmark reports: bytes as they would appear on a real
wire, not per-field estimates.  The flag defaults to off so the measurement
never taxes the simulation hot path.  (The socket backend encodes every
message anyway, so it always accounts real bytes.)
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional

from repro.runtime.clock import Timer
from repro.runtime.registry import WIRE
from repro.sim.batching import BatchBuffer, BatchingConfig


class Transport(abc.ABC):
    """Interface a replica uses for all outgoing communication and timers.

    See the module docstring for the full lifecycle contract.  Implementations
    must deliver ``send`` asynchronously (never re-entrantly into the
    caller's handler) and may coalesce messages (batching); ``flush_all``
    forces out anything buffered.
    """

    @property
    @abc.abstractmethod
    def node_ids(self) -> List[int]:
        """Ids of every reachable peer (including the local node)."""

    def start(self) -> None:
        """Begin delivering messages (idempotent; no-op for always-live backends)."""

    @abc.abstractmethod
    def send(self, dst: int, message: object, size_bytes: int = 64) -> None:
        """Queue ``message`` for delivery to ``dst`` (silently dropped after close)."""

    @abc.abstractmethod
    def broadcast(self, message: object, include_self: bool = True,
                  size_bytes: int = 64) -> None:
        """Send ``message`` to every peer (optionally excluding the local node)."""

    @abc.abstractmethod
    def set_timer(self, delay_ms: float, callback) -> Timer:
        """Run ``callback`` after ``delay_ms`` on this transport's clock."""

    def cancel_timer(self, timer: Timer) -> None:
        """Cancel a timer returned by :meth:`set_timer` (idempotent)."""
        timer.cancel()

    def configure_batching(self, config: BatchingConfig) -> None:
        """Install (or replace) an outgoing batching policy.

        Optional capability: backends without batching raise
        ``NotImplementedError``.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support outgoing batching")

    def flush_all(self) -> None:
        """Transmit anything held back by batching (no-op without batching)."""

    def close(self) -> None:
        """Release transport-owned resources (idempotent; sends become no-ops)."""

    #: When not ``None``, a bound ``(src, dst, message, size_bytes)`` callable
    #: that is exactly equivalent to :meth:`send` — the owning node may call
    #: it to skip the per-message transport frame.  Backends that can prove
    #: the equivalence (no batching, no fault filter, no wire accounting)
    #: publish it; everything else leaves it ``None``.
    send_direct = None


class SimulatorTransport(Transport):
    """Transport backend over the simulated network.

    Owns the per-destination batch buffer: messages to the same destination
    within the batching window leave as one wire message.  Self-addressed
    messages bypass batching (they never cross a real wire).

    Args:
        node: the owning node (supplies ``node_id`` and the simulator clock).
        network: the shared simulated network.
        batching: optional batching policy; ``None`` sends eagerly.
    """

    def __init__(self, node, network, batching: Optional[BatchingConfig] = None) -> None:
        self.node = node
        self.network = network
        self.batching = batching
        self._buffer = BatchBuffer(batching) if batching is not None else None
        self._flush_scheduled: Dict[int, bool] = {}
        self.measure_wire = bool(getattr(network.config, "wire_accounting", False))
        self._closed = False
        #: fault-filter seam: when installed (chaos runs only), every outgoing
        #: wire message is offered to the filter first, which may absorb it
        #: (partition/drop), duplicate it or delay it.  ``None`` costs one
        #: branch per send and keeps the default path byte-identical.
        self._fault_filter = None
        #: hot-path caches: the local address and the network's send method
        #: (both immutable for the node's lifetime).
        self._node_id = node.node_id
        self._network_send = network.send
        self._refresh_send_direct()

    def _refresh_send_direct(self) -> None:
        """Publish (or retract) the frame-skipping send path.

        Only valid while :meth:`send` would take its eager branch with no
        side channels: no batch buffer, no fault filter, no wire accounting,
        not closed.  Every state change that affects those re-derives it.
        """
        if (self._buffer is None and self._fault_filter is None
                and not self.measure_wire and not self._closed):
            self.send_direct = self._network_send
        else:
            self.send_direct = None

    @property
    def node_ids(self) -> List[int]:
        return self.network.node_ids

    def configure_batching(self, config: BatchingConfig) -> None:
        """Turn on (or replace) the per-destination batching policy."""
        self.batching = config
        self._buffer = BatchBuffer(config)
        self._refresh_send_direct()

    @property
    def batch_buffer(self) -> Optional[BatchBuffer]:
        """The outgoing batch buffer, ``None`` when batching is off."""
        return self._buffer

    def install_fault_filter(self, faults) -> None:
        """Install (or remove, with ``None``) the nemesis link-fault filter.

        The filter object must expose ``intercept(src, dst, message,
        size_bytes) -> bool`` returning ``True`` when it consumed the message
        (blocked, dropped, or rescheduled it itself).  Installed on every
        replica's transport by :class:`repro.chaos.nemesis.Nemesis`, so all
        protocols inherit every fault primitive through this one seam.
        """
        self._fault_filter = faults
        self._refresh_send_direct()

    def set_timer(self, delay_ms: float, callback) -> Timer:
        """Schedule ``callback`` on the shared simulator's virtual clock."""
        return Timer(self.node.sim.schedule(delay_ms, callback))

    def send(self, dst: int, message: object, size_bytes: int = 64) -> None:
        """Send or buffer one message (self-sends are never delayed)."""
        if self._closed:
            return
        if self._buffer is None or dst == self._node_id:
            # Eager path, inlined: this is every message of every non-batched
            # experiment.
            faults = self._fault_filter
            if faults is not None and faults.intercept(self._node_id, dst, message,
                                                       size_bytes):
                return
            if self.measure_wire:
                self._record_wire(message)
            self._network_send(self._node_id, dst, message, size_bytes=size_bytes)
            return
        if self._buffer.add(dst, message, size_bytes):
            self._flush_destination(dst)
        elif not self._flush_scheduled.get(dst):
            self._flush_scheduled[dst] = True
            self.node.set_timer(self.batching.window_ms,
                                lambda: self._flush_destination(dst))

    def broadcast(self, message: object, include_self: bool = True,
                  size_bytes: int = 64) -> None:
        """Send ``message`` to every registered node."""
        local = self.node.node_id
        for dst in self.network.node_ids:
            if dst == local and not include_self:
                continue
            self.send(dst, message, size_bytes=size_bytes)

    def flush_all(self) -> None:
        """Flush every destination's buffered batch immediately."""
        if self._buffer is None:
            return
        for dst in self._buffer.destinations():
            self._flush_destination(dst)

    def close(self) -> None:
        """Flush pending batches, then stop delivering."""
        if self._closed:
            return
        self.flush_all()
        self._closed = True
        self._refresh_send_direct()

    def _flush_destination(self, dst: int) -> None:
        """Send the buffered batch for ``dst`` (if any) as one wire message."""
        self._flush_scheduled[dst] = False
        if self._buffer is None or not self._buffer.has_pending(dst):
            return
        batch, size_bytes = self._buffer.drain(dst)
        self._transmit(dst, batch, size_bytes)

    def _transmit(self, dst: int, message: object, size_bytes: int) -> None:
        """Hand one wire message to the network, measuring it when enabled."""
        faults = self._fault_filter
        if faults is not None and faults.intercept(self._node_id, dst, message, size_bytes):
            return
        if self.measure_wire:
            self._record_wire(message)
        self._network_send(self._node_id, dst, message, size_bytes=size_bytes)

    def _record_wire(self, message: object) -> None:
        """Accumulate the codec-measured size of one transmitted message."""
        stats = self.network.stats
        encoded = WIRE.wire_size(message)
        stats.codec_bytes_sent += encoded
        type_name = type(message).__name__
        per_type = stats.per_type_codec_bytes
        per_type[type_name] = per_type.get(type_name, 0) + encoded
