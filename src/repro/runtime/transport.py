"""The transport seam between protocol replicas and the world.

Replicas talk to a :class:`Transport`, never to the simulated network
directly: the transport owns outgoing batching (generalizing the Figure 9b
batching to every protocol) and codec-backed wire accounting, and can be
swapped for a different backend without touching protocol code.  The
simulator-backed :class:`SimulatorTransport` is the first (and default)
backend; a real-socket transport would implement the same small interface.

Wire accounting: when the network's
:attr:`~repro.sim.network.NetworkConfig.wire_accounting` flag is set, every
transmitted message (or batch envelope) is also measured through the message
registry's codec and accumulated into the network's ``codec_bytes_sent`` /
``per_type_codec_bytes`` counters.  This is what the message-footprint
benchmark reports: bytes as they would appear on a real wire, not per-field
estimates.  The flag defaults to off so the measurement never taxes the
simulation hot path.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.runtime.registry import WIRE
from repro.sim.batching import BatchBuffer, BatchingConfig


class Transport:
    """Interface a replica uses for all outgoing communication.

    Implementations must deliver ``send`` asynchronously and may coalesce
    messages (batching); ``flush_all`` forces out anything buffered.
    """

    @property
    def node_ids(self) -> List[int]:
        """Ids of every reachable peer (including the local node)."""
        raise NotImplementedError

    def send(self, dst: int, message: object, size_bytes: int = 64) -> None:
        """Queue ``message`` for delivery to ``dst``."""
        raise NotImplementedError

    def broadcast(self, message: object, include_self: bool = True,
                  size_bytes: int = 64) -> None:
        """Send ``message`` to every peer (optionally excluding the local node)."""
        raise NotImplementedError

    def configure_batching(self, config: BatchingConfig) -> None:
        """Install (or replace) an outgoing batching policy."""
        raise NotImplementedError

    def flush_all(self) -> None:
        """Transmit anything held back by batching (no-op without batching)."""


class SimulatorTransport(Transport):
    """Transport backend over the simulated network.

    Owns the per-destination batch buffer: messages to the same destination
    within the batching window leave as one wire message.  Self-addressed
    messages bypass batching (they never cross a real wire).

    Args:
        node: the owning node (supplies ``node_id`` and ``set_timer``).
        network: the shared simulated network.
        batching: optional batching policy; ``None`` sends eagerly.
    """

    def __init__(self, node, network, batching: Optional[BatchingConfig] = None) -> None:
        self.node = node
        self.network = network
        self.batching = batching
        self._buffer = BatchBuffer(batching) if batching is not None else None
        self._flush_scheduled: Dict[int, bool] = {}
        self.measure_wire = bool(getattr(network.config, "wire_accounting", False))
        #: fault-filter seam: when installed (chaos runs only), every outgoing
        #: wire message is offered to the filter first, which may absorb it
        #: (partition/drop), duplicate it or delay it.  ``None`` costs one
        #: branch per send and keeps the default path byte-identical.
        self._fault_filter = None
        #: hot-path caches: the local address and the network's send method
        #: (both immutable for the node's lifetime).
        self._node_id = node.node_id
        self._network_send = network.send

    @property
    def node_ids(self) -> List[int]:
        return self.network.node_ids

    def configure_batching(self, config: BatchingConfig) -> None:
        """Turn on (or replace) the per-destination batching policy."""
        self.batching = config
        self._buffer = BatchBuffer(config)

    @property
    def batch_buffer(self) -> Optional[BatchBuffer]:
        """The outgoing batch buffer, ``None`` when batching is off."""
        return self._buffer

    def install_fault_filter(self, faults) -> None:
        """Install (or remove, with ``None``) the nemesis link-fault filter.

        The filter object must expose ``intercept(src, dst, message,
        size_bytes) -> bool`` returning ``True`` when it consumed the message
        (blocked, dropped, or rescheduled it itself).  Installed on every
        replica's transport by :class:`repro.chaos.nemesis.Nemesis`, so all
        protocols inherit every fault primitive through this one seam.
        """
        self._fault_filter = faults

    def send(self, dst: int, message: object, size_bytes: int = 64) -> None:
        """Send or buffer one message (self-sends are never delayed)."""
        if self._buffer is None or dst == self._node_id:
            # Eager path, inlined: this is every message of every non-batched
            # experiment.
            faults = self._fault_filter
            if faults is not None and faults.intercept(self._node_id, dst, message,
                                                       size_bytes):
                return
            if self.measure_wire:
                self._record_wire(message)
            self._network_send(self._node_id, dst, message, size_bytes=size_bytes)
            return
        if self._buffer.add(dst, message, size_bytes):
            self._flush_destination(dst)
        elif not self._flush_scheduled.get(dst):
            self._flush_scheduled[dst] = True
            self.node.set_timer(self.batching.window_ms,
                                lambda: self._flush_destination(dst))

    def broadcast(self, message: object, include_self: bool = True,
                  size_bytes: int = 64) -> None:
        """Send ``message`` to every registered node."""
        local = self.node.node_id
        for dst in self.network.node_ids:
            if dst == local and not include_self:
                continue
            self.send(dst, message, size_bytes=size_bytes)

    def flush_all(self) -> None:
        """Flush every destination's buffered batch immediately."""
        if self._buffer is None:
            return
        for dst in self._buffer.destinations():
            self._flush_destination(dst)

    def _flush_destination(self, dst: int) -> None:
        """Send the buffered batch for ``dst`` (if any) as one wire message."""
        self._flush_scheduled[dst] = False
        if self._buffer is None or not self._buffer.has_pending(dst):
            return
        batch, size_bytes = self._buffer.drain(dst)
        self._transmit(dst, batch, size_bytes)

    def _transmit(self, dst: int, message: object, size_bytes: int) -> None:
        """Hand one wire message to the network, measuring it when enabled."""
        faults = self._fault_filter
        if faults is not None and faults.intercept(self._node_id, dst, message, size_bytes):
            return
        if self.measure_wire:
            self._record_wire(message)
        self._network_send(self._node_id, dst, message, size_bytes=size_bytes)

    def _record_wire(self, message: object) -> None:
        """Accumulate the codec-measured size of one transmitted message."""
        stats = self.network.stats
        encoded = WIRE.wire_size(message)
        stats.codec_bytes_sent += encoded
        type_name = type(message).__name__
        per_type = stats.per_type_codec_bytes
        per_type[type_name] = per_type.get(type_name, 0) + encoded
