"""Composable field codecs for the wire-message registry.

A codec turns one field value into bytes and back.  Codecs are small,
stateless objects composed bottom-up: primitives (varints, strings, booleans)
are wrapped by structural codecs (optionals, frozensets, sequences, structs)
until every field of a registered message type has an encoder.  The registry
(:mod:`repro.runtime.registry`) concatenates the field encodings to produce
the message's wire form, which is what the byte-accurate footprint
measurements are taken from.

Encodings are deterministic: unordered collections are sorted before
encoding, so the same value always serializes to the same bytes (and the same
byte *count*, which is what the wire accounting relies on).
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

#: Decoder result: (value, next_offset).
Decoded = Tuple[object, int]


def encode_uvarint(value: int, out: bytearray) -> None:
    """Append ``value`` (non-negative) as a LEB128 varint."""
    if value < 0:
        raise ValueError(f"uvarint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def decode_uvarint(data: bytes, offset: int) -> Tuple[int, int]:
    """Read a LEB128 varint from ``data`` at ``offset``."""
    result = 0
    shift = 0
    while True:
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


class Codec:
    """Base interface: encode a value into a bytearray, decode it back."""

    def encode(self, value: object, out: bytearray) -> None:
        raise NotImplementedError

    def decode(self, data: bytes, offset: int) -> Decoded:
        raise NotImplementedError


class UintCodec(Codec):
    """Non-negative integer as a varint."""

    def encode(self, value: object, out: bytearray) -> None:
        encode_uvarint(value, out)

    def decode(self, data: bytes, offset: int) -> Decoded:
        return decode_uvarint(data, offset)


class SintCodec(Codec):
    """Signed integer, zigzag-mapped onto a varint."""

    def encode(self, value: object, out: bytearray) -> None:
        encode_uvarint(-2 * value - 1 if value < 0 else value << 1, out)

    def decode(self, data: bytes, offset: int) -> Decoded:
        raw, offset = decode_uvarint(data, offset)
        return (raw >> 1) ^ -(raw & 1), offset


class BoolCodec(Codec):
    """Boolean as a single byte."""

    def encode(self, value: object, out: bytearray) -> None:
        out.append(1 if value else 0)

    def decode(self, data: bytes, offset: int) -> Decoded:
        return data[offset] == 1, offset + 1


class StrCodec(Codec):
    """Length-prefixed UTF-8 string."""

    def encode(self, value: object, out: bytearray) -> None:
        raw = value.encode("utf-8")
        encode_uvarint(len(raw), out)
        out += raw

    def decode(self, data: bytes, offset: int) -> Decoded:
        length, offset = decode_uvarint(data, offset)
        return data[offset:offset + length].decode("utf-8"), offset + length


class OptionalCodec(Codec):
    """``None`` or an inner value, with a one-byte presence flag."""

    def __init__(self, inner: Codec) -> None:
        self.inner = inner

    def encode(self, value: object, out: bytearray) -> None:
        if value is None:
            out.append(0)
        else:
            out.append(1)
            self.inner.encode(value, out)

    def decode(self, data: bytes, offset: int) -> Decoded:
        present = data[offset]
        offset += 1
        if not present:
            return None, offset
        return self.inner.decode(data, offset)


class TupleCodec(Codec):
    """Fixed-shape tuple: one codec per element, no length prefix."""

    def __init__(self, *elements: Codec) -> None:
        self.elements = elements

    def encode(self, value: object, out: bytearray) -> None:
        for element, codec in zip(value, self.elements):
            codec.encode(element, out)

    def decode(self, data: bytes, offset: int) -> Decoded:
        values = []
        for codec in self.elements:
            value, offset = codec.decode(data, offset)
            values.append(value)
        return tuple(values), offset


class SeqCodec(Codec):
    """Variable-length tuple of homogeneous elements, length-prefixed."""

    def __init__(self, element: Codec) -> None:
        self.element = element

    def encode(self, value: object, out: bytearray) -> None:
        encode_uvarint(len(value), out)
        for element in value:
            self.element.encode(element, out)

    def decode(self, data: bytes, offset: int) -> Decoded:
        length, offset = decode_uvarint(data, offset)
        values = []
        for _ in range(length):
            value, offset = self.element.decode(data, offset)
            values.append(value)
        return tuple(values), offset


class FrozenSetCodec(Codec):
    """Frozenset of homogeneous elements, sorted so the encoding is canonical."""

    def __init__(self, element: Codec) -> None:
        self.element = element

    def encode(self, value: object, out: bytearray) -> None:
        encode_uvarint(len(value), out)
        for element in sorted(value):
            self.element.encode(element, out)

    def decode(self, data: bytes, offset: int) -> Decoded:
        length, offset = decode_uvarint(data, offset)
        values = []
        for _ in range(length):
            value, offset = self.element.decode(data, offset)
            values.append(value)
        return frozenset(values), offset


class StructCodec(Codec):
    """A fixed-field object (dataclass) encoded as its fields in order.

    Args:
        factory: callable rebuilding the object from keyword arguments.
        fields: ``(name, codec)`` pairs, in encoding order.
    """

    def __init__(self, factory: Callable, fields: Sequence[Tuple[str, Codec]]) -> None:
        self.factory = factory
        self.fields = tuple(fields)

    def encode(self, value: object, out: bytearray) -> None:
        for name, codec in self.fields:
            codec.encode(getattr(value, name), out)

    def decode(self, data: bytes, offset: int) -> Decoded:
        kwargs = {}
        for name, codec in self.fields:
            kwargs[name], offset = codec.decode(data, offset)
        return self.factory(**kwargs), offset


#: Shared primitive instances (codecs are stateless).
UINT = UintCodec()
SINT = SintCodec()
BOOL = BoolCodec()
STRING = StrCodec()

#: ``(int, int)`` identifier pairs: command ids, EPaxos instance ids.
ID_PAIR = TupleCodec(SINT, SINT)
