"""The clock/timer abstraction shared by every transport backend.

The protocol kernel never reads wall-clock time and never touches an event
loop directly: it asks its *clock* for ``now`` (milliseconds as a float) and
schedules callbacks with ``schedule(delay_ms, callback)``.  Two clocks exist:

* :class:`~repro.sim.simulator.Simulator` — the discrete-event scheduler;
  ``now`` is virtual time and ``schedule`` pushes onto the event heap.  It is
  registered as a virtual subclass below so ``isinstance(x, Clock)`` holds
  without giving the simulator an extra base class on its hot path.
* :class:`~repro.net.clock.WallClock` — the asyncio-backed clock used by the
  real-socket transport; ``now`` is monotonic wall time relative to process
  start and ``schedule`` maps onto ``loop.call_later``.

Both return cancellable handles exposing ``cancel()`` / ``cancelled``, which
is all :class:`Timer` needs — so the kernel's timer bookkeeping (retransmit
scans, catch-up probes, failure detectors, batching windows) runs unchanged
on either substrate.
"""

from __future__ import annotations

import abc
from typing import Callable, Tuple


class Clock(abc.ABC):
    """Time source + deferred-call scheduler a replica runs against.

    The interface is deliberately the subset of
    :class:`~repro.sim.simulator.Simulator` the runtime layer actually uses,
    so the simulator satisfies it structurally; real-time clocks implement
    the same three members over an event loop.  Implementations must also
    carry an ``rng`` attribute (a
    :class:`~repro.sim.random.DeterministicRandom`) so per-component forks
    such as the retransmission jitter stream derive identically everywhere.
    """

    @property
    @abc.abstractmethod
    def now(self) -> float:
        """Current time in milliseconds (virtual or monotonic wall time)."""

    @abc.abstractmethod
    def schedule(self, delay: float, callback: Callable[..., None],
                 priority: int = 0, args: Tuple = ()):
        """Run ``callback(*args)`` after ``delay`` milliseconds.

        Returns a cancellable handle with ``cancel()`` and ``cancelled``.
        """


class Timer:
    """Handle for a scheduled timer, cancellable before it fires.

    Wraps any clock handle exposing ``cancel()`` / ``cancelled`` — a
    simulator :class:`~repro.sim.events.Event` or a wall-clock scheduled
    call — so protocol code holds one timer type regardless of transport.
    """

    __slots__ = ("_event",)

    def __init__(self, event) -> None:
        self._event = event

    def cancel(self) -> None:
        """Prevent the timer callback from running."""
        self._event.cancel()

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._event.cancelled


def _register_simulator() -> None:
    """Register the discrete-event simulator as a virtual Clock subclass."""
    from repro.sim.simulator import Simulator

    Clock.register(Simulator)


_register_simulator()
