"""Declarative wire-message registry.

Every protocol message type in the repository is registered here exactly
once, with one :class:`~repro.runtime.codec.Codec` per field::

    @register_message(command=COMMAND, ballot=BALLOT, timestamp=TIMESTAMP)
    @dataclass(frozen=True, slots=True)
    class FastPropose:
        command: Command
        ballot: Ballot
        timestamp: LogicalTimestamp

Registration buys three things:

* **byte-accurate wire accounting** — :meth:`MessageRegistry.encode` produces
  the message's canonical wire form, so footprint benchmarks measure encoded
  bytes instead of per-protocol size estimates;
* **a uniform codec** — :meth:`MessageRegistry.decode` rebuilds the message
  from its bytes, with encode→decode identity enforced by property tests;
* **an enumerable message universe** — the Hypothesis round-trip suite and
  the docs iterate :meth:`MessageRegistry.types` instead of hand-listing
  per-protocol messages.

Dispatch stays exact-type (the kernel maps ``type(message)`` to a handler),
so registration never slows the simulation hot path; encoding happens only
when wire accounting is enabled.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Type

from repro.runtime.codec import Codec, StructCodec, decode_uvarint, encode_uvarint


class MessageRegistry:
    """Maps registered message classes to type ids and field codecs."""

    def __init__(self) -> None:
        self._codecs: Dict[Type, StructCodec] = {}
        self._type_ids: Dict[Type, int] = {}
        self._by_id: List[Type] = []

    def register(self, cls: Type, field_codecs: Dict[str, Codec],
                 factory: Optional[Callable] = None) -> Type:
        """Register ``cls`` with one codec per field (in field order).

        Every dataclass field must have a codec: a field silently missing
        from the registration would be dropped by encode and restored to its
        default by decode — invisible to round-trip tests, which derive
        their strategies from the registration itself.
        """
        if cls in self._codecs:
            raise ValueError(f"message type {cls.__name__} already registered")
        if dataclasses.is_dataclass(cls):
            declared = {spec.name for spec in dataclasses.fields(cls)}
            registered = set(field_codecs)
            if declared != registered:
                raise ValueError(
                    f"{cls.__name__} registration does not match its fields: "
                    f"missing {sorted(declared - registered)}, "
                    f"unknown {sorted(registered - declared)}")
        self._type_ids[cls] = len(self._by_id)
        self._by_id.append(cls)
        self._codecs[cls] = StructCodec(factory or cls, list(field_codecs.items()))
        return cls

    def is_registered(self, cls: Type) -> bool:
        """Whether ``cls`` has been registered."""
        return cls in self._codecs

    def types(self) -> List[Type]:
        """Every registered message class, in registration order."""
        return list(self._by_id)

    def field_codecs(self, cls: Type) -> Dict[str, Codec]:
        """The per-field codecs ``cls`` was registered with."""
        return dict(self._codecs[cls].fields)

    def encode(self, message: object) -> bytes:
        """Canonical wire form: type-id varint followed by the encoded fields."""
        cls = type(message)
        codec = self._codecs.get(cls)
        if codec is None:
            raise KeyError(f"message type {cls.__name__} is not registered")
        out = bytearray()
        encode_uvarint(self._type_ids[cls], out)
        codec.encode(message, out)
        return bytes(out)

    def decode(self, data: bytes, offset: int = 0):
        """Rebuild a message from :meth:`encode` output.

        Returns ``(message, next_offset)`` so nested encodings (batches) can
        decode in sequence.
        """
        type_id, offset = decode_uvarint(data, offset)
        cls = self._by_id[type_id]
        return self._codecs[cls].decode(data, offset)

    def decode_one(self, data: bytes) -> object:
        """Decode a single message, ignoring the trailing offset."""
        message, _ = self.decode(data)
        return message

    def wire_size(self, message: object) -> int:
        """Size in bytes of the message's canonical wire form."""
        return len(self.encode(message))


#: The process-wide registry every protocol registers its messages with.
WIRE = MessageRegistry()


def register_message(_registry: Optional[MessageRegistry] = None, **field_codecs: Codec):
    """Class decorator registering a message type with :data:`WIRE`.

    Usage::

        @register_message(slot=UINT, command=COMMAND)
        @dataclass(frozen=True, slots=True)
        class SlotPropose: ...

    Field codecs must be passed in the class's field order (they become the
    wire layout).
    """
    registry = _registry or WIRE

    def decorate(cls: Type) -> Type:
        return registry.register(cls, field_codecs)

    return decorate


class MessageCodec(Codec):
    """Codec for a field holding any *registered* message (used by batches)."""

    def __init__(self, registry: Optional[MessageRegistry] = None) -> None:
        self.registry = registry or WIRE

    def encode(self, value: object, out: bytearray) -> None:
        out += self.registry.encode(value)

    def decode(self, data: bytes, offset: int):
        return self.registry.decode(data, offset)
