"""The unified per-replica statistics record.

Every protocol replica used to define its own ``*Stats`` dataclass
(``CaesarStats``, ``EPaxosStats``, ...), which forced reporting code to know
which protocol it was looking at before touching a counter.  The runtime
kernel gives every replica one :class:`ProtocolStats` record instead: the
union of all protocol counters, zero-initialized, so reporting can iterate
the non-zero counters of *any* replica without special-casing protocol names.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class ProtocolStats:
    """Protocol-internal counters surfaced to the experiment harness.

    Counters irrelevant to a protocol simply stay zero; :meth:`non_zero`
    yields only the meaningful ones for reporting.
    """

    # Decision paths (CAESAR, EPaxos, M2Paxos).
    fast_decisions: int = 0
    slow_decisions: int = 0
    # CAESAR phases.
    retries: int = 0
    slow_proposals: int = 0
    nacks_sent: int = 0
    recoveries_started: int = 0
    recoveries_completed: int = 0
    # EPaxos execution/recovery.
    graph_nodes_visited: int = 0
    recoveries: int = 0
    # Slot-based protocols (Multi-Paxos, Mencius).
    slots_proposed: int = 0
    slots_committed: int = 0
    slots_skipped: int = 0
    elections: int = 0
    # Forwarding / ownership (Multi-Paxos, M2Paxos).
    commands_forwarded: int = 0
    acquisitions: int = 0
    acquisition_failures: int = 0
    acquisition_backoffs: int = 0
    local_decisions: int = 0
    accepts_preempted: int = 0
    # Runtime retransmission / catch-up.
    retransmissions_sent: int = 0
    catchup_requests: int = 0
    catchup_replies: int = 0

    def non_zero(self):
        """``(name, value)`` pairs of every counter that moved, in field order."""
        return [(spec.name, getattr(self, spec.name)) for spec in fields(self)
                if getattr(self, spec.name)]

    def as_dict(self):
        """All counters as a plain dict (for JSON-able payloads)."""
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}
