"""Baseline consensus protocols the paper compares CAESAR against.

* :class:`~repro.baselines.epaxos.EPaxosReplica` — dependency-tracking
  multi-leader Generalized Consensus with a fast path (Moraru et al., SOSP'13).
* :class:`~repro.baselines.multipaxos.MultiPaxosReplica` — the classic
  single-designated-leader protocol.
* :class:`~repro.baselines.mencius.MenciusReplica` — multi-leader with
  pre-assigned rotating slots (Mao et al., OSDI'08).
* :class:`~repro.baselines.m2paxos.M2PaxosReplica` — ownership-based
  multi-leader Generalized Consensus (Peluso et al., DSN'16).

All four run on the same simulated substrate and expose the same
:class:`~repro.consensus.interface.ConsensusReplica` interface as CAESAR, so
every experiment can swap protocols by name.
"""

from repro.baselines.epaxos import EPaxosReplica
from repro.baselines.m2paxos import M2PaxosReplica
from repro.baselines.mencius import MenciusReplica
from repro.baselines.multipaxos import MultiPaxosReplica

__all__ = ["EPaxosReplica", "MultiPaxosReplica", "MenciusReplica", "M2PaxosReplica"]
