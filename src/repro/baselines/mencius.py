"""Mencius: multi-leader consensus with pre-assigned rotating slots.

Every replica owns the log slots congruent to its id modulo the cluster size
(slot ``s`` belongs to replica ``s mod N``).  A replica orders a command by
placing it in its next owned slot and replicating it; because the log is
global, a slot can only be *executed* once every smaller slot is either
filled or explicitly skipped by its owner.

The performance-relevant property the paper leans on (Section II and
Figure 7) is that a Mencius leader cannot deliver before hearing from **all**
other replicas — it needs to learn that their interleaved slots are either
used or skipped — so every command's latency is governed by the farthest
node, not by a quorum.  That is exactly how the replica below behaves: a
command leader broadcasts its slot, every peer answers (acknowledging and
explicitly skipping its own empty smaller slots), and the leader commits only
after hearing from everyone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Set

from repro.consensus.command import Command
from repro.consensus.interface import DecisionKind
from repro.consensus.quorums import QuorumSystem
from repro.kvstore.state_machine import StateMachine
from repro.runtime.codec import UINT, FrozenSetCodec
from repro.runtime.fields import COMMAND
from repro.runtime.kernel import ProtocolKernel, QuorumTracker, handles
from repro.runtime.registry import register_message
from repro.sim.costs import CostModel
from repro.sim.network import Network
from repro.sim.simulator import Simulator


# --------------------------------------------------------------------- wire


@register_message(slot=UINT, command=COMMAND)
@dataclass(frozen=True, slots=True)
class SlotPropose:
    """Slot owner -> all: order ``command`` at ``slot``."""

    slot: int
    command: Command


@register_message(slot=UINT, sender=UINT)
@dataclass(frozen=True, slots=True)
class SlotAck:
    """Peer -> slot owner: acknowledgement of a proposed slot."""

    slot: int
    sender: int


@register_message(slot=UINT, command=COMMAND)
@dataclass(frozen=True, slots=True)
class SlotCommit:
    """Slot owner -> all: the slot is decided (execute once contiguous)."""

    slot: int
    command: Command


@register_message(sender=UINT, slots=FrozenSetCodec(UINT))
@dataclass(frozen=True, slots=True)
class SkipAnnounce:
    """Replica -> all: the listed owned slots will never be used (no-ops)."""

    sender: int
    slots: FrozenSet[int]


class MenciusReplica(ProtocolKernel):
    """A Mencius replica on the simulated substrate."""

    protocol_name = "mencius"

    def __init__(self, node_id: int, sim: Simulator, network: Network, quorums: QuorumSystem,
                 state_machine: StateMachine, cost_model: Optional[CostModel] = None) -> None:
        super().__init__(node_id, sim, network, quorums, state_machine, cost_model)
        self.n = quorums.n
        self.committed: Dict[int, Optional[Command]] = {}
        #: per-slot ack collection; Mencius commits only after *all* peers
        #: answered, so the tracker threshold is the cluster size.
        self._acks: Dict[int, QuorumTracker] = {}
        self._pending: Dict[int, Command] = {}
        self._next_own_slot = node_id
        self._used_own_slots: Set[int] = set()
        #: own slots this replica decided never to use (announced to peers).
        self._own_skipped: Set[int] = set()
        #: slots other owners announced they will never use.
        self._skipped_by_others: Set[int] = set()
        self._next_execute = 0
        #: highest slot this replica has seen mentioned anywhere; execution
        #: lagging behind it is the catch-up trigger.
        self._max_seen_slot = -1

    # ----------------------------------------------------------- client path

    def propose(self, command: Command) -> None:
        """Place ``command`` in this replica's next owned slot and replicate it."""
        slot = self._allocate_slot()
        self.stats.slots_proposed += 1
        self._pending[slot] = command
        self._acks[slot] = QuorumTracker(self.n, extra_votes=1)
        self._used_own_slots.add(slot)
        self._max_seen_slot = max(self._max_seen_slot, slot)
        proposal = SlotPropose(slot=slot, command=command)
        self.broadcast(proposal, include_self=False,
                       size_bytes=64 + command.payload_size)
        self.track_retransmit(("slot", slot), proposal,
                              size_bytes=64 + command.payload_size,
                              tracker=self._acks[slot])

    def _allocate_slot(self) -> int:
        """Next slot owned by this replica, at or after its allocation cursor."""
        slot = self._next_own_slot
        self._next_own_slot += self.n
        return slot

    # ------------------------------------------------------ message handling

    @handles(SlotPropose)
    def _on_propose(self, src: int, message: SlotPropose) -> None:
        """Peer side: skip own empty smaller slots, then acknowledge.

        Seeing a proposal for slot ``s`` means this replica should not later
        use an owned slot below ``s`` (it would delay delivery of ``s``), so it
        marks those slots as skipped and announces them to everyone.
        """
        self._max_seen_slot = max(self._max_seen_slot, message.slot)
        newly_skipped: Set[int] = set()
        while self._next_own_slot < message.slot:
            skipped = self._allocate_slot()
            self._own_skipped.add(skipped)
            newly_skipped.add(skipped)
            self.stats.slots_skipped += 1
        self.send(src, SlotAck(slot=message.slot, sender=self.node_id))
        if newly_skipped:
            self.broadcast(SkipAnnounce(sender=self.node_id, slots=frozenset(newly_skipped)),
                           include_self=False)
        self._execute_ready()

    @handles(SlotAck)
    def _on_ack(self, src: int, message: SlotAck) -> None:
        """Slot owner: commit once *all* peers acknowledged (slowest-node bound)."""
        acks = self._acks.get(message.slot)
        if acks is None or message.slot not in self._pending:
            return
        if not acks.vote(src):
            return
        command = self._pending.pop(message.slot)
        del self._acks[message.slot]
        self.resolve_retransmit(("slot", message.slot))
        self.stats.slots_committed += 1
        self.record_decided(command.command_id, DecisionKind.SLOW)
        self.broadcast(SlotCommit(slot=message.slot, command=command),
                       size_bytes=64 + command.payload_size)

    @handles(SlotCommit)
    def _on_commit(self, src: int, message: SlotCommit) -> None:
        """Every replica: record the decided slot and execute the log in order."""
        self.committed[message.slot] = message.command
        self._max_seen_slot = max(self._max_seen_slot, message.slot)
        self._execute_ready()

    @handles(SkipAnnounce)
    def _on_skip(self, src: int, message: SkipAnnounce) -> None:
        """Record slots another owner will never use."""
        self._skipped_by_others |= set(message.slots)
        if message.slots:
            self._max_seen_slot = max(self._max_seen_slot, max(message.slots))
        self._execute_ready()

    def _slot_resolved(self, slot: int) -> bool:
        """Whether ``slot`` is known to be either committed or permanently skipped."""
        if slot in self.committed:
            return True
        owner = slot % self.n
        if owner == self.node_id:
            if slot in self._own_skipped:
                return True
            # Own slots below the allocation cursor that were never used are
            # implicitly skipped (they can never be allocated again).
            return slot < self._next_own_slot and slot not in self._used_own_slots
        return slot in self._skipped_by_others

    def _execute_ready(self) -> None:
        """Execute the global log contiguously, treating skipped slots as no-ops."""
        while True:
            slot = self._next_execute
            if slot in self.committed:
                command = self.committed[slot]
                if command is not None and not self.has_executed(command.command_id):
                    self.execute_command(command)
                self._next_execute += 1
                continue
            if self._slot_resolved(slot):
                self._next_execute += 1
                continue
            break
        self.note_progress_gap()

    # --------------------------------------------------------------- catch-up

    def catchup_need(self):
        """Stuck when slots at/after the execution cursor were seen elsewhere."""
        if self._max_seen_slot >= self._next_execute:
            return (self._next_execute, ())
        return None

    def catchup_supply(self, cursor, want):
        """Replay commits at/after the cursor, plus the skips resolving gaps."""
        supplies = [SlotCommit(slot=slot, command=self.committed[slot])
                    for slot in sorted(self.committed)
                    if slot >= cursor and self.committed[slot] is not None]
        horizon = min(self._max_seen_slot + 1, cursor + 1024)
        skipped = frozenset(slot for slot in range(cursor, horizon)
                            if slot not in self.committed and self._slot_resolved(slot))
        if skipped:
            supplies.append(SkipAnnounce(sender=self.node_id, slots=skipped))
        return supplies
