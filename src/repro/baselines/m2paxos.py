"""M2Paxos: ownership-based multi-leader Generalized Consensus (DSN 2016).

M2Paxos partitions the command space by key: each key has (at most) one
*owner* replica, and only the owner orders commands on that key.  A command
on an owned key needs a single accept round on a classic quorum (2 delays).
A command on a key owned by another replica is *forwarded* to the owner,
adding a wide-area hop — the effect the paper blames for M2Paxos' degradation
as the conflict rate grows (conflicting commands all hit the same shared keys
and most replicas are not their owners).  A command on an un-owned key first
runs an ownership-acquisition round, then the accept round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.consensus.ballots import Ballot
from repro.consensus.command import Command, CommandId
from repro.consensus.interface import ConsensusReplica, DecisionKind
from repro.consensus.quorums import QuorumSystem
from repro.kvstore.state_machine import StateMachine
from repro.sim.costs import CostModel
from repro.sim.network import Network
from repro.sim.simulator import Simulator

#: A per-key log position is identified by ``(key, index)``.
KeySlot = Tuple[str, int]


# --------------------------------------------------------------------- wire


@dataclass(frozen=True)
class AcquireOwnership:
    """Requester -> all: ask to become the owner of ``key`` at ``epoch``."""

    key: str
    epoch: int
    requester: int


@dataclass(frozen=True)
class AcquireReply:
    """Voter -> requester: grant or refuse the ownership request."""

    key: str
    epoch: int
    granted: bool
    current_owner: Optional[int]


@dataclass(frozen=True)
class ForwardCommand:
    """Non-owner -> owner: please order this command on your key."""

    command: Command


@dataclass(frozen=True)
class AcceptCommand:
    """Owner -> all: accept ``command`` at per-key position ``index``."""

    key: str
    index: int
    command: Command
    owner: int
    epoch: int


@dataclass(frozen=True)
class AcceptCommandReply:
    """Replica -> owner: acknowledgement of a per-key accept."""

    key: str
    index: int
    epoch: int


@dataclass(frozen=True)
class DecideCommand:
    """Owner -> all: the command at ``(key, index)`` is decided."""

    key: str
    index: int
    command: Command
    owner: int
    epoch: int


@dataclass
class _PendingAccept:
    """Owner-side bookkeeping for an in-flight per-key accept round."""

    key: str
    index: int
    command: Command
    epoch: int
    acks: Set[int] = field(default_factory=set)
    decided: bool = False


@dataclass
class _PendingAcquire:
    """Requester-side bookkeeping for an ownership-acquisition round."""

    key: str
    epoch: int
    grants: Set[int] = field(default_factory=set)
    refusals: Set[int] = field(default_factory=set)
    queued: List[Command] = field(default_factory=list)
    done: bool = False


@dataclass
class M2PaxosStats:
    """Counters surfaced to the harness."""

    commands_forwarded: int = 0
    acquisitions: int = 0
    acquisition_failures: int = 0
    local_decisions: int = 0


class M2PaxosReplica(ConsensusReplica):
    """An M2Paxos replica on the simulated substrate."""

    protocol_name = "m2paxos"

    def __init__(self, node_id: int, sim: Simulator, network: Network, quorums: QuorumSystem,
                 state_machine: StateMachine, cost_model: Optional[CostModel] = None) -> None:
        super().__init__(node_id, sim, network, quorums, state_machine, cost_model)
        self.owners: Dict[str, int] = {}
        self.epochs: Dict[str, int] = {}
        self._next_index: Dict[str, int] = {}
        self._pending_accepts: Dict[KeySlot, _PendingAccept] = {}
        self._pending_acquires: Dict[str, _PendingAcquire] = {}
        self._decided: Dict[KeySlot, Command] = {}
        self._next_execute: Dict[str, int] = {}
        self.stats = M2PaxosStats()

    # ----------------------------------------------------------- client path

    def propose(self, command: Command) -> None:
        """Order a command: locally if owner, via acquisition or forwarding otherwise."""
        key = command.key
        owner = self.owners.get(key)
        if owner == self.node_id:
            self._lead(command)
        elif owner is None:
            self._acquire_then_lead(command)
        else:
            self.stats.commands_forwarded += 1
            self.send(owner, ForwardCommand(command=command),
                      size_bytes=64 + command.payload_size)

    def _lead(self, command: Command) -> None:
        """Owner path: one accept round on a classic quorum."""
        key = command.key
        index = self._next_index.get(key, 0)
        self._next_index[key] = index + 1
        self.stats.local_decisions += 1
        epoch = self.epochs.get(key, 0)
        pending = _PendingAccept(key=key, index=index, command=command, epoch=epoch)
        pending.acks.add(self.node_id)
        self._pending_accepts[(key, index)] = pending
        self.broadcast(AcceptCommand(key=key, index=index, command=command,
                                     owner=self.node_id, epoch=epoch),
                       include_self=False, size_bytes=64 + command.payload_size)

    def _acquire_then_lead(self, command: Command) -> None:
        """No owner known: run an ownership-acquisition round, queueing the command."""
        key = command.key
        pending = self._pending_acquires.get(key)
        if pending is not None and not pending.done:
            pending.queued.append(command)
            return
        epoch = self.epochs.get(key, 0) + 1
        self.epochs[key] = epoch
        self.stats.acquisitions += 1
        pending = _PendingAcquire(key=key, epoch=epoch, queued=[command])
        pending.grants.add(self.node_id)
        self._pending_acquires[key] = pending
        self.broadcast(AcquireOwnership(key=key, epoch=epoch, requester=self.node_id),
                       include_self=False)

    # ------------------------------------------------------ message handling

    def handle_message(self, src: int, message: object) -> None:
        """Dispatch an incoming M2Paxos message."""
        if isinstance(message, AcquireOwnership):
            self._on_acquire(src, message)
        elif isinstance(message, AcquireReply):
            self._on_acquire_reply(src, message)
        elif isinstance(message, ForwardCommand):
            self._on_forward(src, message)
        elif isinstance(message, AcceptCommand):
            self._on_accept(src, message)
        elif isinstance(message, AcceptCommandReply):
            self._on_accept_reply(src, message)
        elif isinstance(message, DecideCommand):
            self._on_decide(src, message)
        else:
            raise TypeError(f"unexpected message type {type(message).__name__}")

    # ownership ---------------------------------------------------------------

    def _on_acquire(self, src: int, message: AcquireOwnership) -> None:
        """Vote on an ownership request: grant newer epochs for unowned/loser keys."""
        key = message.key
        current_epoch = self.epochs.get(key, 0)
        if message.epoch > current_epoch:
            self.epochs[key] = message.epoch
            self.owners[key] = message.requester
            self.send(src, AcquireReply(key=key, epoch=message.epoch, granted=True,
                                        current_owner=message.requester))
        else:
            self.send(src, AcquireReply(key=key, epoch=message.epoch, granted=False,
                                        current_owner=self.owners.get(key)))

    def _on_acquire_reply(self, src: int, message: AcquireReply) -> None:
        """Requester: become owner on a majority of grants, otherwise forward."""
        pending = self._pending_acquires.get(message.key)
        if pending is None or pending.done or pending.epoch != message.epoch:
            return
        if message.granted:
            pending.grants.add(src)
        else:
            pending.refusals.add(src)
        if len(pending.grants) >= self.quorums.classic:
            pending.done = True
            self.owners[message.key] = self.node_id
            for command in pending.queued:
                self._lead(command)
            return
        if len(pending.refusals) > self.quorums.n - self.quorums.classic:
            # Majority can no longer be reached: someone else owns the key.
            pending.done = True
            self.stats.acquisition_failures += 1
            owner = message.current_owner
            for command in pending.queued:
                if owner is not None and owner != self.node_id:
                    self.owners[message.key] = owner
                    self.stats.commands_forwarded += 1
                    self.send(owner, ForwardCommand(command=command))
                else:
                    # Retry the acquisition with a higher epoch.
                    self._acquire_then_lead(command)

    def _on_forward(self, src: int, message: ForwardCommand) -> None:
        """Owner side of forwarding: order the command as if proposed locally."""
        key = message.command.key
        owner = self.owners.get(key)
        if owner == self.node_id:
            self._lead(message.command)
        elif owner is None:
            self._acquire_then_lead(message.command)
        else:
            self.send(owner, ForwardCommand(command=message.command))

    # ordering ----------------------------------------------------------------

    def _on_accept(self, src: int, message: AcceptCommand) -> None:
        """Replica side of a per-key accept: record the owner and acknowledge."""
        current_epoch = self.epochs.get(message.key, 0)
        if message.epoch < current_epoch:
            return
        self.epochs[message.key] = message.epoch
        self.owners[message.key] = message.owner
        self.send(src, AcceptCommandReply(key=message.key, index=message.index,
                                          epoch=message.epoch))

    def _on_accept_reply(self, src: int, message: AcceptCommandReply) -> None:
        """Owner: decide once a classic quorum acknowledged the accept."""
        pending = self._pending_accepts.get((message.key, message.index))
        if pending is None or pending.decided or pending.epoch != message.epoch:
            return
        pending.acks.add(src)
        if len(pending.acks) < self.quorums.classic:
            return
        pending.decided = True
        self.record_decided(pending.command.command_id, DecisionKind.FAST)
        self.broadcast(DecideCommand(key=pending.key, index=pending.index,
                                     command=pending.command, owner=self.node_id,
                                     epoch=pending.epoch),
                       size_bytes=64 + pending.command.payload_size)

    def _on_decide(self, src: int, message: DecideCommand) -> None:
        """Every replica: record the decision and execute the per-key log in order."""
        self.owners[message.key] = message.owner
        if message.epoch > self.epochs.get(message.key, 0):
            self.epochs[message.key] = message.epoch
        self._decided[(message.key, message.index)] = message.command
        if message.index >= self._next_index.get(message.key, 0):
            self._next_index[message.key] = message.index + 1
        self._execute_ready(message.key)

    def _execute_ready(self, key: str) -> None:
        """Execute decided commands of ``key`` contiguously by index."""
        index = self._next_execute.get(key, 0)
        while (key, index) in self._decided:
            command = self._decided[(key, index)]
            if not self.has_executed(command.command_id):
                self.execute_command(command)
            index += 1
        self._next_execute[key] = index
