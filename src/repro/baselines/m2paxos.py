"""M2Paxos: ownership-based multi-leader Generalized Consensus (DSN 2016).

M2Paxos partitions the command space by key: each key has (at most) one
*owner* replica, and only the owner orders commands on that key.  A command
on an owned key needs a single accept round on a classic quorum (2 delays).
A command on a key owned by another replica is *forwarded* to the owner,
adding a wide-area hop — the effect the paper blames for M2Paxos' degradation
as the conflict rate grows (conflicting commands all hit the same shared keys
and most replicas are not their owners).  A command on an un-owned key first
runs an ownership-acquisition round, then the accept round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.consensus.command import Command, CommandId
from repro.consensus.interface import DecisionKind
from repro.consensus.quorums import QuorumSystem
from repro.kvstore.state_machine import StateMachine
from repro.runtime.codec import BOOL, STRING, UINT, OptionalCodec, SeqCodec, TupleCodec
from repro.runtime.fields import COMMAND
from repro.runtime.kernel import ProtocolKernel, QuorumTracker, handles
from repro.runtime.registry import register_message
from repro.sim.costs import CostModel
from repro.sim.network import Network
from repro.sim.simulator import Simulator

#: A per-key log position is identified by ``(key, index)``.
KeySlot = Tuple[str, int]

#: Base delay before re-attempting a failed ownership acquisition.  The
#: actual delay is ``base * attempt + stagger * node_id`` with ``stagger =
#: base / (n + 1)``: strictly increasing in the attempt count and distinct
#: across nodes for every (attempt, node) combination (the node stagger can
#: never bridge a full attempt step), so simultaneous contenders retry at
#: distinct times — the earliest wins while the others observe the new owner
#: and forward instead of re-contending.  This is what breaks the symmetric
#: acquisition livelock.  The base exceeds the widest one-way delay of the
#: paper's topologies so a retry round completes before the next contender
#: wakes up.
ACQUIRE_BACKOFF_BASE_MS = 400.0

#: Placeholder operation for gap-filling decides (never executed).
NOOP_OPERATION = "__noop__"


# --------------------------------------------------------------------- wire


@register_message(key=STRING, epoch=UINT, requester=UINT, next_execute=UINT)
@dataclass(frozen=True, slots=True)
class AcquireOwnership:
    """Requester -> all: ask to become the owner of ``key`` at ``epoch``.

    ``next_execute`` is the requester's per-key execution watermark: voters
    use it to report only the decided positions the requester may be missing.
    """

    key: str
    epoch: int
    requester: int
    next_execute: int = 0


@register_message(key=STRING, epoch=UINT, granted=BOOL,
                  current_owner=OptionalCodec(UINT), next_index=UINT,
                  accepted=SeqCodec(TupleCodec(UINT, UINT, COMMAND)),
                  decided=SeqCodec(TupleCodec(UINT, COMMAND)))
@dataclass(frozen=True, slots=True)
class AcquireReply:
    """Voter -> requester: grant or refuse the ownership request.

    ``next_index`` is the voter's view of the first unused per-key position
    (covering both decided commands and accepts it has acknowledged).  A new
    owner starts ordering at the maximum hint over its grant quorum; because
    any decided position was acknowledged by a classic quorum, quorum
    intersection guarantees the new owner never reuses a position a previous
    owner may have decided.

    ``accepted`` carries the voter's acknowledged-but-not-yet-decided
    commands for the key as ``(index, epoch, command)`` tuples, and
    ``decided`` the voter's decided commands at positions at or above the
    requester's execution watermark as ``(index, command)`` tuples.  The new
    owner adopts reported decisions directly and re-proposes reported
    accepts at their original positions under its higher epoch.  Every
    position a previous owner decided was acknowledged by a classic quorum,
    and each acknowledging voter either still stores the accept, has since
    learned the decision, or is the requester itself (which merges its own
    local state); the grant quorum intersects that ack quorum, so every
    possibly-decided position is reported to the new owner through one of
    those channels.  A position reported by no grant voter therefore can
    never be decided by anyone — any future ack quorum would need a voter
    that already moved past the old epoch — and is safely filled with a
    no-op.  Without gap filling, an acked-but-undecided position would
    stall the key's in-order execution everywhere, forever.
    """

    key: str
    epoch: int
    granted: bool
    current_owner: Optional[int]
    next_index: int = 0
    accepted: Tuple = ()
    decided: Tuple = ()


@register_message(command=COMMAND, hops=UINT)
@dataclass(frozen=True, slots=True)
class ForwardCommand:
    """Non-owner -> owner: please order this command on your key.

    ``hops`` counts how many times the command has been relayed.  Ownership
    beliefs learned from refusal gossip can be mutually stale after a split
    acquisition vote (replica A believes B owns the key while B believes A
    does), which would bounce a forward between them forever; once ``hops``
    reaches the cluster size the receiving replica treats its belief as
    stale and runs a fresh acquisition instead of relaying again.
    """

    command: Command
    hops: int = 0


@register_message(key=STRING, index=UINT, command=COMMAND, owner=UINT, epoch=UINT)
@dataclass(frozen=True, slots=True)
class AcceptCommand:
    """Owner -> all: accept ``command`` at per-key position ``index``."""

    key: str
    index: int
    command: Command
    owner: int
    epoch: int


@register_message(key=STRING, index=UINT, epoch=UINT)
@dataclass(frozen=True, slots=True)
class AcceptCommandReply:
    """Replica -> owner: acknowledgement of a per-key accept."""

    key: str
    index: int
    epoch: int


@register_message(key=STRING, index=UINT, epoch=UINT, current_epoch=UINT,
                  current_owner=OptionalCodec(UINT))
@dataclass(frozen=True, slots=True)
class AcceptNack:
    """Replica -> stale owner: the accept's epoch is obsolete.

    Without this message a deposed owner's in-flight accept round would stall
    forever (acceptors silently dropped stale accepts) and the command would
    never execute anywhere — the liveness hole behind the three-way
    contention livelock.  The nack carries the current epoch/owner so the
    deposed owner can re-route the command.
    """

    key: str
    index: int
    epoch: int
    current_epoch: int
    current_owner: Optional[int]


@register_message(key=STRING, index=UINT, command=COMMAND, owner=UINT, epoch=UINT)
@dataclass(frozen=True, slots=True)
class DecideCommand:
    """Owner -> all: the command at ``(key, index)`` is decided."""

    key: str
    index: int
    command: Command
    owner: int
    epoch: int


@dataclass
class _PendingAccept:
    """Owner-side bookkeeping for an in-flight per-key accept round."""

    key: str
    index: int
    command: Command
    epoch: int
    acks: QuorumTracker = field(default_factory=QuorumTracker.unreachable)
    decided: bool = False


@dataclass
class _PendingAcquire:
    """Requester-side bookkeeping for an ownership-acquisition round."""

    key: str
    epoch: int
    grants: QuorumTracker = field(default_factory=QuorumTracker.unreachable)
    refusals: QuorumTracker = field(default_factory=QuorumTracker.unreachable)
    queued: List[Command] = field(default_factory=list)
    done: bool = False
    #: highest-epoch acked-but-undecided command reported per index.
    recovered: Dict[int, Tuple[int, Command]] = field(default_factory=dict)
    #: decided commands reported per index by grant voters.
    decided: Dict[int, Command] = field(default_factory=dict)


class M2PaxosReplica(ProtocolKernel):
    """An M2Paxos replica on the simulated substrate."""

    protocol_name = "m2paxos"

    def __init__(self, node_id: int, sim: Simulator, network: Network, quorums: QuorumSystem,
                 state_machine: StateMachine, cost_model: Optional[CostModel] = None) -> None:
        super().__init__(node_id, sim, network, quorums, state_machine, cost_model)
        self.owners: Dict[str, int] = {}
        self.epochs: Dict[str, int] = {}
        self._next_index: Dict[str, int] = {}
        self._pending_accepts: Dict[KeySlot, _PendingAccept] = {}
        self._pending_acquires: Dict[str, _PendingAcquire] = {}
        #: decided commands per key, keyed by per-key position.
        self._decided: Dict[str, Dict[int, Command]] = {}
        self._next_execute: Dict[str, int] = {}
        #: highest per-key accept index this replica has acknowledged; fed
        #: back to new owners through AcquireReply.next_index.
        self._acked_index: Dict[str, int] = {}
        #: acknowledged accepts per key (highest epoch per position),
        #: reported to new owners so acked-but-undecided positions can be
        #: re-proposed; keyed by key so an ownership vote only scans the
        #: contested key's bucket, not the whole run history.
        self._accepted: Dict[str, Dict[int, Tuple[int, Command]]] = {}
        #: ids of commands this replica has seen decided at some position
        #: (guards against re-proposing a command that already has a slot).
        self._decided_ids: Set[CommandId] = set()
        self._noop_seq = 0
        #: commands parked per key while an acquisition backoff timer runs.
        self._backoff_queue: Dict[str, List[Command]] = {}
        #: per-key count of failed acquisition attempts (drives the backoff).
        self._acquire_attempts: Dict[str, int] = {}
        #: ids of commands this replica has led itself; a duplicated forward
        #: (chaos duplication fault, retransmitted ForwardCommand) must not
        #: burn a second per-key position.
        self._led_ids: Set[CommandId] = set()
        #: highest decided index seen per key, and the keys whose execution
        #: currently lags behind it — the catch-up trigger, maintained in
        #: O(1) per decide so the probe never scans all keys.
        self._max_decided: Dict[str, int] = {}
        self._gap_keys: Set[str] = set()

    # ----------------------------------------------------------- client path

    def propose(self, command: Command) -> None:
        """Order a command: locally if owner, via acquisition or forwarding otherwise."""
        key = command.key
        owner = self.owners.get(key)
        if owner == self.node_id:
            self._lead(command)
        elif owner is None:
            self._acquire_then_lead(command)
        else:
            self.stats.commands_forwarded += 1
            self.send(owner, ForwardCommand(command=command),
                      size_bytes=64 + command.payload_size)

    def _next_index_hint(self, key: str) -> int:
        """First per-key position this replica believes to be unused."""
        acked = self._acked_index.get(key)
        next_index = self._next_index.get(key, 0)
        if acked is not None and acked + 1 > next_index:
            return acked + 1
        return next_index

    def _lead(self, command: Command) -> None:
        """Owner path: one accept round on a classic quorum."""
        if command.command_id in self._decided_ids:
            # Already decided at some position (e.g. a re-routed command that
            # made it through before the re-route arrived); leading it again
            # would only waste a slot.
            return
        if command.command_id in self._led_ids:
            return
        self._led_ids.add(command.command_id)
        key = command.key
        index = self._next_index.get(key, 0)
        self._next_index[key] = index + 1
        self.stats.local_decisions += 1
        self._lead_at(key, index, command)

    def _lead_at(self, key: str, index: int, command: Command) -> None:
        """Run the accept round for ``command`` at an explicit position."""
        epoch = self.epochs.get(key, 0)
        pending = _PendingAccept(key=key, index=index, command=command, epoch=epoch,
                                 acks=QuorumTracker(self.quorums.classic, extra_votes=1))
        self._pending_accepts[(key, index)] = pending
        # The owner's implicit self-ack must be visible to acquisition
        # recovery exactly like a remote voter's ack, otherwise a grant
        # quorum containing (only) this node would fail to report the slot
        # and a new owner could no-op-fill a position that goes on to be
        # decided.
        self._accepted.setdefault(key, {})[index] = (epoch, command)
        acked = self._acked_index.get(key)
        if acked is None or index > acked:
            self._acked_index[key] = index
        accept = AcceptCommand(key=key, index=index, command=command,
                               owner=self.node_id, epoch=epoch)
        self.broadcast(accept, include_self=False,
                       size_bytes=64 + command.payload_size)
        self.track_retransmit(("accept", key, index), accept,
                              size_bytes=64 + command.payload_size,
                              tracker=pending.acks,
                              done=lambda p=pending: p.decided)

    def _acquire_then_lead(self, command: Command) -> None:
        """No owner known: run an ownership-acquisition round, queueing the command."""
        key = command.key
        backoff = self._backoff_queue.get(key)
        if backoff is not None:
            # A failed acquisition is waiting out its backoff; piggyback the
            # command instead of re-contending immediately.
            backoff.append(command)
            return
        pending = self._pending_acquires.get(key)
        if pending is not None and not pending.done:
            pending.queued.append(command)
            return
        epoch = self.epochs.get(key, 0) + 1
        self.epochs[key] = epoch
        self.stats.acquisitions += 1
        pending = _PendingAcquire(
            key=key, epoch=epoch, queued=[command],
            grants=QuorumTracker(self.quorums.classic, extra_votes=1),
            refusals=QuorumTracker(self.quorums.n - self.quorums.classic + 1))
        self._pending_acquires[key] = pending
        acquire = AcquireOwnership(key=key, epoch=epoch, requester=self.node_id,
                                   next_execute=self._next_execute.get(key, 0))
        self.broadcast(acquire, include_self=False)
        self.track_retransmit(
            ("acquire", key), acquire, done=lambda p=pending: p.done,
            voters=lambda p=pending: p.grants.voters() + p.refusals.voters())

    # ownership ---------------------------------------------------------------

    @handles(AcquireOwnership)
    def _on_acquire(self, src: int, message: AcquireOwnership) -> None:
        """Vote on an ownership request: grant strictly newer epochs only.

        Granting only strictly higher epochs means at most one replica can
        collect a grant quorum per (key, epoch), which keeps concurrent
        owners impossible; convergence under symmetric contention is handled
        on the requester side by the staggered backoff.
        """
        key = message.key
        current_epoch = self.epochs.get(key, 0)
        if message.epoch > current_epoch or (
                message.epoch == current_epoch
                and self.owners.get(key) == message.requester):
            # Same-epoch requests are re-granted only to the exact requester
            # previously granted (a retransmitted AcquireOwnership whose
            # reply was lost); two same-epoch contenders still cannot both
            # collect a grant quorum.
            self.epochs[key] = message.epoch
            self.owners[key] = message.requester
            accepted_bucket = self._accepted.get(key) or {}
            decided_bucket = self._decided.get(key) or {}
            accepted = tuple((index, epoch, command)
                             for index, (epoch, command) in accepted_bucket.items()
                             if index not in decided_bucket)
            decided = tuple((index, command)
                            for index, command in decided_bucket.items()
                            if index >= message.next_execute)
            self.send(src, AcquireReply(key=key, epoch=message.epoch, granted=True,
                                        current_owner=message.requester,
                                        next_index=self._next_index_hint(key),
                                        accepted=accepted, decided=decided))
        else:
            self.send(src, AcquireReply(key=key, epoch=message.epoch, granted=False,
                                        current_owner=self.owners.get(key)))

    @handles(AcquireReply)
    def _on_acquire_reply(self, src: int, message: AcquireReply) -> None:
        """Requester: become owner on a majority of grants, otherwise back off."""
        pending = self._pending_acquires.get(message.key)
        if pending is None or pending.done or pending.epoch != message.epoch:
            return
        key = message.key
        if message.granted:
            pending.grants.vote(src)
            if message.next_index > self._next_index.get(key, 0):
                self._next_index[key] = message.next_index
            for index, epoch, command in message.accepted:
                known = pending.recovered.get(index)
                if known is None or epoch > known[0]:
                    pending.recovered[index] = (epoch, command)
            for index, command in message.decided:
                pending.decided.setdefault(index, command)
        else:
            pending.refusals.vote(src)
        if pending.grants.reached:
            pending.done = True
            if self.epochs.get(key, 0) != pending.epoch:
                # While our round was in flight we granted a strictly newer
                # epoch to another contender; claiming ownership now would
                # put two owners at the same live epoch (our accepts would be
                # stamped with the newer epoch).  Abandon the stale win and
                # route the queued commands by current knowledge instead.
                self.stats.acquisition_failures += 1
                owner = self.owners.get(key)
                if owner is not None and owner != self.node_id:
                    self._acquire_attempts.pop(key, None)
                    for command in pending.queued:
                        self.stats.commands_forwarded += 1
                        self.send(owner, ForwardCommand(command=command),
                                  size_bytes=64 + command.payload_size)
                else:
                    self._schedule_acquire_retry(key, list(pending.queued))
                return
            self._acquire_attempts.pop(key, None)
            self.owners[key] = self.node_id
            self._adopt_acquired_state(key, pending)
            recovered_ids = self._recover_gaps(key, pending)
            for command in pending.queued:
                if command.command_id not in recovered_ids:
                    self._lead(command)
            return
        if pending.refusals.reached:
            # Majority can no longer be reached this epoch.
            pending.done = True
            self.stats.acquisition_failures += 1
            owner = message.current_owner
            if owner is not None and owner != self.node_id:
                self.owners[key] = owner
                self._acquire_attempts.pop(key, None)
                for command in pending.queued:
                    self.stats.commands_forwarded += 1
                    self.send(owner, ForwardCommand(command=command),
                              size_bytes=64 + command.payload_size)
                return
            # No owner known (symmetric contention): retry after a backoff
            # that is strictly longer for higher node ids, so exactly one
            # contender re-acquires first and the rest observe its ownership.
            self._schedule_acquire_retry(key, list(pending.queued))

    def _adopt_acquired_state(self, key: str, pending: _PendingAcquire) -> None:
        """Fold own and grant-reported knowledge into the new owner's view.

        The requester is itself a grant voter, so its locally acked accepts
        and index watermark count toward the quorum-intersection coverage;
        decisions reported by voters are adopted outright (they are final).
        """
        decided_bucket = self._decided.setdefault(key, {})
        for index, (epoch, command) in (self._accepted.get(key) or {}).items():
            if index in decided_bucket:
                continue
            known = pending.recovered.get(index)
            if known is None or epoch > known[0]:
                pending.recovered[index] = (epoch, command)
        hint = self._next_index_hint(key)
        if hint > self._next_index.get(key, 0):
            self._next_index[key] = hint
        accepted_bucket = self._accepted.get(key)
        for index, command in pending.decided.items():
            if index not in decided_bucket:
                decided_bucket[index] = command
                self._decided_ids.add(command.command_id)
                if accepted_bucket is not None:
                    accepted_bucket.pop(index, None)
            if index >= self._next_index.get(key, 0):
                self._next_index[key] = index + 1
        if pending.decided:
            self._execute_ready(key)

    def _recover_gaps(self, key: str, pending: _PendingAcquire) -> Set[CommandId]:
        """Re-propose or no-op-fill undecided positions below the index hint.

        Returns the ids of re-proposed commands so the caller does not lead
        them a second time from its own queue.

        Positions a deposed owner acked on some quorum are re-proposed with
        the reported command (if a previous owner decided the position, the
        grant quorum intersects its ack quorum, so the identical command is
        re-decided there).  Positions no grant voter reported can never be
        decided by anyone — every future ack quorum would need a voter that
        already moved past the old epoch — so they are filled with a no-op
        that advances execution without touching the state machine.
        """
        recovered_ids: Set[CommandId] = set()
        decided_bucket = self._decided.get(key) or {}
        next_index = self._next_index.get(key, 0)
        for index in range(self._next_execute.get(key, 0), next_index):
            if index in decided_bucket or (key, index) in self._pending_accepts:
                continue
            recovered = pending.recovered.get(index)
            if recovered is not None and recovered[1].command_id not in self._decided_ids:
                recovered_ids.add(recovered[1].command_id)
                self._lead_at(key, index, recovered[1])
            else:
                self._noop_seq += 1
                noop = Command(command_id=(-(self.node_id + 1), self._noop_seq),
                               key=key, operation=NOOP_OPERATION, value=None,
                               origin=self.node_id, payload_size=0)
                self._lead_at(key, index, noop)
        return recovered_ids

    def _schedule_acquire_retry(self, key: str, commands: List[Command]) -> None:
        """Park ``commands`` and retry the acquisition after a staggered delay."""
        if not commands:
            return
        backoff = self._backoff_queue.get(key)
        if backoff is not None:
            backoff.extend(commands)
            return
        attempt = self._acquire_attempts.get(key, 0) + 1
        self._acquire_attempts[key] = attempt
        self.stats.acquisition_backoffs += 1
        self._backoff_queue[key] = list(commands)
        stagger = ACQUIRE_BACKOFF_BASE_MS / (self.quorums.n + 1)
        delay = ACQUIRE_BACKOFF_BASE_MS * attempt + stagger * self.node_id
        self.set_timer(delay, lambda: self._retry_after_backoff(key))

    def _retry_after_backoff(self, key: str) -> None:
        """Backoff expired: re-route the parked commands with fresh knowledge."""
        commands = self._backoff_queue.pop(key, None)
        if not commands:
            return
        for command in commands:
            # May lead (we since became owner), forward (a winner emerged),
            # or start a fresh, higher-epoch acquisition.
            self.propose(command)

    @handles(ForwardCommand)
    def _on_forward(self, src: int, message: ForwardCommand) -> None:
        """Owner side of forwarding: order the command as if proposed locally."""
        key = message.command.key
        owner = self.owners.get(key)
        if owner == self.node_id:
            self._lead(message.command)
        elif owner is None:
            self._acquire_then_lead(message.command)
        elif owner == src or message.hops >= self.quorums.n:
            # The supposed owner bounced the command back to us (mutual stale
            # beliefs after a split vote) or the forward has cycled through
            # the cluster: our ownership knowledge is wrong, so stop relaying
            # and settle the key with a fresh, higher-epoch acquisition.
            del self.owners[key]
            self._acquire_then_lead(message.command)
        else:
            self.send(owner, ForwardCommand(command=message.command,
                                            hops=message.hops + 1),
                      size_bytes=64 + message.command.payload_size)

    # ordering ----------------------------------------------------------------

    @handles(AcceptCommand)
    def _on_accept(self, src: int, message: AcceptCommand) -> None:
        """Replica side of a per-key accept: record the owner and acknowledge.

        Stale-epoch accepts are answered with an explicit nack (instead of
        being dropped) so a deposed owner can re-route its in-flight
        commands; otherwise they would never execute anywhere.
        """
        key = message.key
        current_epoch = self.epochs.get(key, 0)
        if message.epoch < current_epoch:
            self.send(src, AcceptNack(key=key, index=message.index, epoch=message.epoch,
                                      current_epoch=current_epoch,
                                      current_owner=self.owners.get(key)))
            return
        self.epochs[key] = message.epoch
        self.owners[key] = message.owner
        acked = self._acked_index.get(key)
        if acked is None or message.index > acked:
            self._acked_index[key] = message.index
        bucket = self._accepted.setdefault(key, {})
        stored = bucket.get(message.index)
        if stored is None or message.epoch >= stored[0]:
            bucket[message.index] = (message.epoch, message.command)
        self.send(src, AcceptCommandReply(key=key, index=message.index,
                                          epoch=message.epoch))

    @handles(AcceptNack)
    def _on_accept_nack(self, src: int, message: AcceptNack) -> None:
        """Deposed owner: drop the stale accept round and re-route its command."""
        pending = self._pending_accepts.get((message.key, message.index))
        if pending is None or pending.decided or pending.epoch != message.epoch:
            return
        del self._pending_accepts[(message.key, message.index)]
        self.resolve_retransmit(("accept", message.key, message.index))
        self.stats.accepts_preempted += 1
        key = message.key
        if message.current_epoch > self.epochs.get(key, 0):
            self.epochs[key] = message.current_epoch
            if message.current_owner is not None and message.current_owner != self.node_id:
                self.owners[key] = message.current_owner
            elif self.owners.get(key) == self.node_id:
                # We no longer own the key at the current epoch.
                del self.owners[key]
        self._reroute_preempted(key, message.index, pending.command)

    def _reroute_preempted(self, key: str, index: int, command: Command) -> None:
        """Give a command whose accept round was superseded a new path.

        If this replica meanwhile re-acquired the key, the accept is re-run
        at the SAME position (so no execution gap is left behind); otherwise
        the command is re-proposed, which forwards it to the current owner
        or starts a fresh acquisition.  A command already decided somewhere
        needs nothing further.
        """
        if command.command_id in self._decided_ids:
            return
        if self.owners.get(key) == self.node_id and index not in (self._decided.get(key) or {}):
            self._lead_at(key, index, command)
        else:
            # The command gets a genuinely new round; forget the old lead so
            # the duplicate guard does not swallow the re-proposal.
            self._led_ids.discard(command.command_id)
            self.propose(command)

    @handles(AcceptCommandReply)
    def _on_accept_reply(self, src: int, message: AcceptCommandReply) -> None:
        """Owner: decide once a classic quorum acknowledged the accept.

        A round whose epoch has been superseded (this replica granted or
        learned a newer epoch while replies were in flight) is dropped and
        its command re-routed instead of being decided at the stale epoch.
        """
        pending = self._pending_accepts.get((message.key, message.index))
        if pending is None or pending.decided or pending.epoch != message.epoch:
            return
        if pending.epoch < self.epochs.get(message.key, 0):
            del self._pending_accepts[(message.key, message.index)]
            self.resolve_retransmit(("accept", message.key, message.index))
            self.stats.accepts_preempted += 1
            self._reroute_preempted(message.key, message.index, pending.command)
            return
        if not pending.acks.vote(src):
            return
        pending.decided = True
        self.resolve_retransmit(("accept", message.key, message.index))
        self.record_decided(pending.command.command_id, DecisionKind.FAST)
        self.broadcast(DecideCommand(key=pending.key, index=pending.index,
                                     command=pending.command, owner=self.node_id,
                                     epoch=pending.epoch),
                       size_bytes=64 + pending.command.payload_size)

    @handles(DecideCommand)
    def _on_decide(self, src: int, message: DecideCommand) -> None:
        """Every replica: record the decision and execute the per-key log in order."""
        if message.epoch >= self.epochs.get(message.key, 0):
            self.epochs[message.key] = message.epoch
            self.owners[message.key] = message.owner
        bucket = self._decided.setdefault(message.key, {})
        existing = bucket.get(message.index)
        if existing is None or (existing.operation == NOOP_OPERATION
                                and message.command.operation != NOOP_OPERATION
                                and message.index >= self._next_execute.get(message.key, 0)):
            # Per-slot decisions are unique by quorum intersection; the only
            # permitted replacement is a real command overtaking a gap-filling
            # no-op that has not been executed past yet, which keeps every
            # replica's slot assignment convergent.
            bucket[message.index] = message.command
            self._decided_ids.add(message.command.command_id)
        accepted_bucket = self._accepted.get(message.key)
        if accepted_bucket is not None:
            accepted_bucket.pop(message.index, None)
        if message.index >= self._next_index.get(message.key, 0):
            self._next_index[message.key] = message.index + 1
        if message.index > self._max_decided.get(message.key, -1):
            self._max_decided[message.key] = message.index
        self._execute_ready(message.key)

    def _execute_ready(self, key: str) -> None:
        """Execute decided commands of ``key`` contiguously by index."""
        bucket = self._decided.get(key)
        if not bucket:
            return
        index = self._next_execute.get(key, 0)
        while index in bucket:
            command = bucket[index]
            if (command.operation != NOOP_OPERATION
                    and not self.has_executed(command.command_id)):
                self.execute_command(command)
            index += 1
        self._next_execute[key] = index
        if index <= self._max_decided.get(key, -1):
            self._gap_keys.add(key)
            self.note_progress_gap()
        else:
            self._gap_keys.discard(key)

    # catch-up ----------------------------------------------------------------

    def catchup_need(self):
        """Stuck when a key's execution lags behind its highest decided index."""
        if not self._gap_keys:
            return None
        tokens = []
        for key in sorted(self._gap_keys):
            next_execute = self._next_execute.get(key, 0)
            if next_execute > self._max_decided.get(key, -1):
                self._gap_keys.discard(key)
                continue
            tokens.append(f"{key}:{next_execute}")
            if len(tokens) >= 32:
                break
        if not tokens:
            return None
        return (0, tuple(tokens))

    def catchup_supply(self, cursor, want):
        """Replay decides at/after the requested per-key watermarks."""
        supplies = []
        for token in want:
            key, _, raw = token.rpartition(":")
            try:
                start = int(raw)
            except ValueError:
                continue
            bucket = self._decided.get(key)
            if not bucket:
                continue
            owner = self.owners.get(key)
            epoch = self.epochs.get(key, 0)
            if owner is None:
                # Ownership unknown here; a wrong owner hint self-heals via
                # the forward/hops machinery, the decided log is what counts.
                owner, epoch = self.node_id, 0
            replayed = 0
            for index in sorted(bucket):
                if index < start:
                    continue
                supplies.append(DecideCommand(key=key, index=index,
                                              command=bucket[index],
                                              owner=owner, epoch=epoch))
                replayed += 1
                if replayed >= 16:
                    break
        return supplies
