"""EPaxos: Egalitarian Paxos (Moraru et al., SOSP 2013).

EPaxos is the closest competitor to CAESAR in the paper's evaluation.  Every
replica can lead commands; a command's *attributes* are a dependency set
(every interfering command the quorum knows about) and a sequence number.

* **Fast path** (2 delays): the command leader pre-accepts the command with
  its locally computed attributes; if a fast quorum replies with *identical*
  attributes, the command commits immediately.  This is exactly the condition
  CAESAR relaxes — any disagreement on dependencies forces EPaxos onto the
  slow path.
* **Slow path** (4 delays): the leader unions the replies' attributes and runs
  a classic Paxos accept round before committing.
* **Execution**: committed commands form a dependency graph; a command is
  executed by finding strongly connected components of its transitive
  dependency closure and executing them in reverse topological order,
  breaking ties inside a component by sequence number.  The graph analysis is
  the CPU cost the paper blames for EPaxos' degradation under high conflict
  rates; it is charged to the replica's simulated CPU here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.consensus.ballots import Ballot
from repro.consensus.command import Command, CommandId
from repro.consensus.interface import DecisionKind
from repro.consensus.quorums import QuorumSystem, epaxos_fast_quorum_size
from repro.kvstore.state_machine import StateMachine
from repro.runtime.codec import BOOL, UINT
from repro.runtime.fields import (
    BALLOT,
    COMMAND,
    INSTANCE_ID,
    INSTANCE_ID_SET,
    OPTIONAL_COMMAND,
    OPTIONAL_STRING,
)
from repro.runtime.kernel import ProtocolKernel, QuorumTracker, handles
from repro.runtime.registry import register_message
from repro.sim.costs import CostModel
from repro.sim.network import Network
from repro.sim.simulator import Simulator

#: An EPaxos instance is identified by ``(leader_replica, instance_number)``.
InstanceId = Tuple[int, int]


class InstanceStatus(enum.Enum):
    """Lifecycle of an EPaxos instance on one replica."""

    PRE_ACCEPTED = "pre-accepted"
    ACCEPTED = "accepted"
    COMMITTED = "committed"
    EXECUTED = "executed"
    NOOP = "noop"


@dataclass
class Instance:
    """A replica's knowledge about one EPaxos instance."""

    instance_id: InstanceId
    command: Optional[Command]
    seq: int
    deps: Set[InstanceId]
    status: InstanceStatus
    ballot: Ballot
    _sorted_deps: Optional[List[InstanceId]] = None
    _sorted_for: Optional[Set[InstanceId]] = None

    def deps_sorted(self) -> List[InstanceId]:
        """Sorted view of ``deps``, cached until the set is reassigned.

        ``deps`` is only ever replaced wholesale (never mutated in place), so
        identity of the set object is a sound cache key.  The execution graph
        walk re-visits blocked instances many times; sorting their dependency
        lists once instead of per visit is a large constant-factor win.
        """
        deps = self.deps
        if self._sorted_for is not deps:
            self._sorted_deps = sorted(deps)
            self._sorted_for = deps
        return self._sorted_deps


# --------------------------------------------------------------------- wire


@register_message(instance_id=INSTANCE_ID, command=COMMAND, seq=UINT,
                  deps=INSTANCE_ID_SET, ballot=BALLOT)
@dataclass(frozen=True, slots=True)
class PreAccept:
    """Leader -> replicas: phase-1 proposal with locally computed attributes."""

    instance_id: InstanceId
    command: Command
    seq: int
    deps: FrozenSet[InstanceId]
    ballot: Ballot


@register_message(instance_id=INSTANCE_ID, seq=UINT, deps=INSTANCE_ID_SET,
                  ballot=BALLOT, changed=BOOL)
@dataclass(frozen=True, slots=True)
class PreAcceptReply:
    """Replica -> leader: possibly augmented attributes."""

    instance_id: InstanceId
    seq: int
    deps: FrozenSet[InstanceId]
    ballot: Ballot
    changed: bool


@register_message(instance_id=INSTANCE_ID, command=COMMAND, seq=UINT,
                  deps=INSTANCE_ID_SET, ballot=BALLOT)
@dataclass(frozen=True, slots=True)
class Accept:
    """Leader -> replicas: slow-path accept with unioned attributes."""

    instance_id: InstanceId
    command: Command
    seq: int
    deps: FrozenSet[InstanceId]
    ballot: Ballot


@register_message(instance_id=INSTANCE_ID, ballot=BALLOT)
@dataclass(frozen=True, slots=True)
class AcceptReply:
    """Replica -> leader: slow-path acknowledgement."""

    instance_id: InstanceId
    ballot: Ballot


@register_message(instance_id=INSTANCE_ID, command=OPTIONAL_COMMAND, seq=UINT,
                  deps=INSTANCE_ID_SET)
@dataclass(frozen=True, slots=True)
class Commit:
    """Leader -> replicas: final attributes of a committed instance."""

    instance_id: InstanceId
    command: Optional[Command]
    seq: int
    deps: FrozenSet[InstanceId]


@register_message(instance_id=INSTANCE_ID, ballot=BALLOT)
@dataclass(frozen=True, slots=True)
class Prepare:
    """Recovery prepare for an instance whose leader is suspected."""

    instance_id: InstanceId
    ballot: Ballot


@register_message(instance_id=INSTANCE_ID, ballot=BALLOT, known=BOOL,
                  command=OPTIONAL_COMMAND, seq=UINT, deps=INSTANCE_ID_SET,
                  status=OPTIONAL_STRING)
@dataclass(frozen=True, slots=True)
class PrepareReply:
    """Reply to a recovery prepare with the replica's current instance state."""

    instance_id: InstanceId
    ballot: Ballot
    known: bool
    command: Optional[Command] = None
    seq: int = 0
    deps: FrozenSet[InstanceId] = frozenset()
    status: Optional[str] = None


@dataclass
class _LeaderState:
    """Book-keeping the command leader keeps for an in-flight instance."""

    instance_id: InstanceId
    command: Command
    phase: str  # "preaccept" | "accept" | "done"
    seq: int
    deps: Set[InstanceId]
    original_seq: int
    original_deps: Set[InstanceId]
    ballot: Ballot
    votes: QuorumTracker = field(default_factory=QuorumTracker.unreachable)
    went_slow: bool = False
    started_at: float = 0.0


@dataclass
class _RecoveryState:
    """Book-keeping for a recovery (explicit prepare) attempt."""

    instance_id: InstanceId
    ballot: Ballot
    votes: QuorumTracker = field(default_factory=QuorumTracker.unreachable)
    dispatched: bool = False


class EPaxosReplica(ProtocolKernel):
    """An EPaxos replica on the simulated substrate.

    Args:
        node_id: replica index.
        sim / network / quorums / state_machine / cost_model: shared substrate.
        recovery_enabled: whether to run the failure detector and explicit
            prepare when a peer is suspected.
    """

    protocol_name = "epaxos"

    def __init__(self, node_id: int, sim: Simulator, network: Network, quorums: QuorumSystem,
                 state_machine: StateMachine, cost_model: Optional[CostModel] = None,
                 recovery_enabled: bool = True, heartbeat_every_ms: float = 100.0,
                 suspect_after_ms: float = 600.0) -> None:
        super().__init__(node_id, sim, network, quorums, state_machine, cost_model)
        self.instances: Dict[InstanceId, Instance] = {}
        self._conflict_index: Dict[str, Set[InstanceId]] = {}
        self._leader_states: Dict[InstanceId, _LeaderState] = {}
        self._recoveries: Dict[InstanceId, _RecoveryState] = {}
        self._next_instance = 0
        self._executed: Set[InstanceId] = set()
        self._unexecuted_committed: Set[InstanceId] = set()
        self._command_instance: Dict[CommandId, InstanceId] = {}
        self.fast_quorum = epaxos_fast_quorum_size(quorums.n)
        self.recovery_enabled = recovery_enabled
        if recovery_enabled:
            self.use_failure_detector(heartbeat_every_ms, suspect_after_ms,
                                      self._on_suspect)

    # ----------------------------------------------------------- client path

    def propose(self, command: Command) -> None:
        """Lead a new instance for ``command`` (phase 1, PreAccept)."""
        instance_id = (self.node_id, self._next_instance)
        self._next_instance += 1
        deps = self._interfering_instances(command, exclude=instance_id)
        seq = self._next_seq(deps)
        self.consume_cpu(self.cost_model.dependency_cost(len(deps)))
        instance = Instance(instance_id=instance_id, command=command, seq=seq,
                            deps=set(deps), status=InstanceStatus.PRE_ACCEPTED,
                            ballot=Ballot.initial(self.node_id))
        self._record_instance(instance)
        self._command_instance[command.command_id] = instance_id
        state = _LeaderState(instance_id=instance_id, command=command, phase="preaccept",
                             seq=seq, deps=set(deps), original_seq=seq,
                             original_deps=set(deps), ballot=instance.ballot,
                             votes=QuorumTracker(self.fast_quorum, extra_votes=1),
                             started_at=self.sim.now)
        self._leader_states[instance_id] = state
        pre_accept = PreAccept(instance_id=instance_id, command=command, seq=seq,
                               deps=frozenset(deps), ballot=instance.ballot)
        self.broadcast(pre_accept, include_self=False,
                       size_bytes=64 + command.payload_size)
        self.track_retransmit(("lead", instance_id), pre_accept,
                              size_bytes=64 + command.payload_size,
                              tracker=state.votes,
                              done=lambda s=state: s.phase == "done")

    # --------------------------------------------------------------- helpers

    def _interfering_instances(self, command: Command, exclude: InstanceId) -> Set[InstanceId]:
        """Instances known locally whose command conflicts with ``command``."""
        result: Set[InstanceId] = set()
        for instance_id in self._conflict_index.get(command.key, ()):  # same key
            if instance_id == exclude:
                continue
            instance = self.instances[instance_id]
            if instance.command is not None and instance.command.conflicts_with(command):
                result.add(instance_id)
        return result

    def _next_seq(self, deps: Set[InstanceId]) -> int:
        """1 + the maximum sequence number among the dependencies."""
        max_seq = 0
        for dep in deps:
            instance = self.instances.get(dep)
            if instance is not None and instance.seq > max_seq:
                max_seq = instance.seq
        return max_seq + 1

    def _record_instance(self, instance: Instance) -> None:
        """Store an instance and index it for conflict lookups."""
        self.instances[instance.instance_id] = instance
        if instance.command is not None:
            self._conflict_index.setdefault(instance.command.key, set()).add(instance.instance_id)
            self._command_instance.setdefault(instance.command.command_id, instance.instance_id)

    # phase 1 -----------------------------------------------------------------

    @handles(PreAccept)
    def _on_pre_accept(self, src: int, message: PreAccept) -> None:
        """Replica side of PreAccept: augment attributes with local knowledge."""
        existing = self.instances.get(message.instance_id)
        if existing is not None and existing.status in (InstanceStatus.COMMITTED,
                                                        InstanceStatus.EXECUTED):
            return
        if existing is not None and existing.ballot > message.ballot:
            return
        deps = set(message.deps) | self._interfering_instances(message.command,
                                                               exclude=message.instance_id)
        seq = max(message.seq, self._next_seq(deps))
        self.consume_cpu(self.cost_model.dependency_cost(len(deps)))
        changed = deps != set(message.deps) or seq != message.seq
        instance = Instance(instance_id=message.instance_id, command=message.command,
                            seq=seq, deps=deps, status=InstanceStatus.PRE_ACCEPTED,
                            ballot=message.ballot)
        self._record_instance(instance)
        self.send(src, PreAcceptReply(instance_id=message.instance_id, seq=seq,
                                      deps=frozenset(deps), ballot=message.ballot,
                                      changed=changed))

    @handles(PreAcceptReply)
    def _on_pre_accept_reply(self, src: int, message: PreAcceptReply) -> None:
        """Leader side of phase 1: decide between the fast and slow paths."""
        state = self._leader_states.get(message.instance_id)
        if state is None or state.phase != "preaccept" or state.ballot != message.ballot:
            return
        # The leader itself counts towards the fast quorum (the tracker's
        # implicit extra vote).
        if not state.votes.vote(src, message):
            return
        replies = state.votes.payloads()
        unchanged = all(not reply.changed and
                        set(reply.deps) == state.original_deps and
                        reply.seq == state.original_seq
                        for reply in replies)
        if unchanged:
            self._commit_instance(state, state.original_seq, state.original_deps, fast=True)
        else:
            merged_deps: Set[InstanceId] = set(state.original_deps)
            merged_seq = state.original_seq
            for reply in replies:
                merged_deps |= set(reply.deps)
                merged_seq = max(merged_seq, reply.seq)
            state.seq = merged_seq
            state.deps = merged_deps
            state.phase = "accept"
            state.went_slow = True
            state.votes = QuorumTracker(self.quorums.classic, extra_votes=1)
            instance = self.instances[state.instance_id]
            instance.seq = merged_seq
            instance.deps = set(merged_deps)
            instance.status = InstanceStatus.ACCEPTED
            accept = Accept(instance_id=state.instance_id, command=state.command,
                            seq=merged_seq, deps=frozenset(merged_deps),
                            ballot=state.ballot)
            self.broadcast(accept, include_self=False,
                           size_bytes=64 + state.command.payload_size)
            # Supersede the PreAccept round: resends now carry the Accept.
            self.track_retransmit(("lead", state.instance_id), accept,
                                  size_bytes=64 + state.command.payload_size,
                                  tracker=state.votes,
                                  done=lambda s=state: s.phase == "done")

    # phase 2 (slow path) -----------------------------------------------------

    @handles(Accept)
    def _on_accept(self, src: int, message: Accept) -> None:
        """Replica side of the slow-path accept."""
        existing = self.instances.get(message.instance_id)
        if existing is not None and existing.ballot > message.ballot:
            return
        if existing is not None and existing.status in (InstanceStatus.COMMITTED,
                                                        InstanceStatus.EXECUTED):
            return
        instance = Instance(instance_id=message.instance_id, command=message.command,
                            seq=message.seq, deps=set(message.deps),
                            status=InstanceStatus.ACCEPTED, ballot=message.ballot)
        self._record_instance(instance)
        self.send(src, AcceptReply(instance_id=message.instance_id, ballot=message.ballot))

    @handles(AcceptReply)
    def _on_accept_reply(self, src: int, message: AcceptReply) -> None:
        """Leader side of the slow-path accept: commit on a classic quorum."""
        state = self._leader_states.get(message.instance_id)
        if state is None or state.phase != "accept" or state.ballot != message.ballot:
            return
        if not state.votes.vote(src, message):
            return
        self._commit_instance(state, state.seq, state.deps, fast=False)

    # commit & execution ------------------------------------------------------

    def _commit_instance(self, state: _LeaderState, seq: int, deps: Set[InstanceId],
                         fast: bool) -> None:
        """Finalize an instance at the leader and broadcast the commit."""
        state.phase = "done"
        if fast:
            self.stats.fast_decisions += 1
            kind = DecisionKind.FAST
        else:
            self.stats.slow_decisions += 1
            kind = DecisionKind.SLOW
        command_id = state.command.command_id
        self.record_decided(command_id, kind)
        self.record_phase_time(command_id, "propose", self.sim.now - state.started_at)
        instance = self.instances[state.instance_id]
        instance.seq = seq
        instance.deps = set(deps)
        instance.status = InstanceStatus.COMMITTED
        self._unexecuted_committed.add(state.instance_id)
        self.resolve_retransmit(("lead", state.instance_id))
        self.broadcast(Commit(instance_id=state.instance_id, command=state.command,
                              seq=seq, deps=frozenset(deps)),
                       include_self=False, size_bytes=64 + state.command.payload_size)
        self._try_execute()

    @handles(Commit)
    def _on_commit(self, src: int, message: Commit) -> None:
        """Replica side of commit: record final attributes and try to execute."""
        instance = self.instances.get(message.instance_id)
        if instance is None:
            instance = Instance(instance_id=message.instance_id, command=message.command,
                                seq=message.seq, deps=set(message.deps),
                                status=InstanceStatus.COMMITTED,
                                ballot=Ballot.initial(message.instance_id[0]))
            self._record_instance(instance)
        else:
            if instance.status is InstanceStatus.EXECUTED:
                return
            instance.command = instance.command or message.command
            instance.seq = message.seq
            instance.deps = set(message.deps)
            instance.status = InstanceStatus.COMMITTED
        self._unexecuted_committed.add(message.instance_id)
        # A commit learned from elsewhere (recovery) supersedes a local round.
        self.resolve_retransmit(("lead", message.instance_id))
        self._try_execute()

    def _try_execute(self) -> None:
        """Execute every committed instance whose dependency closure is committed.

        Implements EPaxos' graph-based execution: strongly connected
        components of the committed dependency graph are executed in reverse
        topological order, commands inside a component by sequence number.
        """
        progress = True
        while progress:
            progress = False
            for instance_id in list(self._unexecuted_committed):
                if instance_id in self._executed:
                    self._unexecuted_committed.discard(instance_id)
                    continue
                component_order = self._execution_order(instance_id)
                if component_order is None:
                    continue
                for ready_id in component_order:
                    ready = self.instances[ready_id]
                    if ready_id in self._executed:
                        continue
                    self._executed.add(ready_id)
                    self._unexecuted_committed.discard(ready_id)
                    ready.status = InstanceStatus.EXECUTED
                    if ready.command is not None:
                        self.execute_command(ready.command)
                progress = True
        self.note_progress_gap()

    # catch-up ----------------------------------------------------------------

    @staticmethod
    def _instance_token(instance_id: InstanceId) -> str:
        return f"{instance_id[0]}:{instance_id[1]}"

    def catchup_need(self):
        """Stuck when committed instances wait on non-committed dependencies."""
        if not self._unexecuted_committed:
            return None
        want: Set[str] = set()
        for instance_id in self._unexecuted_committed:
            instance = self.instances.get(instance_id)
            if instance is None:
                continue
            for dep in instance.deps:
                if dep in self._executed:
                    continue
                known = self.instances.get(dep)
                if known is None or known.status in (InstanceStatus.PRE_ACCEPTED,
                                                     InstanceStatus.ACCEPTED):
                    want.add(self._instance_token(dep))
                    if len(want) >= 32:
                        break
            if len(want) >= 32:
                break
        if not want:
            return None
        return (0, tuple(sorted(want)))

    def catchup_supply(self, cursor, want):
        """Replay Commits for the requested instances this replica has decided."""
        supplies = []
        for token in want:
            leader, _, num = token.partition(":")
            try:
                instance_id = (int(leader), int(num))
            except ValueError:
                continue
            instance = self.instances.get(instance_id)
            if instance is None or instance.status not in (InstanceStatus.COMMITTED,
                                                           InstanceStatus.EXECUTED):
                continue
            supplies.append(Commit(instance_id=instance_id, command=instance.command,
                                   seq=instance.seq, deps=frozenset(instance.deps)))
        return supplies

    def _execution_order(self, root: InstanceId) -> Optional[List[InstanceId]]:
        """Iterative Tarjan SCC over the committed closure of ``root``.

        Returns the execution order (dependencies first), or ``None`` when the
        closure still contains an uncommitted instance, in which case the root
        cannot be executed yet.
        """
        order: List[InstanceId] = []
        index: Dict[InstanceId, int] = {}
        lowlink: Dict[InstanceId, int] = {}
        on_stack: Set[InstanceId] = set()
        stack: List[InstanceId] = []
        counter = 0
        visited_count = 0
        instances = self.instances
        executed = self._executed

        # Each frame is (node, iterator over deps, last child visited).
        work: List[list] = [[root, None, None]]
        while work:
            frame = work[-1]
            node, dep_iter, last_child = frame
            if dep_iter is None:
                instance = instances.get(node)
                if instance is None or instance.status in (InstanceStatus.PRE_ACCEPTED,
                                                           InstanceStatus.ACCEPTED):
                    self.stats.graph_nodes_visited += visited_count
                    self.consume_cpu(self.cost_model.dependency_cost(visited_count))
                    return None
                index[node] = counter
                lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
                visited_count += 1
                if instance.status is InstanceStatus.EXECUTED:
                    frame[1] = iter(())
                else:
                    frame[1] = iter(instance.deps_sorted())
                dep_iter = frame[1]
            if last_child is not None:
                lowlink[node] = min(lowlink[node], lowlink[last_child])
                frame[2] = None
            advanced = False
            for dep in dep_iter:
                if dep in executed:
                    continue
                if dep not in index:
                    frame[2] = dep
                    work.append([dep, None, None])
                    advanced = True
                    break
                if dep in on_stack:
                    lowlink[node] = min(lowlink[node], index[dep])
            if advanced:
                continue
            # Node finished: pop its SCC if it is a root.
            if lowlink[node] == index[node]:
                component: List[InstanceId] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                component.sort(key=lambda iid: (instances[iid].seq, iid))
                order.extend(member for member in component if member not in executed)
            work.pop()
            if work:
                work[-1][2] = node

        self.stats.graph_nodes_visited += visited_count
        self.consume_cpu(self.cost_model.dependency_cost(visited_count))
        return order

    # recovery ---------------------------------------------------------------

    def _on_suspect(self, peer: int) -> None:
        """Recover instances led by a suspected replica via explicit prepare."""
        if not self.recovery_enabled:
            return
        alive_lower = sum(1 for node_id in self.network.node_ids
                          if node_id < self.node_id and node_id != peer)
        delay = 50.0 * (1 + alive_lower)
        self.set_timer(delay, lambda: self._recover_instances_of(peer))

    def _recover_instances_of(self, peer: int) -> None:
        for instance_id, instance in list(self.instances.items()):
            if instance_id[0] != peer:
                continue
            if instance.status in (InstanceStatus.COMMITTED, InstanceStatus.EXECUTED):
                continue
            self.stats.recoveries += 1
            ballot = instance.ballot.next_for(self.node_id)
            instance.ballot = ballot
            self._recoveries[instance_id] = _RecoveryState(
                instance_id=instance_id, ballot=ballot,
                votes=QuorumTracker(self.quorums.classic, extra_votes=1))
            self.broadcast(Prepare(instance_id=instance_id, ballot=ballot), include_self=False)

    @handles(Prepare)
    def _on_prepare(self, src: int, message: Prepare) -> None:
        instance = self.instances.get(message.instance_id)
        if instance is None:
            reply = PrepareReply(instance_id=message.instance_id, ballot=message.ballot,
                                 known=False)
        else:
            if instance.ballot > message.ballot:
                return
            instance.ballot = message.ballot
            reply = PrepareReply(instance_id=message.instance_id, ballot=message.ballot,
                                 known=True, command=instance.command, seq=instance.seq,
                                 deps=frozenset(instance.deps), status=instance.status.value)
        self.send(src, reply)

    @handles(PrepareReply)
    def _on_prepare_reply(self, src: int, message: PrepareReply) -> None:
        recovery = self._recoveries.get(message.instance_id)
        if recovery is None or recovery.dispatched or recovery.ballot != message.ballot:
            return
        if not recovery.votes.vote(src, message):
            return
        recovery.dispatched = True
        known = [reply for reply in recovery.votes.payloads() if reply.known]
        local = self.instances.get(message.instance_id)
        committed = [r for r in known if r.status in (InstanceStatus.COMMITTED.value,
                                                      InstanceStatus.EXECUTED.value)]
        accepted = [r for r in known if r.status == InstanceStatus.ACCEPTED.value]
        pre_accepted = [r for r in known if r.status == InstanceStatus.PRE_ACCEPTED.value]
        if committed:
            chosen = committed[0]
            self._adopt_commit(message.instance_id, chosen.command, chosen.seq, set(chosen.deps))
        elif accepted or pre_accepted or (local is not None and local.command is not None):
            source = (accepted or pre_accepted)
            if source:
                command = source[0].command
                seq = max(r.seq for r in source)
                deps: Set[InstanceId] = set()
                for r in source:
                    deps |= set(r.deps)
            else:
                command = local.command
                seq = local.seq
                deps = set(local.deps)
            state = _LeaderState(instance_id=message.instance_id, command=command,
                                 phase="accept", seq=seq, deps=deps, original_seq=seq,
                                 original_deps=set(deps), ballot=recovery.ballot,
                                 votes=QuorumTracker(self.quorums.classic, extra_votes=1),
                                 went_slow=True, started_at=self.sim.now)
            self._leader_states[message.instance_id] = state
            instance = Instance(instance_id=message.instance_id, command=command, seq=seq,
                                deps=set(deps), status=InstanceStatus.ACCEPTED,
                                ballot=recovery.ballot)
            self._record_instance(instance)
            self.broadcast(Accept(instance_id=message.instance_id, command=command, seq=seq,
                                  deps=frozenset(deps), ballot=recovery.ballot),
                           include_self=False)
        else:
            # Nobody knows the command: commit a no-op so execution is never blocked.
            self._adopt_commit(message.instance_id, None, 0, set())

    def _adopt_commit(self, instance_id: InstanceId, command: Optional[Command], seq: int,
                      deps: Set[InstanceId]) -> None:
        """Record and re-broadcast a commit learned during recovery."""
        instance = self.instances.get(instance_id)
        if instance is None:
            instance = Instance(instance_id=instance_id, command=command, seq=seq,
                                deps=set(deps), status=InstanceStatus.COMMITTED,
                                ballot=Ballot.initial(instance_id[0]))
            self._record_instance(instance)
        else:
            instance.command = instance.command or command
            instance.seq = seq
            instance.deps = set(deps)
            if instance.status is not InstanceStatus.EXECUTED:
                instance.status = InstanceStatus.COMMITTED
        if instance.status is InstanceStatus.COMMITTED:
            self._unexecuted_committed.add(instance_id)
        self.broadcast(Commit(instance_id=instance_id, command=command, seq=seq,
                              deps=frozenset(deps)), include_self=False)
        self._try_execute()

    # telemetry ---------------------------------------------------------------

    def slow_path_ratio(self) -> Optional[float]:
        """Fraction of locally proposed, completed commands decided on the slow path."""
        ratio = self.fast_path_ratio()
        if ratio is None:
            return None
        return 1.0 - ratio
