"""Multi-Paxos: single designated leader, totally ordered log.

The deployment model follows the paper's evaluation (Figure 7): one replica
is the designated leader (Ireland or Mumbai in the paper); clients submit
commands to their local replica, which forwards them to the leader; the
leader assigns consecutive log slots and replicates each slot with one accept
round to a majority; commits are broadcast and every replica executes the log
in slot order.  The client's latency therefore includes the forwarding hop
when it is not co-located with the leader — exactly the effect the paper
highlights when the leader is far away.

A minimal leader re-election (lowest live replica takes over after the
failure detector suspects the leader, re-proposing unchosen slots it knows
about) is included so the protocol keeps making progress in crash tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.consensus.ballots import Ballot
from repro.consensus.command import Command
from repro.consensus.interface import DecisionKind
from repro.consensus.quorums import QuorumSystem
from repro.kvstore.state_machine import StateMachine
from repro.runtime.codec import SINT, UINT, SeqCodec, TupleCodec
from repro.runtime.fields import BALLOT, COMMAND
from repro.runtime.kernel import ProtocolKernel, QuorumTracker, handles
from repro.runtime.registry import register_message
from repro.sim.costs import CostModel
from repro.sim.network import Network
from repro.sim.simulator import Simulator


# --------------------------------------------------------------------- wire


@register_message(command=COMMAND)
@dataclass(frozen=True, slots=True)
class ClientForward:
    """Non-leader replica -> leader: please order this client command."""

    command: Command


@register_message(slot=UINT, command=COMMAND, ballot=BALLOT)
@dataclass(frozen=True, slots=True)
class AcceptSlot:
    """Leader -> replicas: accept ``command`` in log position ``slot``."""

    slot: int
    command: Command
    ballot: Ballot


@register_message(slot=UINT, ballot=BALLOT)
@dataclass(frozen=True, slots=True)
class AcceptSlotReply:
    """Replica -> leader: acknowledgement of an accepted slot."""

    slot: int
    ballot: Ballot


@register_message(slot=UINT, command=COMMAND)
@dataclass(frozen=True, slots=True)
class CommitSlot:
    """Leader -> replicas: ``slot`` is chosen; execute in log order."""

    slot: int
    command: Command


@register_message(ballot=BALLOT, from_slot=UINT)
@dataclass(frozen=True, slots=True)
class LeaderPrepare:
    """New leader -> replicas: prepare for take-over with a higher ballot."""

    ballot: Ballot
    from_slot: int


@register_message(ballot=BALLOT, accepted=SeqCodec(TupleCodec(UINT, COMMAND)),
                  highest_slot=SINT)
@dataclass(frozen=True, slots=True)
class LeaderPrepareReply:
    """Replica -> new leader: accepted-but-uncommitted slots plus its log frontier."""

    ballot: Ballot
    accepted: tuple  # tuple of (slot, command)
    highest_slot: int = -1


@dataclass
class _SlotState:
    """Leader-side bookkeeping for an in-flight slot."""

    slot: int
    command: Command
    ballot: Ballot
    votes: QuorumTracker = field(default_factory=QuorumTracker.unreachable)
    committed: bool = False


class MultiPaxosReplica(ProtocolKernel):
    """A Multi-Paxos replica.

    Args:
        leader_id: index of the designated leader replica (defaults to 0; the
            Figure 7 experiments use the Ireland or Mumbai site).
        recovery_enabled: run a failure detector and elect a new leader when
            the current one is suspected.
    """

    protocol_name = "multipaxos"

    def __init__(self, node_id: int, sim: Simulator, network: Network, quorums: QuorumSystem,
                 state_machine: StateMachine, cost_model: Optional[CostModel] = None,
                 leader_id: int = 0, recovery_enabled: bool = True,
                 heartbeat_every_ms: float = 100.0, suspect_after_ms: float = 600.0) -> None:
        super().__init__(node_id, sim, network, quorums, state_machine, cost_model)
        self.leader_id = leader_id
        self.ballot = Ballot.initial(leader_id)
        self.log: Dict[int, Command] = {}
        self.committed: Dict[int, Command] = {}
        self._slot_states: Dict[int, _SlotState] = {}
        self._next_slot = 0
        self._next_execute = 0
        #: commands already assigned a slot here; a duplicated forward (chaos
        #: duplication fault, retransmitted ClientForward) must not burn a
        #: second slot.
        self._led_ids = set()
        #: highest slot known committed anywhere; execution lagging behind it
        #: is the catch-up trigger.
        self._max_committed = -1
        self.recovery_enabled = recovery_enabled
        self._election_votes: Optional[QuorumTracker] = None
        self._electing = False
        if recovery_enabled:
            self.use_failure_detector(heartbeat_every_ms, suspect_after_ms,
                                      self._on_suspect)

    @property
    def is_leader(self) -> bool:
        """Whether this replica currently acts as the designated leader."""
        return self.node_id == self.leader_id

    # ----------------------------------------------------------- client path

    def propose(self, command: Command) -> None:
        """Order a client command: lead it if leader, otherwise forward."""
        if self.is_leader:
            self._lead(command)
        else:
            self.stats.commands_forwarded += 1
            self.send(self.leader_id, ClientForward(command=command),
                      size_bytes=64 + command.payload_size)

    def _lead(self, command: Command) -> None:
        """Assign the next log slot and run the accept round."""
        if command.command_id in self._led_ids:
            return
        self._led_ids.add(command.command_id)
        slot = self._next_slot
        self._next_slot += 1
        self.stats.slots_proposed += 1
        state = _SlotState(slot=slot, command=command, ballot=self.ballot,
                           votes=QuorumTracker(self.quorums.classic, extra_votes=1))
        self._slot_states[slot] = state
        self.log[slot] = command
        accept = AcceptSlot(slot=slot, command=command, ballot=self.ballot)
        self.broadcast(accept, include_self=False, size_bytes=64 + command.payload_size)
        self.track_retransmit(("slot", slot), accept,
                              size_bytes=64 + command.payload_size,
                              tracker=state.votes, done=lambda s=state: s.committed)

    # ------------------------------------------------------ message handling

    @handles(ClientForward)
    def _on_forward(self, src: int, message: ClientForward) -> None:
        """Leader side of a forwarded client command."""
        if not self.is_leader:
            # Stale forwarding during an election: forward onwards.
            self.send(self.leader_id, message)
            return
        self._lead(message.command)

    @handles(AcceptSlot)
    def _on_accept(self, src: int, message: AcceptSlot) -> None:
        """Acceptor: store the slot value and acknowledge."""
        if message.ballot < self.ballot:
            return
        self.ballot = message.ballot
        self.leader_id = message.ballot.node_id
        self.log[message.slot] = message.command
        self.send(src, AcceptSlotReply(slot=message.slot, ballot=message.ballot))

    @handles(AcceptSlotReply)
    def _on_accept_reply(self, src: int, message: AcceptSlotReply) -> None:
        """Leader: commit the slot once a majority has accepted it."""
        state = self._slot_states.get(message.slot)
        if state is None or state.committed or state.ballot != message.ballot:
            return
        if not state.votes.vote(src):
            return
        state.committed = True
        self.resolve_retransmit(("slot", state.slot))
        self.stats.slots_committed += 1
        self.record_decided(state.command.command_id, DecisionKind.SLOW)
        self.broadcast(CommitSlot(slot=state.slot, command=state.command),
                       size_bytes=64 + state.command.payload_size)

    @handles(CommitSlot)
    def _on_commit(self, src: int, message: CommitSlot) -> None:
        """Every replica: record the chosen value and execute the log in order."""
        self.committed[message.slot] = message.command
        self.log[message.slot] = message.command
        self._max_committed = max(self._max_committed, message.slot)
        self._execute_ready()
        self.note_progress_gap()

    def _execute_ready(self) -> None:
        """Execute committed slots contiguously from the execution frontier."""
        while self._next_execute in self.committed:
            command = self.committed[self._next_execute]
            if not self.has_executed(command.command_id):
                self.execute_command(command)
            self._next_execute += 1

    # --------------------------------------------------------------- catch-up

    def catchup_need(self):
        """Stuck when a slot at/after the execution cursor committed elsewhere."""
        if self._max_committed >= self._next_execute:
            return (self._next_execute, ())
        return None

    def catchup_supply(self, cursor, want):
        """Replay every locally known commit at or after the cursor."""
        return [CommitSlot(slot=slot, command=self.committed[slot])
                for slot in sorted(self.committed) if slot >= cursor]

    # --------------------------------------------------------------- election

    def _on_suspect(self, peer: int) -> None:
        """Trigger a leader election when the current leader is suspected."""
        if peer != self.leader_id or not self.recovery_enabled:
            return
        live = [n for n in self.network.node_ids if n != peer]
        if self.node_id != min(live):
            return
        self._start_election()

    def _start_election(self) -> None:
        """Become leader: prepare with a higher ballot and collect accepted slots."""
        if self._electing:
            return
        self._electing = True
        self.stats.elections += 1
        self.ballot = Ballot(self.ballot.round + 1, self.node_id)
        self._election_votes = QuorumTracker(self.quorums.classic, extra_votes=1)
        self.broadcast(LeaderPrepare(ballot=self.ballot, from_slot=self._next_execute),
                       include_self=False)

    @handles(LeaderPrepare)
    def _on_leader_prepare(self, src: int, message: LeaderPrepare) -> None:
        if message.ballot < self.ballot:
            return
        self.ballot = message.ballot
        self.leader_id = message.ballot.node_id
        accepted = tuple((slot, command) for slot, command in sorted(self.log.items())
                         if slot >= message.from_slot and slot not in self.committed)
        highest = max(list(self.log.keys()) + list(self.committed.keys()), default=-1)
        self.send(src, LeaderPrepareReply(ballot=message.ballot, accepted=accepted,
                                          highest_slot=highest))

    @handles(LeaderPrepareReply)
    def _on_leader_prepare_reply(self, src: int, message: LeaderPrepareReply) -> None:
        if not self._electing or message.ballot != self.ballot:
            return
        if not self._election_votes.vote(src, message):
            return
        self._electing = False
        self.leader_id = self.node_id
        replies = self._election_votes.payloads()
        known_slots = ([self._next_slot - 1] +
                       list(self.log.keys()) + list(self.committed.keys()) +
                       [reply.highest_slot for reply in replies] +
                       [slot for reply in replies for slot, _ in reply.accepted])
        highest = max(known_slots, default=-1)
        self._next_slot = highest + 1
        # Re-propose every accepted-but-uncommitted slot reported by the quorum.
        for reply in replies:
            for slot, command in reply.accepted:
                if slot in self.committed or slot in self._slot_states:
                    continue
                state = _SlotState(slot=slot, command=command, ballot=self.ballot,
                                   votes=QuorumTracker(self.quorums.classic, extra_votes=1))
                self._slot_states[slot] = state
                self.log[slot] = command
                accept = AcceptSlot(slot=slot, command=command, ballot=self.ballot)
                self.broadcast(accept, include_self=False)
                self.track_retransmit(("slot", slot), accept, tracker=state.votes,
                                      done=lambda s=state: s.committed)
