"""Simulated process abstraction.

A :class:`Node` is one replica of a protocol.  It provides:

* message sending/broadcast through a :class:`~repro.runtime.transport.Transport`
  (by default the :class:`~repro.runtime.transport.SimulatorTransport` over the
  shared :class:`~repro.sim.network.Network`);
* a serial CPU: incoming messages are processed one at a time, each charging
  the cost given by the node's :class:`~repro.sim.costs.CostModel`, so that a
  node under load builds a queue and saturates (this is what bounds
  throughput in the Figure 8/9 experiments);
* timers (:meth:`set_timer`);
* crash and restart hooks used by the recovery experiment (Figure 12).

Protocol implementations subclass :class:`Node` and implement
:meth:`handle_message`.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.runtime.clock import Timer
from repro.runtime.transport import SimulatorTransport, Transport
from repro.sim.batching import BatchingConfig, MessageBatch
from repro.sim.costs import CostModel
from repro.sim.network import Network
from repro.sim.simulator import Simulator

__all__ = ["Node", "Timer"]


class Node:
    """Base class for all simulated replicas.

    Args:
        node_id: index of this node within the cluster (also its network address).
        sim: the shared simulator.
        network: the shared network; the node registers itself on construction.
        cost_model: CPU cost model; ``None`` means a default (cheap) model.
    """

    def __init__(self, node_id: int, sim: Simulator, network: Network,
                 cost_model: Optional[CostModel] = None,
                 batching: Optional[BatchingConfig] = None,
                 transport: Optional[Transport] = None) -> None:
        self.node_id = node_id
        self.sim = sim
        self.network = network
        self.cost_model = cost_model or CostModel()
        self.crashed = False
        #: virtual time of the most recent crash; the network drops in-flight
        #: messages that were sent before this instant.
        self.last_crashed_at = -1.0
        #: local-clock rate relative to virtual time: every timer delay is
        #: multiplied by this factor (1.0 = perfect clock; the nemesis clock
        #: skew fault raises or lowers it).
        self.timer_scale = 1.0
        self._cpu_free_at = 0.0
        self.cpu_busy_ms = 0.0
        self.messages_handled = 0
        # Resolved once: only the simulator clock exposes an event queue for
        # the handle-free dispatch push; other Clock backends (WallClock)
        # dispatch through the portable schedule() path.
        self._dispatch_queue = getattr(sim, "_queue", None)
        if transport is None:
            # The network acts as the transport factory: the simulated
            # Network hands out SimulatorTransports, a socket-world peer map
            # hands out AsyncioTransports — so protocol constructors never
            # name a backend.
            factory = getattr(network, "create_transport", None)
            transport = (factory(self, batching) if factory is not None
                         else SimulatorTransport(self, network, batching))
        self.transport = transport
        network.register(self)

    @property
    def batching(self) -> Optional[BatchingConfig]:
        """The transport's batching policy (``None`` when batching is off)."""
        return getattr(self.transport, "batching", None)

    # ------------------------------------------------------------------ I/O

    def send(self, dst: int, message: object, size_bytes: int = 64) -> None:
        """Send a message to another node through the transport.

        With batching enabled, the transport buffers the message per
        destination and flushes when the batching window expires or the batch
        fills up; self-addressed messages are never delayed by batching.
        """
        if self.crashed:
            return
        transport = self.transport
        direct = transport.send_direct
        if direct is not None:
            direct(self.node_id, dst, message, size_bytes=size_bytes)
            return
        transport.send(dst, message, size_bytes=size_bytes)

    def enable_batching(self, config: BatchingConfig) -> None:
        """Turn on per-destination batching for this node's outgoing messages."""
        self.transport.configure_batching(config)

    def flush_all_batches(self) -> None:
        """Flush every destination's buffered batch immediately."""
        self.transport.flush_all()

    def broadcast(self, message: object, include_self: bool = True, size_bytes: int = 64) -> None:
        """Send a message to every node in the cluster."""
        if self.crashed:
            return
        me = self.node_id
        direct = self.transport.send_direct
        if direct is not None:
            for dst in self.network.node_ids:
                if dst == me and not include_self:
                    continue
                direct(me, dst, message, size_bytes=size_bytes)
            return
        for dst in self.network.node_ids:
            if dst == me and not include_self:
                continue
            self.send(dst, message, size_bytes=size_bytes)

    def receive(self, src: int, message: object) -> None:
        """Entry point used by the network when a message arrives.

        The message is queued behind any CPU work already in progress, then
        dispatched to :meth:`handle_message`.  Message batches are unpacked
        here: the envelope costs one full message, each inner message a
        discounted marginal cost.
        """
        if self.crashed:
            return
        sim = self.sim
        local = src == self.node_id
        if isinstance(message, MessageBatch):
            factor = (self.batching.marginal_cost_factor
                      if self.batching is not None else 1.0)
            cost = self.cost_model.message_cost(message, local=local)
            cost += sum(self.cost_model.message_cost(inner, local=local) * factor
                        for inner in message.messages)
            dispatch, payload = self._dispatch_batch, message.messages
        else:
            # message_cost inlined: this branch runs once per simulated
            # message, and the model is three attribute reads.
            cost_model = self.cost_model
            cost = cost_model.per_type_ms.get(type(message).__name__,
                                              cost_model.default_cost_ms)
            if local:
                cost *= cost_model.self_message_factor
            dispatch, payload = self._dispatch_one, message
        now = sim.now
        start = now if now > self._cpu_free_at else self._cpu_free_at
        finish = start + cost
        self._cpu_free_at = finish
        self.cpu_busy_ms += cost
        # Dispatch events are never cancelled; the handle-free push skips an
        # Event allocation per message.  ``now + (finish - now)`` preserves
        # the exact float the delay-based schedule() produced.
        queue = self._dispatch_queue
        if queue is not None:
            queue.push_transient(now + (finish - now), dispatch, args=(src, payload))
        else:
            sim.schedule(finish - now, lambda: dispatch(src, payload))

    def _dispatch_one(self, src: int, message: object) -> None:
        """Run one queued message through the protocol handler."""
        if self.crashed:
            return
        self.messages_handled += 1
        self.handle_message(src, message)

    def _dispatch_batch(self, src: int, messages) -> None:
        """Run a queued batch of messages through the protocol handler."""
        if self.crashed:
            return
        for inner in messages:
            self.messages_handled += 1
            self.handle_message(src, inner)

    def consume_cpu(self, milliseconds: float) -> None:
        """Charge extra CPU time to this node (e.g. dependency-graph analysis)."""
        if milliseconds <= 0:
            return
        self._cpu_free_at = max(self._cpu_free_at, self.sim.now) + milliseconds
        self.cpu_busy_ms += milliseconds

    @property
    def cpu_backlog_ms(self) -> float:
        """How far in the future this node's CPU is already committed."""
        return max(0.0, self._cpu_free_at - self.sim.now)

    # ---------------------------------------------------------------- timers

    def set_timer(self, delay_ms: float, callback: Callable[[], None]) -> Timer:
        """Run ``callback`` after ``delay_ms`` of local-clock time unless cancelled or crashed.

        The delay is measured on the node's *local* clock: with a skewed
        ``timer_scale`` the timer fires earlier (fast clock) or later (slow
        clock) than the nominal delay.  ``timer_scale == 1.0`` multiplies
        exactly, so unskewed schedules are bit-identical.  Skew and
        crash-gating are applied here; the transport only maps the resulting
        delay onto its clock (event heap or event loop).
        """

        def fire() -> None:
            if not self.crashed:
                callback()

        return self.transport.set_timer(delay_ms * self.timer_scale, fire)

    # ----------------------------------------------------------- life cycle

    def crash(self) -> None:
        """Crash the node: it stops sending, receiving and firing timers.

        Messages already in flight towards this node are lost for good: the
        network compares its ``last_crashed_at`` against each message's send
        time, so a later restart never resurrects pre-crash traffic.
        """
        self.crashed = True
        self.last_crashed_at = self.sim.now
        self.on_crash()

    def restart(self) -> None:
        """Bring a crashed node back with whatever durable state the protocol kept."""
        self.crashed = False
        self._cpu_free_at = self.sim.now
        self.on_restart()

    # ------------------------------------------------------- protocol hooks

    def handle_message(self, src: int, message: object) -> None:
        """Process one message; implemented by protocol subclasses."""
        raise NotImplementedError

    def on_crash(self) -> None:
        """Hook invoked when the node crashes (default: nothing)."""

    def on_restart(self) -> None:
        """Hook invoked when the node restarts (default: nothing)."""
