"""Deterministic random number generation for the simulator.

All stochastic behaviour in the simulation (network jitter, message loss,
workload key selection, client think times) flows through a single seeded
generator so that experiments are exactly reproducible.
"""

from __future__ import annotations

import random
import zlib
from typing import Iterable


def stable_label(value: object) -> str:
    """Canonical, process-stable string form of one stream-key coordinate.

    Floats go through ``repr`` (shortest round-trip form, identical in every
    CPython process); everything else must already be a primitive with a
    stable ``str``.  Used to key per-cell RNG streams in parameter sweeps,
    where coordinates are mixed strings/numbers.
    """
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, bool) or value is None:
        return repr(value)
    if isinstance(value, (str, int)):
        return str(value)
    raise TypeError(f"unstable RNG stream label: {value!r} ({type(value).__name__})")


def derive_seed(base_seed: int, labels: Iterable[object]) -> int:
    """Derive a child seed from ``base_seed`` and a tuple of coordinates.

    The derivation must be identical in every interpreter process (sweep
    workers re-derive cell streams independently), so it uses CRC32 over the
    canonicalized coordinates rather than the per-process salted ``hash()``.
    Coordinates are joined with an ASCII unit separator so that composite
    keys cannot collide by concatenation (``("a", "bc")`` vs ``("ab", "c")``).
    """
    path = "\x1f".join(stable_label(label) for label in labels)
    return zlib.crc32(f"{base_seed}/{path}".encode()) & 0x7FFFFFFF


class DeterministicRandom:
    """A thin, purpose-named wrapper around :class:`random.Random`.

    Having a dedicated type makes it obvious in signatures that a component
    draws randomness from the simulation-owned stream rather than the global
    interpreter state.

    The sampling methods — ``uniform(low, high)``, ``expovariate(rate)``,
    ``random()``, ``randint(low, high)``, ``choice(seq)``, ``shuffle(seq)``
    and ``gauss(mu, sigma)`` — are bound directly from the underlying
    :class:`random.Random` at construction time: hot paths (network jitter is
    sampled once per message) pay a single bound-method call with no wrapper
    frame, at the cost of the methods not being overridable per subclass.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng = random.Random(seed)
        self.uniform = self._rng.uniform
        self.expovariate = self._rng.expovariate
        self.random = self._rng.random
        self.randint = self._rng.randint
        self.choice = self._rng.choice
        self.shuffle = self._rng.shuffle
        self.gauss = self._rng.gauss

    @property
    def seed(self) -> int:
        """The seed this generator was created with."""
        return self._seed

    def fork(self, label: str) -> "DeterministicRandom":
        """Derive an independent stream for a named sub-component.

        Deriving per-component streams keeps the draw sequences of unrelated
        components (e.g. network jitter vs. workload keys) independent, so
        adding draws in one place does not perturb the other.

        The derived seed must be identical in every interpreter process, so
        it is computed with CRC32 rather than ``hash()`` (string hashing is
        salted per process, which would make runs irreproducible).
        """
        return DeterministicRandom(derive_seed(self._seed, (label,)))

    def fork_cell(self, coordinates: Iterable[object]) -> "DeterministicRandom":
        """Derive the stream for one cell of a parameter sweep.

        ``coordinates`` is the cell's key — e.g. ``("fig9", "caesar", 0.1)``
        — canonicalized coordinate by coordinate, so a sweep cell receives
        the same stream whether it runs serially, in a worker process, or
        alone, and independent cells never share draws.
        """
        return DeterministicRandom(derive_seed(self._seed, coordinates))
