"""Deterministic random number generation for the simulator.

All stochastic behaviour in the simulation (network jitter, message loss,
workload key selection, client think times) flows through a single seeded
generator so that experiments are exactly reproducible.
"""

from __future__ import annotations

import random
import zlib


class DeterministicRandom:
    """A thin, purpose-named wrapper around :class:`random.Random`.

    Having a dedicated type makes it obvious in signatures that a component
    draws randomness from the simulation-owned stream rather than the global
    interpreter state.

    The sampling methods — ``uniform(low, high)``, ``expovariate(rate)``,
    ``random()``, ``randint(low, high)``, ``choice(seq)``, ``shuffle(seq)``
    and ``gauss(mu, sigma)`` — are bound directly from the underlying
    :class:`random.Random` at construction time: hot paths (network jitter is
    sampled once per message) pay a single bound-method call with no wrapper
    frame, at the cost of the methods not being overridable per subclass.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng = random.Random(seed)
        self.uniform = self._rng.uniform
        self.expovariate = self._rng.expovariate
        self.random = self._rng.random
        self.randint = self._rng.randint
        self.choice = self._rng.choice
        self.shuffle = self._rng.shuffle
        self.gauss = self._rng.gauss

    @property
    def seed(self) -> int:
        """The seed this generator was created with."""
        return self._seed

    def fork(self, label: str) -> "DeterministicRandom":
        """Derive an independent stream for a named sub-component.

        Deriving per-component streams keeps the draw sequences of unrelated
        components (e.g. network jitter vs. workload keys) independent, so
        adding draws in one place does not perturb the other.

        The derived seed must be identical in every interpreter process, so
        it is computed with CRC32 rather than ``hash()`` (string hashing is
        salted per process, which would make runs irreproducible).
        """
        derived_seed = zlib.crc32(f"{self._seed}/{label}".encode()) & 0x7FFFFFFF
        return DeterministicRandom(derived_seed)
