"""Deterministic random number generation for the simulator.

All stochastic behaviour in the simulation (network jitter, message loss,
workload key selection, client think times) flows through a single seeded
generator so that experiments are exactly reproducible.
"""

from __future__ import annotations

import random
from typing import Sequence, TypeVar

T = TypeVar("T")


class DeterministicRandom:
    """A thin, purpose-named wrapper around :class:`random.Random`.

    Having a dedicated type makes it obvious in signatures that a component
    draws randomness from the simulation-owned stream rather than the global
    interpreter state.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng = random.Random(seed)

    @property
    def seed(self) -> int:
        """The seed this generator was created with."""
        return self._seed

    def fork(self, label: str) -> "DeterministicRandom":
        """Derive an independent stream for a named sub-component.

        Deriving per-component streams keeps the draw sequences of unrelated
        components (e.g. network jitter vs. workload keys) independent, so
        adding draws in one place does not perturb the other.
        """
        derived_seed = hash((self._seed, label)) & 0x7FFFFFFF
        return DeterministicRandom(derived_seed)

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in ``[low, high]``."""
        return self._rng.uniform(low, high)

    def expovariate(self, rate: float) -> float:
        """Exponential inter-arrival sample with the given rate (per ms)."""
        return self._rng.expovariate(rate)

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._rng.random()

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return self._rng.randint(low, high)

    def choice(self, seq: Sequence[T]) -> T:
        """Uniformly pick one element from a non-empty sequence."""
        return self._rng.choice(seq)

    def shuffle(self, seq: list) -> None:
        """Shuffle a list in place."""
        self._rng.shuffle(seq)

    def gauss(self, mu: float, sigma: float) -> float:
        """Normal sample."""
        return self._rng.gauss(mu, sigma)
