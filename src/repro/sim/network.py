"""Simulated wide-area network.

The network delivers messages between registered nodes with per-pair one-way
delays derived from a :class:`repro.sim.topology.Topology`, optional gaussian
jitter, optional message loss, and optional partitions.  Crashed destination
nodes silently drop messages, exactly like a dead TCP peer would from the
sender's point of view (the sender never gets an error).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Set, Tuple

from repro.sim.simulator import Simulator
from repro.sim.topology import Topology


@dataclass
class NetworkConfig:
    """Tunables for the simulated network.

    Attributes:
        jitter_ms: standard deviation of gaussian jitter added to each one-way
            delay (clamped so delays never go below 5% of the nominal value).
        drop_probability: independent probability that a message is lost.
        min_delay_ms: hard floor for any one-way delay.
    """

    jitter_ms: float = 0.0
    drop_probability: float = 0.0
    min_delay_ms: float = 0.01


@dataclass
class NetworkStats:
    """Counters describing everything the network did during a run."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    messages_to_crashed: int = 0
    messages_partitioned: int = 0
    bytes_sent: int = 0
    per_type_sent: Dict[str, int] = field(default_factory=dict)


class Network:
    """Message-passing fabric connecting simulated nodes.

    Args:
        sim: the discrete-event simulator providing the clock.
        topology: per-pair latencies.
        config: jitter/loss configuration.
    """

    def __init__(self, sim: Simulator, topology: Topology, config: Optional[NetworkConfig] = None) -> None:
        self.sim = sim
        self.topology = topology
        self.config = config or NetworkConfig()
        self.stats = NetworkStats()
        self._nodes: Dict[int, "NodeLike"] = {}
        self._rng = sim.rng.fork("network")
        self._partitions: Set[Tuple[int, int]] = set()
        self._delay_override: Optional[Callable[[int, int, float], float]] = None

    def register(self, node: "NodeLike") -> None:
        """Attach a node so it can send and receive messages."""
        if node.node_id in self._nodes:
            raise ValueError(f"node {node.node_id} already registered")
        self._nodes[node.node_id] = node

    def node(self, node_id: int) -> "NodeLike":
        """Return the registered node with the given id."""
        return self._nodes[node_id]

    @property
    def node_ids(self) -> list:
        """All registered node ids, in registration order."""
        return list(self._nodes.keys())

    def set_delay_override(self, fn: Optional[Callable[[int, int, float], float]]) -> None:
        """Install a hook ``(src, dst, nominal_delay) -> delay`` for experiments."""
        self._delay_override = fn

    def partition(self, group_a: Set[int], group_b: Set[int]) -> None:
        """Cut connectivity between every node in ``group_a`` and every node in ``group_b``."""
        for a in group_a:
            for b in group_b:
                self._partitions.add((a, b))
                self._partitions.add((b, a))

    def heal_partitions(self) -> None:
        """Restore full connectivity."""
        self._partitions.clear()

    def is_partitioned(self, src: int, dst: int) -> bool:
        """True if messages from ``src`` to ``dst`` are currently blocked."""
        return (src, dst) in self._partitions

    def delay(self, src: int, dst: int) -> float:
        """Sample the one-way delay for a message from ``src`` to ``dst``."""
        nominal = self.topology.one_way(src, dst)
        if self._delay_override is not None:
            nominal = self._delay_override(src, dst, nominal)
        if self.config.jitter_ms > 0 and src != dst:
            nominal += self._rng.gauss(0.0, self.config.jitter_ms)
        return max(self.config.min_delay_ms, nominal)

    def send(self, src: int, dst: int, message: object, size_bytes: int = 64) -> None:
        """Send ``message`` from node ``src`` to node ``dst``.

        Delivery is asynchronous; loss, partitions and crashed receivers all
        result in the message silently disappearing.
        """
        self.stats.messages_sent += 1
        self.stats.bytes_sent += size_bytes
        type_name = type(message).__name__
        self.stats.per_type_sent[type_name] = self.stats.per_type_sent.get(type_name, 0) + 1

        if self.is_partitioned(src, dst):
            self.stats.messages_partitioned += 1
            return
        if self.config.drop_probability > 0 and self._rng.random() < self.config.drop_probability:
            self.stats.messages_dropped += 1
            return

        delay = self.delay(src, dst)

        def deliver() -> None:
            node = self._nodes.get(dst)
            if node is None or node.crashed:
                self.stats.messages_to_crashed += 1
                return
            self.stats.messages_delivered += 1
            node.receive(src, message)

        self.sim.schedule(delay, deliver)

    def broadcast(self, src: int, message: object, include_self: bool = True, size_bytes: int = 64) -> None:
        """Send ``message`` from ``src`` to every registered node."""
        for dst in self._nodes:
            if dst == src and not include_self:
                continue
            self.send(src, dst, message, size_bytes=size_bytes)


class NodeLike:
    """Protocol (duck-typed) interface the network expects from nodes."""

    node_id: int
    crashed: bool

    def receive(self, src: int, message: object) -> None:
        """Accept an incoming message from ``src``."""
        raise NotImplementedError
