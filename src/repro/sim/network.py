"""Simulated wide-area network.

The network delivers messages between registered nodes with per-pair one-way
delays derived from a :class:`repro.sim.topology.Topology`, optional gaussian
jitter, optional message loss, and optional partitions.  Crashed destination
nodes silently drop messages, exactly like a dead TCP peer would from the
sender's point of view (the sender never gets an error).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Set, Tuple

from repro.sim.simulator import Simulator
from repro.sim.topology import Topology


@dataclass
class NetworkConfig:
    """Tunables for the simulated network.

    Attributes:
        jitter_ms: standard deviation of gaussian jitter added to each one-way
            delay (clamped so delays never go below 5% of the nominal value).
        drop_probability: independent probability that a message is lost.
        min_delay_ms: hard floor for any one-way delay.
        wire_accounting: when ``True`` the transports also measure every
            transmitted message through the registry codec and accumulate
            the byte counts into :class:`NetworkStats` (off by default: the
            measurement is pure accounting but costs wall-clock time).
    """

    jitter_ms: float = 0.0
    drop_probability: float = 0.0
    min_delay_ms: float = 0.01
    wire_accounting: bool = False

    @classmethod
    def from_args(cls, args, **overrides) -> "NetworkConfig":
        """Build a config from CLI-style args (``--jitter`` / ``--drop``).

        ``args`` is any object with the optional attributes ``jitter``
        (milliseconds) and ``drop`` (probability); keyword ``overrides`` win
        over both.  This is the single place CLI flags become a
        :class:`NetworkConfig`.
        """
        kwargs = {"jitter_ms": getattr(args, "jitter", 0.0) or 0.0,
                  "drop_probability": getattr(args, "drop", 0.0) or 0.0}
        kwargs.update(overrides)
        return cls(**kwargs)


@dataclass
class NetworkStats:
    """Counters describing everything the network did during a run."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    messages_to_crashed: int = 0
    #: in-flight messages whose destination crashed (and possibly restarted)
    #: between send and delivery — the connection died with the process, so
    #: they are never delivered, even if the node is back up.
    messages_dead_in_flight: int = 0
    messages_partitioned: int = 0
    bytes_sent: int = 0
    per_type_sent: Dict[str, int] = field(default_factory=dict)
    #: codec-measured bytes (filled only with ``wire_accounting`` enabled).
    codec_bytes_sent: int = 0
    per_type_codec_bytes: Dict[str, int] = field(default_factory=dict)


class Network:
    """Message-passing fabric connecting simulated nodes.

    Args:
        sim: the discrete-event simulator providing the clock.
        topology: per-pair latencies.
        config: jitter/loss configuration.
    """

    def __init__(self, sim: Simulator, topology: Topology, config: Optional[NetworkConfig] = None) -> None:
        self.sim = sim
        self.topology = topology
        self.config = config or NetworkConfig()
        self.stats = NetworkStats()
        self._nodes: Dict[int, "NodeLike"] = {}
        self._rng = sim.rng.fork("network")
        self._partitions: Set[Tuple[int, int]] = set()
        self._delay_override: Optional[Callable[[int, int, float], float]] = None
        #: cache of nominal per-pair one-way delays; topology latencies are
        #: immutable during a run, so the string-keyed RTT lookups are paid
        #: once per (src, dst) pair instead of once per message.
        self._nominal_delay: Dict[Tuple[int, int], float] = {}
        # Bound samplers from the same underlying stream (skips a wrapper
        # call per message on the jitter/loss path).
        self._gauss = self._rng.gauss
        self._random = self._rng.random
        self._node_ids_cache: Optional[list] = None

    def register(self, node: "NodeLike") -> None:
        """Attach a node so it can send and receive messages."""
        if node.node_id in self._nodes:
            raise ValueError(f"node {node.node_id} already registered")
        self._nodes[node.node_id] = node
        self._node_ids_cache = None

    def create_transport(self, node: "NodeLike", batching=None):
        """Build the transport a node hosted on this network should use.

        The network is the transport factory (see
        :class:`repro.runtime.transport.Transport`): nodes built against the
        simulated network get a
        :class:`~repro.runtime.transport.SimulatorTransport`, nodes built
        against a socket-world peer map get an asyncio one — protocol code
        never chooses a backend.
        """
        from repro.runtime.transport import SimulatorTransport

        return SimulatorTransport(node, self, batching)

    def node(self, node_id: int) -> "NodeLike":
        """Return the registered node with the given id."""
        return self._nodes[node_id]

    @property
    def node_ids(self) -> list:
        """All registered node ids, in registration order (shared; do not mutate).

        Broadcasts read this once per fan-out, so the list is cached and
        invalidated on registration rather than rebuilt per call.
        """
        ids = self._node_ids_cache
        if ids is None:
            ids = self._node_ids_cache = list(self._nodes.keys())
        return ids

    def set_delay_override(self, fn: Optional[Callable[[int, int, float], float]]) -> None:
        """Install a hook ``(src, dst, nominal_delay) -> delay`` for experiments."""
        self._delay_override = fn

    def partition(self, group_a: Set[int], group_b: Set[int]) -> None:
        """Cut connectivity between every node in ``group_a`` and every node in ``group_b``."""
        for a in group_a:
            for b in group_b:
                self._partitions.add((a, b))
                self._partitions.add((b, a))

    def heal_partitions(self) -> None:
        """Restore full connectivity."""
        self._partitions.clear()

    def is_partitioned(self, src: int, dst: int) -> bool:
        """True if messages from ``src`` to ``dst`` are currently blocked."""
        return (src, dst) in self._partitions

    def _nominal(self, src: int, dst: int) -> float:
        """Nominal (cached) one-way delay from ``src`` to ``dst``."""
        pair = (src, dst)
        nominal = self._nominal_delay.get(pair)
        if nominal is None:
            nominal = self.topology.one_way(src, dst)
            self._nominal_delay[pair] = nominal
        return nominal

    def delay(self, src: int, dst: int) -> float:
        """Sample the one-way delay for a message from ``src`` to ``dst``."""
        # _nominal inlined (one call per message).
        nominal = self._nominal_delay.get((src, dst))
        if nominal is None:
            nominal = self._nominal(src, dst)
        if self._delay_override is not None:
            nominal = self._delay_override(src, dst, nominal)
        jitter = self.config.jitter_ms
        if jitter > 0 and src != dst:
            nominal += self._gauss(0.0, jitter)
        min_delay = self.config.min_delay_ms
        return min_delay if nominal < min_delay else nominal

    def send(self, src: int, dst: int, message: object, size_bytes: int = 64) -> None:
        """Send ``message`` from node ``src`` to node ``dst``.

        Delivery is asynchronous; loss, partitions and crashed receivers all
        result in the message silently disappearing.
        """
        stats = self.stats
        stats.messages_sent += 1
        stats.bytes_sent += size_bytes
        per_type = stats.per_type_sent
        type_name = type(message).__name__
        per_type[type_name] = per_type.get(type_name, 0) + 1

        if self._partitions and (src, dst) in self._partitions:
            stats.messages_partitioned += 1
            return
        drop = self.config.drop_probability
        if drop > 0 and self._random() < drop:
            stats.messages_dropped += 1
            return

        # The send time rides along so delivery can tell whether the
        # destination crashed while the message was in flight (sim._now and
        # the transient queue are used directly: this path runs once per
        # message, and delivery events are never cancelled).
        sim = self.sim
        now = sim._now
        sim._queue.push_transient(now + self.delay(src, dst), self._deliver,
                                  args=(src, dst, message, now))

    def _deliver(self, src: int, dst: int, message: object, sent_at: float) -> None:
        """Hand a message that survived the network to its destination node.

        A message is dead on arrival when the destination is down, when it
        crashed at any point after the send (a restart does not resurrect
        in-flight traffic: the connection died with the process), or when the
        link was partitioned while the message was in flight.
        """
        node = self._nodes.get(dst)
        if node is None or node.crashed:
            self.stats.messages_to_crashed += 1
            return
        # Strictly-after comparison: a crash at the same virtual instant as
        # the send is logically concurrent with it (crash-then-restart-then-
        # send sequences within one instant must still deliver).
        if node.last_crashed_at > sent_at:
            self.stats.messages_dead_in_flight += 1
            return
        if self._partitions and (src, dst) in self._partitions:
            self.stats.messages_partitioned += 1
            return
        self.stats.messages_delivered += 1
        node.receive(src, message)

    def broadcast(self, src: int, message: object, include_self: bool = True, size_bytes: int = 64) -> None:
        """Send ``message`` from ``src`` to every registered node."""
        for dst in self._nodes:
            if dst == src and not include_self:
                continue
            self.send(src, dst, message, size_bytes=size_bytes)


class NodeLike:
    """Protocol (duck-typed) interface the network expects from nodes."""

    node_id: int
    crashed: bool
    #: virtual time of the node's most recent crash (-1.0 if it never crashed);
    #: deliveries compare it against the send time to drop in-flight messages
    #: that span a crash.
    last_crashed_at: float = -1.0

    def receive(self, src: int, message: object) -> None:
        """Accept an incoming message from ``src``."""
        raise NotImplementedError
