"""Network message batching.

The paper evaluates every protocol both with and without network batching
(Figure 9 shows both).  Batching groups the messages a replica sends to the
same destination within a short window into one wire message, which amortizes
the per-message CPU cost (serialization, syscalls) and raises the saturation
throughput at the price of a small added latency.

Batching is implemented at the :class:`~repro.sim.node.Node` layer: outgoing
messages are buffered per destination and flushed either when the window
expires or when the batch reaches its maximum size.  The receiver charges one
full message cost for the batch itself plus a discounted marginal cost for
every message inside it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.runtime.codec import SeqCodec
from repro.runtime.registry import MessageCodec, register_message


@register_message(messages=SeqCodec(MessageCodec()))
@dataclass(frozen=True, slots=True)
class MessageBatch:
    """A group of protocol messages delivered as a single wire message.

    On the wire a batch is its envelope plus the concatenated canonical
    encodings of its inner messages (which must themselves be registered).
    """

    messages: Tuple[object, ...]

    def __len__(self) -> int:
        return len(self.messages)


@dataclass
class BatchingConfig:
    """Parameters of the per-destination batching policy.

    Attributes:
        window_ms: how long a message may wait for companions before the
            batch is flushed.
        max_messages: flush immediately once this many messages accumulate.
        marginal_cost_factor: fraction of the normal per-message CPU cost
            charged for each message inside a batch (the batch envelope itself
            is charged at full cost).
    """

    window_ms: float = 2.0
    max_messages: int = 32
    marginal_cost_factor: float = 0.25

    def __post_init__(self) -> None:
        if self.window_ms < 0:
            raise ValueError("window_ms must be non-negative")
        if self.max_messages < 1:
            raise ValueError("max_messages must be at least 1")
        if not 0.0 <= self.marginal_cost_factor <= 1.0:
            raise ValueError("marginal_cost_factor must be within [0, 1]")


class BatchBuffer:
    """Per-destination outgoing buffer used by a node with batching enabled."""

    def __init__(self, config: BatchingConfig) -> None:
        self.config = config
        self._pending: dict = {}
        self.batches_flushed = 0
        self.messages_batched = 0

    def add(self, dst: int, message: object, size_bytes: int) -> bool:
        """Buffer a message for ``dst``.

        Returns ``True`` when the destination's buffer just reached the
        maximum batch size and must be flushed immediately.
        """
        bucket = self._pending.setdefault(dst, [])
        bucket.append((message, size_bytes))
        self.messages_batched += 1
        return len(bucket) >= self.config.max_messages

    def has_pending(self, dst: int) -> bool:
        """Whether any messages are waiting for ``dst``."""
        return bool(self._pending.get(dst))

    def destinations(self) -> List[int]:
        """Destinations that currently have buffered messages."""
        return [dst for dst, bucket in self._pending.items() if bucket]

    def drain(self, dst: int) -> Tuple[MessageBatch, int]:
        """Remove and return the batch for ``dst`` plus its total byte size."""
        bucket = self._pending.pop(dst, [])
        self.batches_flushed += 1
        total_bytes = sum(size for _, size in bucket) + 16  # envelope overhead
        return MessageBatch(messages=tuple(message for message, _ in bucket)), total_bytes
