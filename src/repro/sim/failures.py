"""Failure injection and failure detection.

The paper assumes crash (non-byzantine) failures plus the weakest failure
detector sufficient for leader election.  In the simulation:

* :class:`CrashInjector` schedules crashes (and optional restarts) of chosen
  nodes at chosen virtual times — this drives the Figure 12 experiment.
* :class:`FailureDetector` is a simple heartbeat-based eventually-accurate
  detector: every node broadcasts heartbeats, and a peer that has not been
  heard from within ``suspect_after_ms`` is suspected.  Suspicion callbacks
  let protocols trigger recovery (CAESAR's per-command RECOVERY phase,
  EPaxos' explicit-prepare, Multi-Paxos leader re-election).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from repro.runtime.codec import UINT
from repro.runtime.registry import register_message
from repro.sim.simulator import Simulator


@register_message(sender=UINT, sequence=UINT)
@dataclass(frozen=True, slots=True)
class Heartbeat:
    """Periodic liveness message exchanged between nodes."""

    sender: int
    sequence: int


@dataclass
class ScheduledCrash:
    """A crash (and optional restart) planned for a node."""

    node_id: int
    crash_at_ms: float
    restart_at_ms: Optional[float] = None


class CrashInjector:
    """Schedules crash/restart events against a set of nodes.

    Args:
        sim: the simulator.
        nodes: mapping ``node_id -> node`` for every node that can be crashed.
    """

    def __init__(self, sim: Simulator, nodes: Dict[int, "NodeHandle"]) -> None:
        self.sim = sim
        self._nodes = nodes
        self.crashes_performed: List[int] = []
        self.restarts_performed: List[int] = []

    def schedule(self, plan: ScheduledCrash) -> None:
        """Arrange for the node in ``plan`` to crash (and maybe restart)."""
        node = self._nodes[plan.node_id]

        def do_crash() -> None:
            if not node.crashed:
                node.crash()
                self.crashes_performed.append(plan.node_id)

        self.sim.schedule_at(plan.crash_at_ms, do_crash)
        if plan.restart_at_ms is not None:

            def do_restart() -> None:
                if node.crashed:
                    node.restart()
                    self.restarts_performed.append(plan.node_id)

            self.sim.schedule_at(plan.restart_at_ms, do_restart)

    def crash_now(self, node_id: int) -> None:
        """Crash a node immediately."""
        node = self._nodes[node_id]
        if not node.crashed:
            node.crash()
            self.crashes_performed.append(node_id)


class NodeHandle:
    """Duck-typed view of a node the injector needs (crash/restart/crashed)."""

    crashed: bool

    def crash(self) -> None:  # pragma: no cover - interface documentation only
        raise NotImplementedError

    def restart(self) -> None:  # pragma: no cover - interface documentation only
        raise NotImplementedError


class FailureDetector:
    """Heartbeat-based eventually-accurate failure detector for one node.

    Each protocol node owns one detector instance.  The detector piggybacks
    on the owning node's timers and network; it emits heartbeats every
    ``heartbeat_every_ms`` and declares a peer suspected when no heartbeat has
    been received for ``suspect_after_ms``.

    Args:
        owner: the node this detector runs on (anything exposing ``node_id``,
            ``broadcast``, ``set_timer``, ``sim`` and ``crashed``).
        peer_ids: ids of all nodes in the cluster (including the owner).
        heartbeat_every_ms: heartbeat period.
        suspect_after_ms: silence threshold before suspecting a peer.
        on_suspect: callback invoked once per newly suspected peer.
    """

    def __init__(self, owner, peer_ids: List[int], heartbeat_every_ms: float = 100.0,
                 suspect_after_ms: float = 500.0,
                 on_suspect: Optional[Callable[[int], None]] = None) -> None:
        self.owner = owner
        self.peer_ids = [p for p in peer_ids if p != owner.node_id]
        self.heartbeat_every_ms = heartbeat_every_ms
        self.suspect_after_ms = suspect_after_ms
        self.on_suspect = on_suspect
        self.suspected: Set[int] = set()
        self._last_heard: Dict[int, float] = {}
        self._sequence = 0
        self._running = False

    def start(self) -> None:
        """Begin emitting heartbeats and checking peers."""
        self._running = True
        now = self.owner.sim.now
        for peer in self.peer_ids:
            self._last_heard[peer] = now
        self._emit_heartbeat()
        self._schedule_check()

    def stop(self) -> None:
        """Stop the detector (no further suspicion callbacks)."""
        self._running = False

    def observe_heartbeat(self, heartbeat: Heartbeat) -> None:
        """Record a heartbeat received from a peer."""
        self._last_heard[heartbeat.sender] = self.owner.sim.now
        if heartbeat.sender in self.suspected:
            # The peer recovered (or the suspicion was premature): trust it again.
            self.suspected.discard(heartbeat.sender)

    def observe_any_message(self, sender: int) -> None:
        """Any protocol message also counts as evidence the sender is alive."""
        if sender in self._last_heard:
            self._last_heard[sender] = self.owner.sim.now

    def is_suspected(self, node_id: int) -> bool:
        """Whether ``node_id`` is currently suspected of having crashed."""
        return node_id in self.suspected

    def _emit_heartbeat(self) -> None:
        if not self._running or self.owner.crashed:
            return
        self._sequence += 1
        self.owner.broadcast(Heartbeat(sender=self.owner.node_id, sequence=self._sequence),
                             include_self=False)
        self.owner.set_timer(self.heartbeat_every_ms, self._emit_heartbeat)

    def _schedule_check(self) -> None:
        if not self._running or self.owner.crashed:
            return
        self._check_peers()
        self.owner.set_timer(self.heartbeat_every_ms, self._schedule_check)

    def _check_peers(self) -> None:
        now = self.owner.sim.now
        for peer in self.peer_ids:
            if peer in self.suspected:
                continue
            silence = now - self._last_heard.get(peer, now)
            if silence >= self.suspect_after_ms:
                self.suspected.add(peer)
                if self.on_suspect is not None:
                    self.on_suspect(peer)
