"""Latency topologies for geo-replicated deployments.

The paper deploys five Amazon EC2 sites: Virginia (US), Ohio (US), Frankfurt
(EU), Ireland (EU), and Mumbai (India).  Section VI reports that round-trip
times between EU and US nodes are all below 100 ms and that Mumbai sees
186 ms to Virginia, 301 ms to Ohio, 112 ms to Frankfurt and 122 ms to
Ireland.  :func:`ec2_five_sites` encodes that matrix (with typical values for
the pairs the paper only bounds).

Beyond the paper's matrix, :func:`wan_topology` generates WAN-scale
topologies (tens of sites grouped into regions) and
:func:`with_replicas_per_site` expands any topology to several co-located
replicas per site, so clusters can grow to 100+ nodes without hand-writing
RTT matrices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.sim.random import DeterministicRandom, derive_seed


@dataclass
class Topology:
    """A set of named sites and the round-trip times between them.

    Attributes:
        sites: ordered site names; node ``i`` of a cluster lives at
            ``sites[i]``.  A site name may appear several times when multiple
            replicas are co-located (see :func:`with_replicas_per_site`).
        rtt_ms: symmetric map ``(site_a, site_b) -> round-trip time`` in
            milliseconds.  The one-way delay used by the network is half the
            round trip.  The mapping is copied defensively: the caller's dict
            is never mutated with mirrored keys or self-RTT defaults.
        local_delivery_ms: delay for a node sending a message to itself, and
            the one-way delay between distinct replicas of the same site.
    """

    sites: List[str]
    rtt_ms: Dict[Tuple[str, str], float]
    local_delivery_ms: float = 0.05

    def __post_init__(self) -> None:
        # Never mutate the mapping the caller handed in: mirror keys and
        # self-RTT defaults belong to this instance only.
        rtt = dict(self.rtt_ms)
        for (a, b), value in self.rtt_ms.items():
            mirrored = rtt.setdefault((b, a), value)
            if mirrored != value:
                raise ValueError(
                    f"asymmetric rtt_ms: ({a!r}, {b!r})={value} but "
                    f"({b!r}, {a!r})={mirrored}")
        for site in self.sites:
            rtt.setdefault((site, site), self.local_delivery_ms * 2)
        self.rtt_ms = rtt

    @property
    def size(self) -> int:
        """Number of nodes (one per entry of ``sites``)."""
        return len(self.sites)

    @property
    def site_names(self) -> List[str]:
        """Distinct site names, in first-appearance order."""
        return list(dict.fromkeys(self.sites))

    def rtt(self, a: int, b: int) -> float:
        """Round-trip time in ms between node indices ``a`` and ``b``."""
        return self.rtt_ms[(self.sites[a], self.sites[b])]

    def one_way(self, a: int, b: int) -> float:
        """One-way delay in ms between node indices ``a`` and ``b``."""
        if a == b:
            return self.local_delivery_ms
        return self.rtt(a, b) / 2.0

    def site_of(self, node_id: int) -> str:
        """Name of the site hosting the given node index."""
        return self.sites[node_id]

    def indices_of(self, site: str) -> List[int]:
        """All node indices hosted at the named site (empty when unknown)."""
        return [index for index, name in enumerate(self.sites) if name == site]

    def index_of(self, site: str) -> int:
        """Node index of a named site hosting exactly one replica.

        Raises ``ValueError`` for an unknown site, and also when the site
        hosts more than one replica — silently returning the first index
        would misattribute work once ``replicas_per_site > 1``; use
        :meth:`indices_of` for multi-replica sites.
        """
        indices = self.indices_of(site)
        if not indices:
            raise ValueError(f"{site!r} is not in the topology")
        if len(indices) > 1:
            raise ValueError(f"site {site!r} hosts {len(indices)} replicas "
                             f"(nodes {indices}); use indices_of()")
        return indices[0]

    def quorum_latency(self, origin: int, quorum_size: int) -> float:
        """Round-trip time needed for ``origin`` to hear from a quorum.

        This is the RTT to the ``quorum_size``-th closest node, counting the
        origin itself as distance zero (its vote needs no network round
        trip).  It is the analytic lower bound used in tests to sanity-check
        simulated latencies.
        """
        rtts = sorted(0.0 if other == origin else self.rtt(origin, other)
                      for other in range(self.size))
        return rtts[quorum_size - 1]

    def describe(self) -> str:
        """Human-readable multi-line summary of the topology."""
        lines = [f"Topology with {self.size} sites: {', '.join(self.sites)}"]
        for i, a in enumerate(self.sites):
            row = []
            for j, b in enumerate(self.sites):
                row.append(f"{self.rtt_ms[(a, b)]:6.1f}")
            lines.append(f"  {a:<10} " + " ".join(row))
        return "\n".join(lines)


#: Site names used throughout the paper's evaluation, in the order plots use.
EC2_SITES = ["virginia", "ohio", "frankfurt", "ireland", "mumbai"]

#: Short labels used by the paper's figures for the same sites.
EC2_SHORT_LABELS = {"virginia": "VA", "ohio": "OH", "frankfurt": "DE", "ireland": "IE", "mumbai": "IN"}


def ec2_five_sites(local_delivery_ms: float = 0.05) -> Topology:
    """The five-site EC2 topology from Section VI of the paper.

    The Mumbai RTTs are quoted verbatim from the paper; the EU/US pairs are
    set to representative EC2 inter-region values, all below the 100 ms bound
    the paper reports.
    """
    rtt = {
        ("virginia", "ohio"): 12.0,
        ("virginia", "frankfurt"): 90.0,
        ("virginia", "ireland"): 76.0,
        ("virginia", "mumbai"): 186.0,
        ("ohio", "frankfurt"): 98.0,
        ("ohio", "ireland"): 86.0,
        ("ohio", "mumbai"): 301.0,
        ("frankfurt", "ireland"): 26.0,
        ("frankfurt", "mumbai"): 112.0,
        ("ireland", "mumbai"): 122.0,
    }
    return Topology(sites=list(EC2_SITES), rtt_ms=dict(rtt), local_delivery_ms=local_delivery_ms)


def uniform_topology(n: int, rtt_ms: float = 50.0, local_delivery_ms: float = 0.05) -> Topology:
    """A synthetic topology where every pair of distinct sites has the same RTT."""
    sites = [f"site{i}" for i in range(n)]
    rtt = {}
    for i in range(n):
        for j in range(i + 1, n):
            rtt[(sites[i], sites[j])] = rtt_ms
    return Topology(sites=sites, rtt_ms=rtt, local_delivery_ms=local_delivery_ms)


def lan_topology(n: int, rtt_ms: float = 0.5) -> Topology:
    """A low-latency topology approximating a single data center."""
    return uniform_topology(n, rtt_ms=rtt_ms, local_delivery_ms=0.01)


def custom_topology(site_names: Sequence[str], rtt_matrix: Iterable[Iterable[float]],
                    local_delivery_ms: float = 0.05) -> Topology:
    """Build a topology from an explicit RTT matrix.

    Args:
        site_names: names of the sites, one per row of the matrix.
        rtt_matrix: square matrix of round-trip times.  The matrix must be
            symmetric with a zero diagonal; an asymmetric matrix or a
            non-zero diagonal raises ``ValueError`` instead of silently
            dropping half the data (self-delay comes from
            ``local_delivery_ms``, never from the matrix).
        local_delivery_ms: self-delivery delay.
    """
    names = list(site_names)
    matrix = [list(row) for row in rtt_matrix]
    if len(matrix) != len(names) or any(len(row) != len(names) for row in matrix):
        raise ValueError("rtt_matrix must be square and match site_names")
    for i in range(len(names)):
        if matrix[i][i] != 0:
            raise ValueError(
                f"rtt_matrix diagonal must be zero (self-delay comes from "
                f"local_delivery_ms), got {matrix[i][i]!r} for {names[i]!r}")
        for j in range(i + 1, len(names)):
            if matrix[i][j] != matrix[j][i]:
                raise ValueError(
                    f"rtt_matrix must be symmetric: [{i}][{j}]={matrix[i][j]!r} "
                    f"but [{j}][{i}]={matrix[j][i]!r} "
                    f"({names[i]!r} <-> {names[j]!r})")
    rtt = {}
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            rtt[(names[i], names[j])] = float(matrix[i][j])
    return Topology(sites=names, rtt_ms=rtt, local_delivery_ms=local_delivery_ms)


def with_replicas_per_site(topology: Topology, replicas_per_site: int) -> Topology:
    """Expand a topology to several co-located replicas per site.

    Node ordering is round-robin over the sites (``s0 s1 ... s0 s1 ...``), so
    any prefix of the node list still spans every geography.  Replicas of the
    same site talk to each other at ``2 x local_delivery_ms`` round trip —
    the same self-RTT every topology already defines.
    """
    if replicas_per_site < 1:
        raise ValueError("replicas_per_site must be >= 1")
    if replicas_per_site == 1:
        return topology
    base = topology.site_names
    if len(base) != len(topology.sites):
        raise ValueError("topology already has multiple replicas per site")
    sites = [site for _ in range(replicas_per_site) for site in base]
    return Topology(sites=sites, rtt_ms=dict(topology.rtt_ms),
                    local_delivery_ms=topology.local_delivery_ms)


def wan_topology(sites: int = 20, regions: int = 5, replicas_per_site: int = 1,
                 intra_region_rtt_ms: float = 4.0, inter_region_base_ms: float = 40.0,
                 inter_region_step_ms: float = 45.0, jitter_ms: float = 8.0,
                 seed: int = 0, local_delivery_ms: float = 0.05) -> Topology:
    """Generate a WAN-scale topology: ``sites`` sites grouped into ``regions``.

    Regions sit on a ring (think continents around the globe); the RTT
    between two sites is a base plus a step per ring hop between their
    regions, plus a deterministic per-pair wobble so no two links are
    exactly alike.  Same-region pairs get ``intra_region_rtt_ms``.  The
    wobble is drawn from a :class:`DeterministicRandom` stream derived from
    ``seed`` with CRC32, so the same arguments produce byte-identical
    topologies in every process.

    Args:
        sites: number of distinct sites (site ``i`` lives in region
            ``i % regions``).
        regions: number of regions on the ring.
        replicas_per_site: co-located replicas per site; the returned
            topology has ``sites * replicas_per_site`` nodes (see
            :func:`with_replicas_per_site`).
        intra_region_rtt_ms: RTT between distinct sites of one region.
        inter_region_base_ms: RTT floor between sites in different regions.
        inter_region_step_ms: RTT added per ring hop between the regions.
        jitter_ms: half-width of the deterministic per-pair wobble.
        seed: stream seed for the wobble.
        local_delivery_ms: self-delivery delay.
    """
    if sites < 2:
        raise ValueError("a WAN topology needs at least 2 sites")
    if regions < 1:
        raise ValueError("regions must be >= 1")
    regions = min(regions, sites)
    names = [f"r{i % regions}-site{i // regions}" for i in range(sites)]
    rng = DeterministicRandom(derive_seed(seed, ("wan-topology", sites, regions)))
    rtt: Dict[Tuple[str, str], float] = {}
    for i in range(sites):
        for j in range(i + 1, sites):
            hops = abs(i % regions - j % regions)
            hops = min(hops, regions - hops)
            if hops == 0:
                nominal = intra_region_rtt_ms
            else:
                nominal = inter_region_base_ms + inter_region_step_ms * hops
            wobble = rng.uniform(-jitter_ms, jitter_ms)
            rtt[(names[i], names[j])] = round(max(nominal + wobble, 1.0), 3)
    topology = Topology(sites=names, rtt_ms=rtt, local_delivery_ms=local_delivery_ms)
    return with_replicas_per_site(topology, replicas_per_site)
