"""Latency topologies for geo-replicated deployments.

The paper deploys five Amazon EC2 sites: Virginia (US), Ohio (US), Frankfurt
(EU), Ireland (EU), and Mumbai (India).  Section VI reports that round-trip
times between EU and US nodes are all below 100 ms and that Mumbai sees
186 ms to Virginia, 301 ms to Ohio, 112 ms to Frankfurt and 122 ms to
Ireland.  :func:`ec2_five_sites` encodes that matrix (with typical values for
the pairs the paper only bounds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple


@dataclass
class Topology:
    """A set of named sites and the round-trip times between them.

    Attributes:
        sites: ordered site names; node ``i`` of a cluster lives at
            ``sites[i]``.
        rtt_ms: symmetric map ``(site_a, site_b) -> round-trip time`` in
            milliseconds.  The one-way delay used by the network is half the
            round trip.
        local_delivery_ms: delay for a node sending a message to itself.
    """

    sites: List[str]
    rtt_ms: Dict[Tuple[str, str], float]
    local_delivery_ms: float = 0.05

    def __post_init__(self) -> None:
        for (a, b), rtt in list(self.rtt_ms.items()):
            self.rtt_ms[(b, a)] = rtt
        for site in self.sites:
            self.rtt_ms.setdefault((site, site), self.local_delivery_ms * 2)

    @property
    def size(self) -> int:
        """Number of sites."""
        return len(self.sites)

    def rtt(self, a: int, b: int) -> float:
        """Round-trip time in ms between node indices ``a`` and ``b``."""
        return self.rtt_ms[(self.sites[a], self.sites[b])]

    def one_way(self, a: int, b: int) -> float:
        """One-way delay in ms between node indices ``a`` and ``b``."""
        if a == b:
            return self.local_delivery_ms
        return self.rtt(a, b) / 2.0

    def site_of(self, node_id: int) -> str:
        """Name of the site hosting the given node index."""
        return self.sites[node_id]

    def index_of(self, site: str) -> int:
        """Node index of a named site."""
        return self.sites.index(site)

    def quorum_latency(self, origin: int, quorum_size: int) -> float:
        """Round-trip time needed for ``origin`` to hear from a quorum.

        This is the RTT to the ``quorum_size``-th closest node (counting the
        origin itself as distance zero).  It is the analytic lower bound used
        in tests to sanity-check simulated latencies.
        """
        rtts = sorted(self.rtt(origin, other) for other in range(self.size))
        return rtts[quorum_size - 1]

    def describe(self) -> str:
        """Human-readable multi-line summary of the topology."""
        lines = [f"Topology with {self.size} sites: {', '.join(self.sites)}"]
        for i, a in enumerate(self.sites):
            row = []
            for j, b in enumerate(self.sites):
                row.append(f"{self.rtt_ms[(a, b)]:6.1f}")
            lines.append(f"  {a:<10} " + " ".join(row))
        return "\n".join(lines)


#: Site names used throughout the paper's evaluation, in the order plots use.
EC2_SITES = ["virginia", "ohio", "frankfurt", "ireland", "mumbai"]

#: Short labels used by the paper's figures for the same sites.
EC2_SHORT_LABELS = {"virginia": "VA", "ohio": "OH", "frankfurt": "DE", "ireland": "IE", "mumbai": "IN"}


def ec2_five_sites(local_delivery_ms: float = 0.05) -> Topology:
    """The five-site EC2 topology from Section VI of the paper.

    The Mumbai RTTs are quoted verbatim from the paper; the EU/US pairs are
    set to representative EC2 inter-region values, all below the 100 ms bound
    the paper reports.
    """
    rtt = {
        ("virginia", "ohio"): 12.0,
        ("virginia", "frankfurt"): 90.0,
        ("virginia", "ireland"): 76.0,
        ("virginia", "mumbai"): 186.0,
        ("ohio", "frankfurt"): 98.0,
        ("ohio", "ireland"): 86.0,
        ("ohio", "mumbai"): 301.0,
        ("frankfurt", "ireland"): 26.0,
        ("frankfurt", "mumbai"): 112.0,
        ("ireland", "mumbai"): 122.0,
    }
    return Topology(sites=list(EC2_SITES), rtt_ms=dict(rtt), local_delivery_ms=local_delivery_ms)


def uniform_topology(n: int, rtt_ms: float = 50.0, local_delivery_ms: float = 0.05) -> Topology:
    """A synthetic topology where every pair of distinct sites has the same RTT."""
    sites = [f"site{i}" for i in range(n)]
    rtt = {}
    for i in range(n):
        for j in range(i + 1, n):
            rtt[(sites[i], sites[j])] = rtt_ms
    return Topology(sites=sites, rtt_ms=rtt, local_delivery_ms=local_delivery_ms)


def lan_topology(n: int, rtt_ms: float = 0.5) -> Topology:
    """A low-latency topology approximating a single data center."""
    return uniform_topology(n, rtt_ms=rtt_ms, local_delivery_ms=0.01)


def custom_topology(site_names: Sequence[str], rtt_matrix: Iterable[Iterable[float]],
                    local_delivery_ms: float = 0.05) -> Topology:
    """Build a topology from an explicit RTT matrix.

    Args:
        site_names: names of the sites, one per row of the matrix.
        rtt_matrix: square matrix of round-trip times; only the upper triangle
            is read, the matrix is assumed symmetric.
        local_delivery_ms: self-delivery delay.
    """
    names = list(site_names)
    matrix = [list(row) for row in rtt_matrix]
    if len(matrix) != len(names) or any(len(row) != len(names) for row in matrix):
        raise ValueError("rtt_matrix must be square and match site_names")
    rtt = {}
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            rtt[(names[i], names[j])] = float(matrix[i][j])
    return Topology(sites=names, rtt_ms=rtt, local_delivery_ms=local_delivery_ms)
