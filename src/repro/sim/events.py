"""Event primitives for the discrete-event simulator.

An :class:`Event` is a callback scheduled at a virtual time.  The queue keys
its heap with plain ``(time, priority, seq)`` tuples so that heap reordering
happens entirely in C tuple comparisons (``seq`` is unique, so the payload
slots after it are never compared).  Simultaneous events are processed in a
deterministic order: by priority, then FIFO.

Cancellation is lazy: :meth:`Event.cancel` only flips a flag, and cancelled
events are skipped when they reach the heap head.  This keeps both scheduling
and cancellation O(log n) / O(1) with no heap surgery.

Two heap entry shapes coexist: :meth:`EventQueue.push` stores
``(time, priority, seq, Event)`` and returns the cancellable handle, while
:meth:`EventQueue.push_transient` stores ``(time, priority, seq, None,
callback, args)`` with no :class:`Event` allocation at all.  The transient
shape exists for the two per-message hot paths (network delivery and CPU
dispatch), which schedule two events per simulated message and never cancel
them; mixed entry sizes are safe because ``seq`` is unique, so tuple
comparison never reaches the differing tails.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional, Tuple


class Event:
    """A single scheduled callback in the simulation.

    Attributes:
        time: virtual time (milliseconds) at which the event fires.
        priority: lower values fire first among events at the same time.
        seq: monotonically increasing tie-breaker assigned by the queue.
        callback: callable invoked (with ``args``) when the event fires.
        args: positional arguments passed to ``callback`` (pre-bound handlers
            avoid allocating a closure per scheduled message).
        cancelled: cancelled events are skipped when popped.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, priority: int, seq: int,
                 callback: Callable[..., None], args: Tuple = ()) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so it is ignored when it reaches the queue head."""
        self.cancelled = True

    def fire(self) -> None:
        """Invoke the callback with its pre-bound arguments."""
        self.callback(*self.args)


class EventQueue:
    """A priority queue of :class:`Event` objects keyed by virtual time.

    The heap entries are ``(time, priority, seq, event)`` tuples; ``seq`` is
    unique so comparisons never reach the event object.  ``_live`` is an
    upper bound on pending events (cancelled events stay in the heap until
    they surface).
    """

    __slots__ = ("_heap", "_seq", "_live")

    def __init__(self) -> None:
        self._heap: list = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def push(self, time: float, callback: Callable[..., None], priority: int = 0,
             args: Tuple = ()) -> Event:
        """Schedule ``callback`` at ``time`` and return a cancellable handle."""
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, priority, seq, callback, args)
        heapq.heappush(self._heap, (time, priority, seq, event))
        self._live += 1
        return event

    def push_transient(self, time: float, callback: Callable[..., None],
                       priority: int = 0, args: Tuple = ()) -> None:
        """Schedule a callback that can never be cancelled, with no handle.

        Skips the :class:`Event` allocation entirely — this is the variant the
        per-message hot paths use (two pushes per simulated message).
        """
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (time, priority, seq, None, callback, args))
        self._live += 1

    def pop(self) -> Optional[Event]:
        """Return the next non-cancelled event, or ``None`` if the queue is empty.

        Transient entries are wrapped in a fresh :class:`Event` so callers of
        this (cold) method see one uniform type; the run loops bypass it.
        """
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            self._live -= 1
            event = entry[3]
            if event is None:
                return Event(entry[0], entry[1], entry[2], entry[4], entry[5])
            if event.cancelled:
                continue
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the next live event without removing it."""
        heap = self._heap
        while heap:
            event = heap[0][3]
            if event is None or not event.cancelled:
                break
            heapq.heappop(heap)
            self._live -= 1
        if not heap:
            return None
        return heap[0][0]

    def clear(self) -> None:
        """Drop all pending events."""
        self._heap.clear()
        self._live = 0
