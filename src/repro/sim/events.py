"""Event primitives for the discrete-event simulator.

An :class:`Event` is a callback scheduled at a virtual time.  Events compare
by ``(time, priority, sequence)`` so that simultaneous events are processed
in a deterministic order (FIFO within the same priority).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(order=True)
class Event:
    """A single scheduled callback in the simulation.

    Attributes:
        time: virtual time (milliseconds) at which the event fires.
        priority: lower values fire first among events at the same time.
        seq: monotonically increasing tie-breaker assigned by the queue.
        callback: zero-argument callable invoked when the event fires.
        cancelled: cancelled events are skipped when popped.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so it is ignored when it reaches the queue head."""
        self.cancelled = True


class EventQueue:
    """A priority queue of :class:`Event` objects keyed by virtual time."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def push(self, time: float, callback: Callable[[], None], priority: int = 0) -> Event:
        """Schedule ``callback`` at ``time`` and return a cancellable handle."""
        event = Event(time=time, priority=priority, seq=next(self._counter), callback=callback)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Return the next non-cancelled event, or ``None`` if the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            self._live -= 1
            if event.cancelled:
                continue
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the next live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._live -= 1
        if not self._heap:
            return None
        return self._heap[0].time

    def clear(self) -> None:
        """Drop all pending events."""
        self._heap.clear()
        self._live = 0
