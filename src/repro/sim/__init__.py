"""Discrete-event simulation substrate for geo-replicated protocols.

This package provides everything the consensus protocols need to run as if
they were deployed across wide-area sites, but inside a single deterministic
process:

* :class:`repro.sim.simulator.Simulator` -- the event loop (virtual time in
  milliseconds).
* :class:`repro.sim.network.Network` -- message passing with per-pair
  latencies, jitter, message loss and partitions.
* :class:`repro.sim.node.Node` -- the process abstraction protocols subclass:
  timers, message handlers, a serial CPU model, crash/restart.
* :mod:`repro.sim.topology` -- latency matrices, including the five Amazon
  EC2 sites used in the paper's evaluation.
* :mod:`repro.sim.failures` -- crash injection and an eventually-accurate
  failure detector.
"""

from repro.sim.costs import CostModel
from repro.sim.failures import CrashInjector, FailureDetector
from repro.sim.network import Network, NetworkConfig
from repro.sim.node import Node
from repro.sim.simulator import Simulator
from repro.sim.topology import Topology, ec2_five_sites, lan_topology, uniform_topology

__all__ = [
    "Simulator",
    "Network",
    "NetworkConfig",
    "Node",
    "Topology",
    "ec2_five_sites",
    "uniform_topology",
    "lan_topology",
    "CrashInjector",
    "FailureDetector",
    "CostModel",
]
