"""The discrete-event simulator driving all protocol executions.

Virtual time is expressed in **milliseconds** as floats.  The simulator is
purely deterministic: given the same seed and the same sequence of
``schedule`` calls, every run produces the same interleaving.

The :meth:`Simulator.run` / :meth:`Simulator.run_until` loops are the hottest
code in the repository (every simulated message passes through them twice:
network delivery and CPU dispatch), so they operate directly on the event
queue's heap instead of going through per-event method calls.
"""

from __future__ import annotations

from heapq import heappop
from typing import Callable, Optional, Tuple

from repro.sim.events import Event, EventQueue
from repro.sim.random import DeterministicRandom

#: Process-wide count of executed simulation events, across every Simulator
#: instance.  The perf tracker (:mod:`repro.metrics.perf`) samples this to
#: compute events/second for benchmark runs that build simulators internally.
_TOTAL_EVENTS_EXECUTED = 0


def total_events_executed() -> int:
    """Events executed by all simulators in this process (monotonic)."""
    return _TOTAL_EVENTS_EXECUTED


def credit_external_events(count: int) -> None:
    """Fold events executed on this process's behalf into the global counter.

    The sweep orchestrator (:mod:`repro.harness.sweep`) runs cells in worker
    processes whose simulators increment their *own* interpreter's counter.
    Crediting the workers' per-cell event counts back to the coordinating
    process keeps :func:`total_events_executed` — and therefore every
    ``BENCH_*.json`` events/second figure — comparable between serial and
    parallel runs.
    """
    global _TOTAL_EVENTS_EXECUTED
    if count < 0:
        raise ValueError(f"cannot credit a negative event count: {count}")
    _TOTAL_EVENTS_EXECUTED += count


class SimulationError(RuntimeError):
    """Raised when the simulation is driven into an invalid state."""


class Simulator:
    """A deterministic discrete-event scheduler.

    The simulator owns the virtual clock and the event queue.  Protocol nodes
    and the network never read wall-clock time; everything is expressed as
    virtual milliseconds relative to ``now``.

    Args:
        seed: seed for the simulator-owned random number generator, used by
            the network for jitter and loss and by workloads for arrivals.
    """

    def __init__(self, seed: int = 0) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self.rng = DeterministicRandom(seed)
        self._steps = 0
        self._max_steps: Optional[int] = None

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of events still waiting to fire (upper bound, includes cancelled)."""
        return len(self._queue)

    @property
    def steps_executed(self) -> int:
        """Number of events executed so far."""
        return self._steps

    def schedule(self, delay: float, callback: Callable[..., None], priority: int = 0,
                 args: Tuple = ()) -> Event:
        """Schedule ``callback`` to run ``delay`` milliseconds from now.

        Args:
            delay: non-negative delay in virtual milliseconds.
            callback: callable invoked with ``args`` when the event fires.
            priority: lower priorities fire earlier among simultaneous events.
            args: positional arguments pre-bound to the callback (lets hot
                paths schedule bound methods instead of allocating closures).

        Returns:
            A cancellable :class:`Event` handle.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        return self._queue.push(self._now + delay, callback, priority, args)

    def schedule_at(self, time: float, callback: Callable[..., None], priority: int = 0,
                    args: Tuple = ()) -> Event:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(f"cannot schedule at {time} < now {self._now}")
        return self._queue.push(time, callback, priority, args)

    def set_max_steps(self, max_steps: Optional[int]) -> None:
        """Abort a run after ``max_steps`` events (safety valve for tests)."""
        self._max_steps = max_steps

    def _check_max_steps(self) -> None:
        if self._max_steps is not None and self._steps > self._max_steps:
            raise SimulationError(f"exceeded max_steps={self._max_steps}")

    def step(self) -> bool:
        """Execute the next event.  Returns ``False`` if the queue is empty."""
        global _TOTAL_EVENTS_EXECUTED
        event = self._queue.pop()
        if event is None:
            return False
        if event.time < self._now:
            raise SimulationError("event time moved backwards")
        self._now = event.time
        self._steps += 1
        _TOTAL_EVENTS_EXECUTED += 1
        event.callback(*event.args)
        self._check_max_steps()
        return True

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or virtual time reaches ``until``.

        When ``until`` is given the clock is advanced to exactly ``until`` at
        the end of the run, even if the last event fired earlier.
        """
        global _TOTAL_EVENTS_EXECUTED
        heap = self._queue._heap
        queue = self._queue
        executed = 0
        try:
            while heap:
                entry = heap[0]
                time = entry[0]
                if until is not None and time > until:
                    break
                heappop(heap)
                queue._live -= 1
                event = entry[3]
                if event is None:
                    callback = entry[4]
                    args = entry[5]
                else:
                    if event.cancelled:
                        continue
                    callback = event.callback
                    args = event.args
                self._now = time
                self._steps += 1
                executed += 1
                callback(*args)
                if self._max_steps is not None:
                    self._check_max_steps()
        finally:
            # The process-wide counter is flushed per run() call: perf
            # trackers sample it between runs, never from inside callbacks.
            _TOTAL_EVENTS_EXECUTED += executed
        if until is not None and until > self._now:
            self._now = until

    def run_until(self, predicate: Callable[[], bool], deadline: Optional[float] = None,
                  check_every: int = 1) -> bool:
        """Run until ``predicate()`` is true.

        Args:
            predicate: completion condition.  With ``check_every == 1``
                (default) it is evaluated after every event; larger cadences
                amortize expensive predicates over many events.
            deadline: optional absolute virtual-time bound.
            check_every: evaluate the predicate every N executed events.  With
                a cadence above 1 up to ``check_every - 1`` extra events may
                run after the predicate first becomes true; the event
                *ordering* is unaffected, so cadence never changes simulation
                outcomes for monotone predicates.

        Returns:
            ``True`` if the predicate was satisfied, ``False`` if the queue
            drained or the deadline passed first.
        """
        global _TOTAL_EVENTS_EXECUTED
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        if predicate():
            return True
        heap = self._queue._heap
        queue = self._queue
        executed = 0
        since_check = 0
        try:
            while heap:
                entry = heap[0]
                time = entry[0]
                if deadline is not None and time > deadline:
                    self._now = deadline
                    return predicate()
                heappop(heap)
                queue._live -= 1
                event = entry[3]
                if event is None:
                    callback = entry[4]
                    args = entry[5]
                else:
                    if event.cancelled:
                        continue
                    callback = event.callback
                    args = event.args
                self._now = time
                self._steps += 1
                executed += 1
                callback(*args)
                if self._max_steps is not None:
                    self._check_max_steps()
                since_check += 1
                if since_check >= check_every:
                    since_check = 0
                    if predicate():
                        return True
            return predicate()
        finally:
            _TOTAL_EVENTS_EXECUTED += executed
