"""The discrete-event simulator driving all protocol executions.

Virtual time is expressed in **milliseconds** as floats.  The simulator is
purely deterministic: given the same seed and the same sequence of
``schedule`` calls, every run produces the same interleaving.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.events import Event, EventQueue
from repro.sim.random import DeterministicRandom


class SimulationError(RuntimeError):
    """Raised when the simulation is driven into an invalid state."""


class Simulator:
    """A deterministic discrete-event scheduler.

    The simulator owns the virtual clock and the event queue.  Protocol nodes
    and the network never read wall-clock time; everything is expressed as
    virtual milliseconds relative to ``now``.

    Args:
        seed: seed for the simulator-owned random number generator, used by
            the network for jitter and loss and by workloads for arrivals.
    """

    def __init__(self, seed: int = 0) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self.rng = DeterministicRandom(seed)
        self._steps = 0
        self._max_steps: Optional[int] = None

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of events still waiting to fire (upper bound, includes cancelled)."""
        return len(self._queue)

    @property
    def steps_executed(self) -> int:
        """Number of events executed so far."""
        return self._steps

    def schedule(self, delay: float, callback: Callable[[], None], priority: int = 0) -> Event:
        """Schedule ``callback`` to run ``delay`` milliseconds from now.

        Args:
            delay: non-negative delay in virtual milliseconds.
            callback: zero-argument callable.
            priority: lower priorities fire earlier among simultaneous events.

        Returns:
            A cancellable :class:`Event` handle.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        return self._queue.push(self._now + delay, callback, priority)

    def schedule_at(self, time: float, callback: Callable[[], None], priority: int = 0) -> Event:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(f"cannot schedule at {time} < now {self._now}")
        return self._queue.push(time, callback, priority)

    def set_max_steps(self, max_steps: Optional[int]) -> None:
        """Abort a run after ``max_steps`` events (safety valve for tests)."""
        self._max_steps = max_steps

    def step(self) -> bool:
        """Execute the next event.  Returns ``False`` if the queue is empty."""
        event = self._queue.pop()
        if event is None:
            return False
        if event.time < self._now:
            raise SimulationError("event time moved backwards")
        self._now = event.time
        self._steps += 1
        event.callback()
        if self._max_steps is not None and self._steps > self._max_steps:
            raise SimulationError(f"exceeded max_steps={self._max_steps}")
        return True

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or virtual time reaches ``until``.

        When ``until`` is given the clock is advanced to exactly ``until`` at
        the end of the run, even if the last event fired earlier.
        """
        while True:
            next_time = self._queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            if not self.step():
                break
        if until is not None and until > self._now:
            self._now = until

    def run_until(self, predicate: Callable[[], bool], deadline: Optional[float] = None) -> bool:
        """Run until ``predicate()`` is true.

        Args:
            predicate: evaluated after every event.
            deadline: optional absolute virtual-time bound.

        Returns:
            ``True`` if the predicate was satisfied, ``False`` if the queue
            drained or the deadline passed first.
        """
        if predicate():
            return True
        while True:
            next_time = self._queue.peek_time()
            if next_time is None:
                return predicate()
            if deadline is not None and next_time > deadline:
                self._now = deadline
                return predicate()
            if not self.step():
                return predicate()
            if predicate():
                return True
