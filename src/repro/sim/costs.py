"""CPU cost model for message processing.

The paper's throughput results (Figure 9) are shaped not only by message
delays but also by the CPU work each protocol performs per command: EPaxos
pays for analysing its dependency graph before execution, CAESAR pays a much
smaller cost for scanning predecessor sets, Multi-Paxos concentrates all work
on the leader.  The :class:`CostModel` gives every simulated node a serial
CPU whose per-message costs can be tuned per message type, which is what
makes the simulated systems saturate at different throughputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class CostModel:
    """Per-message-type CPU costs, in milliseconds of simulated CPU time.

    Attributes:
        default_cost_ms: cost charged for any message type not listed in
            ``per_type_ms``.
        per_type_ms: overrides keyed by the message class name.
        per_dependency_ms: extra cost charged per element when a protocol
            explicitly accounts for dependency/predecessor processing (see
            :meth:`dependency_cost`).
        client_request_ms: cost of accepting a client request.
        self_message_factor: multiplier applied to messages a node sends to
            itself (no real serialization/deserialization happens for those).
    """

    default_cost_ms: float = 0.015
    per_type_ms: Dict[str, float] = field(default_factory=dict)
    per_dependency_ms: float = 0.002
    client_request_ms: float = 0.01
    self_message_factor: float = 0.4

    def message_cost(self, message: object, local: bool = False) -> float:
        """CPU time needed to process ``message`` on the receiving node.

        Args:
            message: the message being processed.
            local: ``True`` when the sender is the receiving node itself.
        """
        type_name = type(message).__name__
        cost = self.per_type_ms.get(type_name, self.default_cost_ms)
        if local:
            cost *= self.self_message_factor
        return cost

    def dependency_cost(self, n_dependencies: int) -> float:
        """CPU time for scanning/analysing ``n_dependencies`` dependencies."""
        if n_dependencies <= 0:
            return 0.0
        return self.per_dependency_ms * n_dependencies

    def scaled(self, factor: float) -> "CostModel":
        """Return a copy of this model with every cost multiplied by ``factor``."""
        return CostModel(
            default_cost_ms=self.default_cost_ms * factor,
            per_type_ms={k: v * factor for k, v in self.per_type_ms.items()},
            per_dependency_ms=self.per_dependency_ms * factor,
            client_request_ms=self.client_request_ms * factor,
            self_message_factor=self.self_message_factor,
        )


def zero_cost_model() -> CostModel:
    """A cost model where CPU time is free (pure network-latency studies)."""
    return CostModel(default_cost_ms=0.0, per_type_ms={}, per_dependency_ms=0.0, client_request_ms=0.0)
