"""repro: a reproduction of CAESAR — "Speeding up Consensus by Chasing Fast Decisions".

The package implements the CAESAR multi-leader Generalized Consensus protocol
(:mod:`repro.core`), the four baseline protocols the paper compares against
(:mod:`repro.baselines`), and everything needed to run them: a deterministic
discrete-event wide-area simulator (:mod:`repro.sim`), a replicated key-value
store (:mod:`repro.kvstore`), workload generators (:mod:`repro.workload`),
metrics (:mod:`repro.metrics`), an experiment harness that regenerates
every figure of the paper's evaluation (:mod:`repro.harness`), and a real
asyncio TCP deployment mode running the same protocol code over sockets
(:mod:`repro.net`).

Programmatic users should import :mod:`repro.api` — the one stable facade
re-exporting every entry point and config dataclass.
"""

__version__ = "1.0.0"

from repro.consensus.command import Command
from repro.consensus.quorums import QuorumSystem
from repro.core.caesar import CaesarReplica
from repro.core.config import CaesarConfig

__all__ = ["Command", "QuorumSystem", "CaesarReplica", "CaesarConfig", "__version__"]
