"""Shared Generalized-Consensus abstractions.

These are the pieces every protocol in the repository (CAESAR and all four
baselines) builds on: the command model and its conflict relation, logical
timestamps, ballots, quorum-size math, and the replica/decision interfaces.
"""

from repro.consensus.ballots import Ballot
from repro.consensus.command import Command, CommandId, commands_conflict
from repro.consensus.interface import (
    ConsensusReplica,
    Decision,
    DecisionKind,
    ExecutionLog,
)
from repro.consensus.quorums import QuorumSystem, classic_quorum_size, fast_quorum_size, max_failures
from repro.consensus.timestamps import LogicalTimestamp, TimestampGenerator

__all__ = [
    "Command",
    "CommandId",
    "commands_conflict",
    "LogicalTimestamp",
    "TimestampGenerator",
    "Ballot",
    "QuorumSystem",
    "classic_quorum_size",
    "fast_quorum_size",
    "max_failures",
    "ConsensusReplica",
    "Decision",
    "DecisionKind",
    "ExecutionLog",
]
