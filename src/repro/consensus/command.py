"""Commands and the non-commutativity (conflict) relation.

A command is an operation submitted by a client against the replicated
key-value store.  Following the paper's benchmark (Section VI), two commands
conflict when they access the same key; the key is drawn from a shared pool
to control the conflict percentage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

#: Commands are globally identified by ``(client_id, sequence_number)``.
CommandId = Tuple[int, int]


@dataclass(frozen=True)
class Command:
    """A client operation to be ordered by consensus.

    Attributes:
        command_id: globally unique ``(client_id, sequence)`` pair.
        key: the key accessed by the operation; the conflict relation is
            "same key".
        operation: operation type, ``"put"`` or ``"get"``.
        value: payload written by a ``put`` (ignored for ``get``).
        origin: id of the replica the client submitted the command to, used
            for reporting the result back.
        payload_size: nominal serialized size in bytes (the paper uses
            15-byte commands); only affects the network byte counters.
    """

    command_id: CommandId
    key: str
    operation: str = "put"
    value: Optional[str] = None
    origin: int = 0
    payload_size: int = 15

    def conflicts_with(self, other: "Command") -> bool:
        """Whether this command and ``other`` are non-commutative.

        Two commands conflict when they touch the same key and at least one
        of them writes.  Reads of the same key commute with each other.
        """
        if self.key != other.key:
            return False
        if self.operation == "get" and other.operation == "get":
            return False
        return True

    @property
    def is_write(self) -> bool:
        """Whether the command mutates the store."""
        return self.operation != "get"

    def __str__(self) -> str:
        return f"Cmd({self.command_id[0]}.{self.command_id[1]} {self.operation} {self.key})"


def commands_conflict(a: Command, b: Command) -> bool:
    """Module-level convenience wrapper around :meth:`Command.conflicts_with`."""
    return a.conflicts_with(b)


@dataclass
class CommandResult:
    """Outcome of executing a command on the replicated state machine.

    Attributes:
        command_id: the command this result belongs to.
        value: value returned by the operation (previous/read value).
        executed_at: virtual time (ms) at which the origin replica executed it.
        rejected: the replica's admission policy shed this command instead of
            ordering it; ``value`` is ``None`` and nothing was executed.
    """

    command_id: CommandId
    value: Optional[str]
    executed_at: float = 0.0
    rejected: bool = False
