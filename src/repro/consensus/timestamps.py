"""Logical timestamps used by CAESAR's ordering layer.

Section V-A of the paper defines the per-node logical clock ``TS_i`` whose
values live in ``{<k, i> : k in N}`` and are totally ordered first by ``k``
and then by the node id.  Two different nodes therefore can never generate
equal timestamps, which is what lets CAESAR order conflicting commands by
timestamp alone.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class LogicalTimestamp:
    """A ``<k, node_id>`` logical timestamp.

    Ordering: ``<k1, i> < <k2, j>`` iff ``k1 < k2`` or (``k1 == k2`` and
    ``i < j``).

    The comparison operators are written out explicitly (instead of using
    ``functools.total_ordering`` over tuples): timestamp comparisons sit on
    the wait-condition hot path, where the derived operators' extra call and
    tuple allocations are measurable.
    """

    counter: int
    node_id: int

    def __lt__(self, other: "LogicalTimestamp") -> bool:
        if not isinstance(other, LogicalTimestamp):
            return NotImplemented
        if self.counter != other.counter:
            return self.counter < other.counter
        return self.node_id < other.node_id

    def __le__(self, other: "LogicalTimestamp") -> bool:
        if not isinstance(other, LogicalTimestamp):
            return NotImplemented
        if self.counter != other.counter:
            return self.counter < other.counter
        return self.node_id <= other.node_id

    def __gt__(self, other: "LogicalTimestamp") -> bool:
        if not isinstance(other, LogicalTimestamp):
            return NotImplemented
        if self.counter != other.counter:
            return self.counter > other.counter
        return self.node_id > other.node_id

    def __ge__(self, other: "LogicalTimestamp") -> bool:
        if not isinstance(other, LogicalTimestamp):
            return NotImplemented
        if self.counter != other.counter:
            return self.counter > other.counter
        return self.node_id >= other.node_id

    def next_for(self, node_id: int) -> "LogicalTimestamp":
        """The smallest timestamp owned by ``node_id`` strictly greater than self."""
        if node_id > self.node_id:
            return LogicalTimestamp(self.counter, node_id)
        return LogicalTimestamp(self.counter + 1, node_id)

    def __str__(self) -> str:
        return f"<{self.counter},{self.node_id}>"


class TimestampGenerator:
    """Per-node monotonically increasing timestamp source.

    The generator implements the two update rules from Section V-A:

    * whenever the node proposes a command it uses a fresh value greater than
      anything it has handled so far (:meth:`next_timestamp`);
    * whenever it observes a timestamp ``T`` from another node it advances its
      clock beyond ``T`` (:meth:`observe`).
    """

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self._current = LogicalTimestamp(0, node_id)

    @property
    def current(self) -> LogicalTimestamp:
        """The latest value of the clock (already used or observed)."""
        return self._current

    def next_timestamp(self) -> LogicalTimestamp:
        """Return a fresh timestamp for a command proposed by this node."""
        self._current = LogicalTimestamp(self._current.counter + 1, self.node_id)
        return self._current

    def observe(self, timestamp: LogicalTimestamp) -> None:
        """Advance the clock past an externally observed timestamp."""
        if timestamp >= self._current:
            self._current = LogicalTimestamp(timestamp.counter + 1, self.node_id)

    def suggestion_greater_than(self, timestamp: LogicalTimestamp) -> LogicalTimestamp:
        """A fresh local timestamp strictly greater than ``timestamp``.

        Used when an acceptor rejects a proposal and must suggest a new,
        larger timestamp for the command (Section IV-B).
        """
        self.observe(timestamp)
        return self.next_timestamp()
