"""Quorum-size arithmetic for classic and fast quorums.

Section III of the paper: a *classic quorum* (CQ) is any set of at least
``floor(N/2) + 1`` nodes; a *fast quorum* (FQ) is any set of at least
``ceil(3N/4)`` nodes.  For the five-node deployment used in the evaluation
this gives CQ = 3 and FQ = 4, which is why the paper notes that CAESAR must
contact one node more than EPaxos to decide fast.

EPaxos uses a different fast-quorum size (``f + floor((f+1)/2)`` additional
replicas beyond the command leader); that value is also computed here so the
baselines share a single source of quorum truth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def max_failures(n: int) -> int:
    """Maximum number of crash failures tolerated with ``n`` nodes (minority)."""
    return (n - 1) // 2


def classic_quorum_size(n: int) -> int:
    """Size of a classic (majority) quorum: ``floor(N/2) + 1``."""
    return n // 2 + 1


def fast_quorum_size(n: int) -> int:
    """Size of CAESAR's fast quorum: ``ceil(3N/4)``."""
    return math.ceil(3 * n / 4)


def epaxos_fast_quorum_size(n: int) -> int:
    """EPaxos' optimized fast-path quorum size, *including* the command leader.

    EPaxos needs ``f + floor((f+1)/2)`` replicas counting the command leader
    itself; for N = 5 (f = 2) this is 3 total, one fewer than CAESAR's fast
    quorum — which is why the paper notes CAESAR must contact one extra node.
    """
    f = max_failures(n)
    return max(classic_quorum_size(n) - 1, f + (f + 1) // 2)


@dataclass(frozen=True)
class QuorumSystem:
    """Pre-computed quorum sizes for a cluster of ``n`` nodes.

    Attributes:
        n: cluster size.
        classic: classic-quorum size (majority).
        fast: CAESAR fast-quorum size.
        f: number of tolerated failures.
    """

    n: int
    classic: int
    fast: int
    f: int

    @classmethod
    def for_cluster(cls, n: int) -> "QuorumSystem":
        """Build the quorum system for an ``n``-node cluster."""
        if n < 3:
            raise ValueError("consensus clusters need at least 3 nodes")
        return cls(n=n, classic=classic_quorum_size(n), fast=fast_quorum_size(n), f=max_failures(n))

    def is_classic_quorum(self, count: int) -> bool:
        """Whether ``count`` replies form a classic quorum."""
        return count >= self.classic

    def is_fast_quorum(self, count: int) -> bool:
        """Whether ``count`` replies form a fast quorum."""
        return count >= self.fast

    @property
    def recovery_majority(self) -> int:
        """``floor(CQ/2) + 1`` — the minimum overlap between a classic and a fast quorum.

        Used by CAESAR's recovery to reconstruct the predecessor whitelist of a
        possibly fast-decided command (Section V-E).
        """
        return self.classic // 2 + 1
