"""Ballots identify which leader is currently driving a command's decision.

CAESAR (like Paxos) tags every per-command message with a ballot number; an
acceptor ignores messages whose ballot is lower than the highest ballot it
has joined for that command.  Ballot 0 belongs to the command's original
leader; recovery bumps the ballot so that at most one recovering leader can
complete the decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache, total_ordering


@total_ordering
@dataclass(frozen=True)
class Ballot:
    """A ``(round, node_id)`` ballot, ordered lexicographically.

    Using the node id as a tie breaker guarantees two different nodes never
    produce the same ballot, so concurrent recoveries always have a winner.
    """

    round: int
    node_id: int

    def __lt__(self, other: "Ballot") -> bool:
        if not isinstance(other, Ballot):
            return NotImplemented
        return (self.round, self.node_id) < (other.round, other.node_id)

    @classmethod
    @lru_cache(maxsize=None)
    def initial(cls, leader_id: int) -> "Ballot":
        """The ballot the original command leader uses (round 0).

        Cached: round-0 ballots are requested once per message on some hot
        paths, and the class is immutable, so one instance per leader
        suffices.
        """
        return cls(0, leader_id)

    def next_for(self, node_id: int) -> "Ballot":
        """The ballot a recovering node should use to supersede this one."""
        return Ballot(self.round + 1, node_id)

    def __str__(self) -> str:
        return f"b({self.round},{self.node_id})"
