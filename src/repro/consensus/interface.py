"""Replica interface shared by CAESAR and all baseline protocols.

Every protocol in this repository is implemented as a subclass of
:class:`ConsensusReplica`.  The class wires three things together:

* the simulated :class:`~repro.sim.node.Node` (network, timers, CPU model);
* the replicated state machine the decided commands are applied to;
* book-keeping the experiment harness relies on: per-command
  :class:`Decision` records (fast vs. slow path, phase timings) and the
  per-replica :class:`ExecutionLog` used by the correctness checks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.consensus.command import Command, CommandId, CommandResult
from repro.consensus.quorums import QuorumSystem
from repro.kvstore.state_machine import StateMachine
from repro.sim.costs import CostModel
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.simulator import Simulator


class DecisionKind(enum.Enum):
    """How a command reached its final order."""

    FAST = "fast"
    SLOW = "slow"
    RECOVERED = "recovered"


@dataclass
class Decision:
    """Per-command record kept by the replica that proposed the command.

    Attributes:
        command_id: the command being tracked.
        proposer: replica the client submitted the command to.
        submitted_at: virtual time of the client submission.
        decided_at: virtual time at which the proposer learned the final order.
        executed_at: virtual time at which the proposer executed the command
            and answered the client.
        kind: fast path, slow path, or completed by recovery.
        phase_times: per-phase durations in ms (keys such as ``"propose"``,
            ``"retry"``, ``"deliver"``, ``"wait"``), used by Figure 11.
    """

    command_id: CommandId
    proposer: int
    submitted_at: float
    decided_at: Optional[float] = None
    executed_at: Optional[float] = None
    kind: Optional[DecisionKind] = None
    phase_times: Dict[str, float] = field(default_factory=dict)

    @property
    def latency_ms(self) -> Optional[float]:
        """Client-visible latency (submission to execution at the proposer)."""
        if self.executed_at is None:
            return None
        return self.executed_at - self.submitted_at

    @property
    def is_complete(self) -> bool:
        """Whether the command has been executed at its proposer."""
        return self.executed_at is not None


class ExecutionLog:
    """Ordered record of the commands a replica has executed.

    The correctness checks compare logs of different replicas: conflicting
    commands must appear in the same relative order everywhere (Generalized
    Consensus consistency), while commuting commands may be permuted.
    """

    def __init__(self) -> None:
        self._entries: List[Command] = []
        self._positions: Dict[CommandId, int] = {}

    def append(self, command: Command) -> None:
        """Record that ``command`` was executed (exactly once per command)."""
        if command.command_id in self._positions:
            raise ValueError(f"command {command.command_id} executed twice")
        self._positions[command.command_id] = len(self._entries)
        self._entries.append(command)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def position(self, command_id: CommandId) -> Optional[int]:
        """Index of a command in this log, or ``None`` if not executed here."""
        return self._positions.get(command_id)

    def contains(self, command_id: CommandId) -> bool:
        """Whether the command has been executed by this replica."""
        return command_id in self._positions

    @property
    def commands(self) -> List[Command]:
        """The executed commands, oldest first (copy)."""
        return list(self._entries)

    def conflicting_order_violations(self, other: "ExecutionLog") -> List[tuple]:
        """Pairs of conflicting commands ordered differently in ``self`` and ``other``.

        Conflicts only exist between commands on the same key, so the check
        groups the common commands per key and first verifies that the
        other log's positions are monotone within each group — an O(n) pass
        that settles the overwhelmingly common no-violation case.  Only keys
        whose position sequence is non-monotone fall back to the exact
        pairwise comparison (which also accounts for commuting reads).
        """
        violations: List[tuple] = []
        other_positions = other._positions
        by_key: Dict[str, List[tuple]] = {}
        for c in self._entries:
            position = other_positions.get(c.command_id)
            if position is not None:
                by_key.setdefault(c.key, []).append((c, position))
        for group in by_key.values():
            if len(group) < 2:
                continue
            positions = [position for _, position in group]
            if all(positions[i] < positions[i + 1] for i in range(len(positions) - 1)):
                continue
            for i, (first, first_pos) in enumerate(group):
                for second, second_pos in group[i + 1:]:
                    if first_pos > second_pos and first.conflicts_with(second):
                        violations.append((first.command_id, second.command_id))
        return violations


class ConsensusReplica(Node):
    """Base class for every protocol replica.

    Args:
        node_id: index of this replica.
        sim: shared simulator.
        network: shared network.
        quorums: pre-computed quorum sizes for the cluster.
        state_machine: the local copy of the replicated state machine.
        cost_model: CPU model (``None`` for the default).
    """

    #: human-readable protocol name, overridden by subclasses.
    protocol_name = "abstract"

    def __init__(self, node_id: int, sim: Simulator, network: Network, quorums: QuorumSystem,
                 state_machine: StateMachine, cost_model: Optional[CostModel] = None) -> None:
        super().__init__(node_id, sim, network, cost_model)
        self.quorums = quorums
        self.state_machine = state_machine
        self.execution_log = ExecutionLog()
        self.decisions: Dict[CommandId, Decision] = {}
        self._client_callbacks: Dict[CommandId, Callable[[CommandResult], None]] = {}
        self.commands_executed = 0
        #: optional admission/backpressure policy guarding :meth:`submit`
        #: (see :mod:`repro.runtime.admission`); ``None`` keeps the submit
        #: path hook-free.
        self.admission = None
        #: optional zero-argument hook fired after every local execution; the
        #: cluster harness uses it to maintain an O(1) completion counter.
        self.execution_listener: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------ client API

    def submit(self, command: Command,
               callback: Optional[Callable[[CommandResult], None]] = None) -> None:
        """Entry point for a client co-located with this replica.

        The replica becomes the command's leader, tracks a :class:`Decision`
        record for it, and will invoke ``callback`` once the command has been
        executed locally.  When an admission policy is installed and sheds
        the command, ``callback`` fires immediately with a rejected result
        and the protocol never sees the command.
        """
        if self.crashed:
            return
        if self.admission is not None:
            reason = self.admission.try_admit(command.command_id, self.sim.now)
            if reason is not None:
                if callback is not None:
                    callback(CommandResult(command_id=command.command_id, value=None,
                                           executed_at=self.sim.now, rejected=True))
                return
        if callback is not None:
            self._client_callbacks[command.command_id] = callback
        self.decisions[command.command_id] = Decision(
            command_id=command.command_id, proposer=self.node_id, submitted_at=self.sim.now)
        self.consume_cpu(self.cost_model.client_request_ms)
        self.propose(command)

    def propose(self, command: Command) -> None:
        """Start the protocol-specific ordering of ``command`` (subclass hook)."""
        raise NotImplementedError

    # -------------------------------------------------------------- execution

    def execute_command(self, command: Command) -> CommandResult:
        """Apply a decided command to the local state machine, exactly once."""
        value = self.state_machine.apply(command)
        self.execution_log.append(command)
        self.commands_executed += 1
        if self.execution_listener is not None:
            self.execution_listener()
        result = CommandResult(command_id=command.command_id, value=value, executed_at=self.sim.now)
        if self.admission is not None:
            self.admission.release(command.command_id, self.sim.now)
        decision = self.decisions.get(command.command_id)
        if decision is not None and decision.executed_at is None:
            decision.executed_at = self.sim.now
        callback = self._client_callbacks.pop(command.command_id, None)
        if callback is not None:
            callback(result)
        return result

    def has_executed(self, command_id: CommandId) -> bool:
        """Whether this replica has already executed the command."""
        return self.execution_log.contains(command_id)

    # ------------------------------------------------------------- reporting

    def record_decided(self, command_id: CommandId, kind: DecisionKind) -> None:
        """Record that the proposer learned the final order of a command."""
        decision = self.decisions.get(command_id)
        if decision is not None and decision.decided_at is None:
            decision.decided_at = self.sim.now
            decision.kind = kind

    def record_phase_time(self, command_id: CommandId, phase: str, duration_ms: float) -> None:
        """Accumulate per-phase latency for Figure 11-style breakdowns."""
        decision = self.decisions.get(command_id)
        if decision is not None:
            decision.phase_times[phase] = decision.phase_times.get(phase, 0.0) + duration_ms

    def completed_decisions(self) -> List[Decision]:
        """All decisions for commands proposed here that have been executed."""
        return [d for d in self.decisions.values() if d.is_complete]

    def fast_path_ratio(self) -> Optional[float]:
        """Fraction of completed local decisions that used the fast path."""
        done = [d for d in self.completed_decisions() if d.kind is not None]
        if not done:
            return None
        fast = sum(1 for d in done if d.kind is DecisionKind.FAST)
        return fast / len(done)
