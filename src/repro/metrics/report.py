"""Text rendering for the results store (``repro report``).

Turns :class:`~repro.metrics.store.ResultsStore` rows back into the repo's
fixed-width table idiom (:func:`~repro.harness.report.format_table`): a run
listing, per-run offered-load curves for overload sweeps, and cross-commit
trend tables that show how a label's headline metrics moved over time.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.harness.report import format_table
from repro.metrics.store import LoadPointRecord, ResultsStore, RunRecord

#: Metrics promoted into the trend table when present in a run's metrics
#: JSON, in display order.
TREND_METRIC_KEYS = ("throughput_per_second", "goodput_per_second", "peak_goodput",
                     "knee_offered_per_second", "mean_latency_ms", "p50_latency_ms",
                     "p99_latency_ms", "p999_latency_ms", "rejected",
                     "events_per_second")

#: Short column headers for :data:`TREND_METRIC_KEYS`.
_TREND_HEADERS = {"throughput_per_second": "thru/s", "goodput_per_second": "good/s",
                  "peak_goodput": "peak good/s",
                  "knee_offered_per_second": "knee offered/s",
                  "mean_latency_ms": "mean ms", "p50_latency_ms": "p50 ms",
                  "p99_latency_ms": "p99 ms", "p999_latency_ms": "p999 ms",
                  "rejected": "rejected", "events_per_second": "events/s"}


def format_runs_table(runs: Sequence[RunRecord],
                      title: str = "stored runs (newest first)") -> str:
    """Render a run listing: identity columns, no metric payloads."""
    rows = [[run.run_id, run.created_at, run.kind, run.label,
             run.protocol, run.substrate, run.git_commit]
            for run in runs]
    return format_table(title, ["run", "created", "kind", "label", "protocol",
                                "substrate", "commit"], rows)


def format_load_points_table(run: RunRecord, points: Sequence[LoadPointRecord]) -> str:
    """Render one overload run's saturation curve."""
    title = (f"run {run.run_id} [{run.label}] {run.protocol or '-'}"
             f"/{run.substrate or '-'} @ {run.git_commit or '-'}"
             + (f" admission={run.config['admission']}"
                if run.config.get("admission") else ""))
    rows = [[point.offered_per_second, point.submitted, point.completed,
             point.rejected, point.goodput_per_second, point.p50_ms,
             point.p99_ms, point.p999_ms]
            for point in points]
    return format_table(title, ["offered/s", "submitted", "completed", "rejected",
                                "goodput/s", "p50 ms", "p99 ms", "p999 ms"], rows)


def format_trend_table(label: str, runs: Sequence[RunRecord]) -> str:
    """Render the cross-run/cross-commit trend for one label, oldest first.

    Only metric columns where at least one run has a value are shown, so
    experiment labels and overload labels each get their natural columns.
    """
    ordered = list(reversed(runs))  # runs() returns newest first
    keys = [key for key in TREND_METRIC_KEYS
            if any(run.metrics.get(key) is not None for run in ordered)]
    headers = ["run", "created", "commit", "protocol"] + \
        [_TREND_HEADERS[key] for key in keys]
    rows = [[run.run_id, run.created_at, run.git_commit, run.protocol]
            + [run.metrics.get(key) for key in keys]
            for run in ordered]
    return format_table(f"trend [{label}] ({len(ordered)} runs)", headers, rows)


def render_report(store: ResultsStore, kind: Optional[str] = None,
                  label: Optional[str] = None, limit: int = 20,
                  points: bool = False) -> str:
    """Build the full ``repro report`` output.

    Args:
        store: the results store to read.
        kind: restrict to one run kind (``experiment`` / ``overload`` / ...).
        label: restrict to one label; when given, the trend table for it is
            rendered (otherwise one trend table per label).
        limit: newest runs per label to include.
        points: also render each overload run's per-load-point curve.

    Returns:
        The report text; a friendly one-liner when nothing matches.
    """
    labels = [label] if label is not None else store.labels(kind=kind)
    sections: List[str] = []
    listed: List[RunRecord] = []
    trend_sections: List[str] = []
    point_sections: List[str] = []
    for name in labels:
        runs = store.runs(kind=kind, label=name, limit=limit)
        if not runs:
            continue
        listed.extend(runs)
        trend_sections.append(format_trend_table(name, runs))
        if points:
            for run in runs:
                curve = store.load_points(run.run_id)
                if curve:
                    point_sections.append(format_load_points_table(run, curve))
    if not listed:
        scope = " ".join(part for part in
                         (f"kind={kind}" if kind else "",
                          f"label={label}" if label else "") if part)
        return f"no stored runs{' matching ' + scope if scope else ''} in {store.path}"
    listed.sort(key=lambda run: run.run_id, reverse=True)
    sections.append(format_runs_table(listed[:limit]))
    sections.extend(trend_sections)
    sections.extend(point_sections)
    return "\n\n".join(sections)
