"""Persistent, queryable results store for experiment and loadgen runs.

The BENCH_*.json records under ``benchmarks/results/`` capture one snapshot
per figure per commit — good for the CI perf gate, useless for questions
like "how did caesar's p99 at 2x the knee move over the last five commits".
:class:`ResultsStore` answers those: an append-only SQLite database (stdlib
``sqlite3``, no new dependencies) that every ``repro run`` / ``sweep`` /
``loadgen`` / ``overload`` invocation can append to, keyed by git commit.

Two tables:

* ``runs`` — one row per invocation: kind (``experiment`` / ``sweep`` /
  ``loadgen`` / ``overload`` / ``bench``), a free-form label, protocol,
  substrate (``sim`` / ``tcp``), seed, git commit, and the full config and
  metrics payloads as JSON;
* ``load_points`` — one row per offered-load point of an overload sweep
  (offered rate, submitted/completed/rejected counts, goodput, latency
  percentiles), so saturation curves are queryable without re-parsing JSON.

``repro report`` (:mod:`repro.metrics.report`) renders both as trend tables.
The store is additive: nothing else reads it unless it exists, and the BENCH
records keep being written alongside.
"""

from __future__ import annotations

import datetime
import json
import os
import pathlib
import sqlite3
import subprocess
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

#: Default on-disk location, shared by the CLI and CI (repo-relative).
DEFAULT_STORE_PATH = pathlib.Path("benchmarks/results/store.db")

#: Environment variable overriding the commit recorded with each run — CI
#: sets it so records key on the commit under test even in detached or
#: shallow checkouts.
GIT_COMMIT_ENV_VAR = "REPRO_GIT_COMMIT"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id      INTEGER PRIMARY KEY AUTOINCREMENT,
    created_at  TEXT NOT NULL,
    kind        TEXT NOT NULL,
    label       TEXT NOT NULL,
    protocol    TEXT,
    substrate   TEXT,
    seed        INTEGER,
    git_commit  TEXT,
    config      TEXT NOT NULL DEFAULT '{}',
    metrics     TEXT NOT NULL DEFAULT '{}'
);
CREATE INDEX IF NOT EXISTS idx_runs_kind_label ON runs (kind, label, run_id);
CREATE TABLE IF NOT EXISTS load_points (
    run_id              INTEGER NOT NULL REFERENCES runs (run_id),
    point_index         INTEGER NOT NULL,
    offered_per_second  REAL,
    submitted           INTEGER,
    completed           INTEGER,
    rejected            INTEGER,
    goodput_per_second  REAL,
    mean_ms             REAL,
    p50_ms              REAL,
    p99_ms              REAL,
    p999_ms             REAL,
    extra               TEXT NOT NULL DEFAULT '{}',
    PRIMARY KEY (run_id, point_index)
);
"""


def current_git_commit(cwd: Optional[pathlib.Path] = None) -> str:
    """Short commit hash to key stored runs on.

    Resolution order: :data:`GIT_COMMIT_ENV_VAR`, then ``git rev-parse``,
    then the literal ``"unknown"`` (the store must never make a run fail
    just because it executed outside a checkout).
    """
    override = os.environ.get(GIT_COMMIT_ENV_VAR)
    if override:
        return override
    try:
        output = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                                cwd=cwd, capture_output=True, text=True, timeout=10)
        if output.returncode == 0 and output.stdout.strip():
            return output.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


@dataclass(frozen=True)
class RunRecord:
    """One stored run (a row of ``runs``, JSON payloads decoded)."""

    run_id: int
    created_at: str
    kind: str
    label: str
    protocol: Optional[str]
    substrate: Optional[str]
    seed: Optional[int]
    git_commit: Optional[str]
    config: Dict[str, object] = field(default_factory=dict)
    metrics: Dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class LoadPointRecord:
    """One stored offered-load point (a row of ``load_points``)."""

    run_id: int
    point_index: int
    offered_per_second: Optional[float]
    submitted: Optional[int]
    completed: Optional[int]
    rejected: Optional[int]
    goodput_per_second: Optional[float]
    mean_ms: Optional[float]
    p50_ms: Optional[float]
    p99_ms: Optional[float]
    p999_ms: Optional[float]
    extra: Dict[str, object] = field(default_factory=dict)


class ResultsStore:
    """Append/query interface over the SQLite results database.

    Args:
        path: database file; parent directories are created, and the schema
            is applied idempotently on open.  ``":memory:"`` works for tests.
    """

    def __init__(self, path: pathlib.Path | str = DEFAULT_STORE_PATH) -> None:
        self.path = pathlib.Path(path) if str(path) != ":memory:" else path
        if isinstance(self.path, pathlib.Path):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._connection = sqlite3.connect(str(self.path))
        self._connection.executescript(_SCHEMA)
        self._connection.commit()

    # ------------------------------------------------------------- appending

    def record_run(self, kind: str, label: str, *, protocol: Optional[str] = None,
                   substrate: Optional[str] = None, seed: Optional[int] = None,
                   config: Optional[Dict[str, object]] = None,
                   metrics: Optional[Dict[str, object]] = None,
                   git_commit: Optional[str] = None,
                   created_at: Optional[str] = None) -> int:
        """Append one run row; returns its ``run_id``.

        ``git_commit`` defaults to :func:`current_git_commit` and
        ``created_at`` to the current UTC time — pass them explicitly for
        reproducible fixtures.
        """
        if git_commit is None:
            git_commit = current_git_commit()
        if created_at is None:
            created_at = datetime.datetime.now(datetime.timezone.utc).isoformat(
                timespec="seconds")
        cursor = self._connection.execute(
            "INSERT INTO runs (created_at, kind, label, protocol, substrate, seed,"
            " git_commit, config, metrics) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (created_at, kind, label, protocol, substrate, seed, git_commit,
             json.dumps(config or {}, sort_keys=True),
             json.dumps(metrics or {}, sort_keys=True)))
        self._connection.commit()
        return int(cursor.lastrowid)

    def record_load_point(self, run_id: int, point_index: int, *,
                          offered_per_second: Optional[float] = None,
                          submitted: Optional[int] = None,
                          completed: Optional[int] = None,
                          rejected: Optional[int] = None,
                          goodput_per_second: Optional[float] = None,
                          mean_ms: Optional[float] = None,
                          p50_ms: Optional[float] = None,
                          p99_ms: Optional[float] = None,
                          p999_ms: Optional[float] = None,
                          extra: Optional[Dict[str, object]] = None) -> None:
        """Append one offered-load point belonging to run ``run_id``."""
        self._connection.execute(
            "INSERT INTO load_points (run_id, point_index, offered_per_second,"
            " submitted, completed, rejected, goodput_per_second, mean_ms, p50_ms,"
            " p99_ms, p999_ms, extra) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (run_id, point_index, offered_per_second, submitted, completed, rejected,
             goodput_per_second, mean_ms, p50_ms, p99_ms, p999_ms,
             json.dumps(extra or {}, sort_keys=True)))
        self._connection.commit()

    # -------------------------------------------------------------- querying

    def runs(self, kind: Optional[str] = None, label: Optional[str] = None,
             limit: Optional[int] = None) -> List[RunRecord]:
        """Stored runs, newest first, optionally filtered by kind and label."""
        clauses, params = [], []
        if kind is not None:
            clauses.append("kind = ?")
            params.append(kind)
        if label is not None:
            clauses.append("label = ?")
            params.append(label)
        query = ("SELECT run_id, created_at, kind, label, protocol, substrate,"
                 " seed, git_commit, config, metrics FROM runs")
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY run_id DESC"
        if limit is not None:
            query += " LIMIT ?"
            params.append(int(limit))
        rows = self._connection.execute(query, params).fetchall()
        return [RunRecord(run_id=row[0], created_at=row[1], kind=row[2], label=row[3],
                          protocol=row[4], substrate=row[5], seed=row[6],
                          git_commit=row[7], config=json.loads(row[8]),
                          metrics=json.loads(row[9]))
                for row in rows]

    def latest_run(self, kind: Optional[str] = None,
                   label: Optional[str] = None) -> Optional[RunRecord]:
        """The most recent stored run matching the filters (or ``None``)."""
        matches = self.runs(kind=kind, label=label, limit=1)
        return matches[0] if matches else None

    def load_points(self, run_id: int) -> List[LoadPointRecord]:
        """The offered-load points of one run, in sweep order."""
        rows = self._connection.execute(
            "SELECT run_id, point_index, offered_per_second, submitted, completed,"
            " rejected, goodput_per_second, mean_ms, p50_ms, p99_ms, p999_ms, extra"
            " FROM load_points WHERE run_id = ? ORDER BY point_index",
            (run_id,)).fetchall()
        return [LoadPointRecord(run_id=row[0], point_index=row[1],
                                offered_per_second=row[2], submitted=row[3],
                                completed=row[4], rejected=row[5],
                                goodput_per_second=row[6], mean_ms=row[7],
                                p50_ms=row[8], p99_ms=row[9], p999_ms=row[10],
                                extra=json.loads(row[11]))
                for row in rows]

    def labels(self, kind: Optional[str] = None) -> List[str]:
        """Distinct run labels (optionally within one kind), alphabetical."""
        if kind is None:
            rows = self._connection.execute(
                "SELECT DISTINCT label FROM runs ORDER BY label").fetchall()
        else:
            rows = self._connection.execute(
                "SELECT DISTINCT label FROM runs WHERE kind = ? ORDER BY label",
                (kind,)).fetchall()
        return [row[0] for row in rows]

    def trend(self, label: str, metric_keys: Sequence[str],
              kind: Optional[str] = None, limit: int = 20) -> List[Dict[str, object]]:
        """Per-run metric extracts for one label, oldest first.

        Each entry carries the run's identity columns plus the requested
        ``metric_keys`` looked up in its metrics JSON (missing keys map to
        ``None``) — the raw material of the cross-commit trend tables.
        """
        entries = []
        for run in reversed(self.runs(kind=kind, label=label, limit=limit)):
            entry: Dict[str, object] = {
                "run_id": run.run_id, "created_at": run.created_at,
                "git_commit": run.git_commit, "kind": run.kind,
                "protocol": run.protocol, "substrate": run.substrate,
            }
            for key in metric_keys:
                entry[key] = run.metrics.get(key)
            entries.append(entry)
        return entries

    # ------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ResultsStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
