"""Per-experiment metrics collection.

Clients push one :class:`CommandSample` per completed command; the collector
aggregates them per origin replica and over time so the figure drivers can
report per-site latency, total throughput and throughput timelines exactly as
the paper's plots do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.metrics.stats import LatencySummary, summarize_latencies, throughput_timeline


@dataclass(frozen=True)
class CommandSample:
    """One completed client command."""

    origin: int
    proposer: int
    latency_ms: float
    completed_at: float
    key: str


class MetricsCollector:
    """Accumulates command samples during one experiment run.

    Args:
        warmup_ms: samples completing before this virtual time are discarded
            (mirrors the paper's JIT warm-up phase; the simulator has no JIT
            but discarding the ramp-up keeps steady-state numbers honest).
    """

    def __init__(self, warmup_ms: float = 0.0) -> None:
        self.warmup_ms = warmup_ms
        self.samples: List[CommandSample] = []
        self.discarded = 0

    def record_command(self, origin: int, proposer: int, latency_ms: float,
                       completed_at: float, key: str) -> None:
        """Record one completed command (dropped if within the warm-up window)."""
        if completed_at < self.warmup_ms:
            self.discarded += 1
            return
        self.samples.append(CommandSample(origin=origin, proposer=proposer,
                                          latency_ms=latency_ms, completed_at=completed_at,
                                          key=key))

    # ------------------------------------------------------------ aggregates

    @property
    def count(self) -> int:
        """Number of recorded (post-warm-up) samples."""
        return len(self.samples)

    def latencies(self, origin: Optional[int] = None) -> List[float]:
        """Latency samples, optionally filtered by origin replica."""
        return [sample.latency_ms for sample in self.samples
                if origin is None or sample.origin == origin]

    def summary(self, origin: Optional[int] = None) -> Optional[LatencySummary]:
        """Latency summary, or ``None`` when there are no matching samples."""
        values = self.latencies(origin)
        if not values:
            return None
        return summarize_latencies(values)

    def per_origin_summaries(self) -> Dict[int, LatencySummary]:
        """Latency summary per origin replica."""
        origins = sorted({sample.origin for sample in self.samples})
        result: Dict[int, LatencySummary] = {}
        for origin in origins:
            summary = self.summary(origin)
            if summary is not None:
                result[origin] = summary
        return result

    def per_key_counts(self) -> Dict[str, int]:
        """Number of recorded commands per key, in first-appearance order."""
        counts: Dict[str, int] = {}
        for sample in self.samples:
            counts[sample.key] = counts.get(sample.key, 0) + 1
        return counts

    def conflict_rate(self) -> float:
        """Fraction of recorded commands whose key was touched more than once.

        The workloads are write-heavy, so two commands on the same key
        conflict regardless of which client issued them; this measures how
        contended the keyspace a collector observed actually was (the
        sharding study reports it per shard).
        """
        if not self.samples:
            return 0.0
        counts = self.per_key_counts()
        contended = sum(count for count in counts.values() if count > 1)
        return contended / len(self.samples)

    def throughput(self, duration_ms: float) -> float:
        """Commands per second completed over ``duration_ms`` of measured time."""
        if duration_ms <= 0:
            raise ValueError("duration_ms must be positive")
        return self.count * 1000.0 / duration_ms

    def timeline(self, bucket_ms: float = 1000.0, start_ms: float = 0.0,
                 end_ms: Optional[float] = None) -> List[tuple]:
        """Throughput time series of the recorded samples."""
        completions = [sample.completed_at for sample in self.samples]
        return throughput_timeline(completions, bucket_ms=bucket_ms, start_ms=start_ms,
                                   end_ms=end_ms)
