"""Summary statistics helpers (percentiles, latency summaries, time series)."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


def percentile(values: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile of ``values`` at ``fraction`` in [0, 1].

    Raises ``ValueError`` on an empty input so silent zeros never leak into
    experiment reports.
    """
    if not values:
        raise ValueError("cannot take a percentile of an empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return ordered[lower]
    weight = position - lower
    interpolated = ordered[lower] * (1 - weight) + ordered[upper] * weight
    # Clamp away floating-point drift so the result never leaves the bracket.
    return min(max(interpolated, ordered[lower]), ordered[upper])


@dataclass(frozen=True)
class LatencySummary:
    """Aggregate view of a set of latency samples (milliseconds)."""

    count: int
    mean: float
    median: float
    p95: float
    p99: float
    minimum: float
    maximum: float
    #: Tail percentile for the overload/SLO study.  With fewer than 1000
    #: samples this interpolates between the two highest order statistics
    #: (and degenerates to the maximum for tiny inputs) instead of failing.
    p999: float = 0.0

    def __str__(self) -> str:
        return (f"n={self.count} mean={self.mean:.1f}ms median={self.median:.1f}ms "
                f"p95={self.p95:.1f}ms p99={self.p99:.1f}ms p999={self.p999:.1f}ms")


def summarize_latencies(values: Sequence[float]) -> LatencySummary:
    """Build a :class:`LatencySummary` from raw samples."""
    if not values:
        raise ValueError("cannot summarize an empty latency list")
    return LatencySummary(
        count=len(values),
        mean=sum(values) / len(values),
        median=percentile(values, 0.5),
        p95=percentile(values, 0.95),
        p99=percentile(values, 0.99),
        minimum=min(values),
        maximum=max(values),
        p999=percentile(values, 0.999),
    )


def throughput_timeline(completion_times_ms: Sequence[float], bucket_ms: float = 1000.0,
                        start_ms: float = 0.0, end_ms: float | None = None,
                        drop_partial: bool = False) -> List[Tuple[float, float]]:
    """Bucket completion timestamps into a throughput time series.

    The window ``[start_ms, end_ms]`` is split into ``ceil`` buckets of
    ``bucket_ms``; the final bucket may cover less than a full ``bucket_ms``
    and its rate is scaled by the width it actually spans, so a timeline
    whose window is not a multiple of the bucket size reports honest
    commands-per-second at the edge instead of diluting (or inflating) the
    last bucket's count by the nominal width.  Samples landing exactly on
    ``end_ms`` count toward the final bucket.

    Args:
        completion_times_ms: virtual times at which commands completed.
        bucket_ms: bucket width.
        start_ms: timeline origin.
        end_ms: optional timeline end; defaults to the last completion.
        drop_partial: drop a trailing bucket narrower than ``bucket_ms``
            instead of scaling it.

    Returns:
        List of ``(bucket_start_ms, commands_per_second)`` pairs.
    """
    if bucket_ms <= 0:
        raise ValueError("bucket_ms must be positive")
    if end_ms is None:
        end_ms = max(completion_times_ms, default=start_ms)
    n_buckets = max(1, math.ceil((end_ms - start_ms) / bucket_ms))
    buckets: Dict[int, int] = {}
    for completion in completion_times_ms:
        if completion < start_ms or completion > end_ms:
            continue
        index = min(int((completion - start_ms) // bucket_ms), n_buckets - 1)
        buckets[index] = buckets.get(index, 0) + 1
    series = []
    for index in range(n_buckets):
        bucket_start = start_ms + index * bucket_ms
        width = min(bucket_ms, end_ms - bucket_start)
        if index == n_buckets - 1 and width < bucket_ms:
            if drop_partial:
                break
            if width <= 0:
                # Degenerate empty window (end == start): keep the nominal
                # width rather than dividing by zero.
                width = bucket_ms
        else:
            width = bucket_ms
        count = buckets.get(index, 0)
        series.append((bucket_start, count * 1000.0 / width))
    return series
