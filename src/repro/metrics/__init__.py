"""Metrics collection, summary statistics, and the persistent results store."""

from repro.metrics.collector import CommandSample, MetricsCollector
from repro.metrics.stats import LatencySummary, percentile, summarize_latencies, throughput_timeline
from repro.metrics.store import (DEFAULT_STORE_PATH, LoadPointRecord, ResultsStore,
                                 RunRecord, current_git_commit)

__all__ = [
    "MetricsCollector",
    "CommandSample",
    "LatencySummary",
    "summarize_latencies",
    "percentile",
    "throughput_timeline",
    "ResultsStore",
    "RunRecord",
    "LoadPointRecord",
    "DEFAULT_STORE_PATH",
    "current_git_commit",
]
