"""Metrics collection and summary statistics for experiments."""

from repro.metrics.collector import MetricsCollector, CommandSample
from repro.metrics.stats import LatencySummary, summarize_latencies, percentile, throughput_timeline

__all__ = [
    "MetricsCollector",
    "CommandSample",
    "LatencySummary",
    "summarize_latencies",
    "percentile",
    "throughput_timeline",
]
