"""Metrics collection and summary statistics for experiments."""

from repro.metrics.collector import CommandSample, MetricsCollector
from repro.metrics.stats import LatencySummary, percentile, summarize_latencies, throughput_timeline

__all__ = [
    "MetricsCollector",
    "CommandSample",
    "LatencySummary",
    "summarize_latencies",
    "percentile",
    "throughput_timeline",
]
