"""Machine-readable performance records for benchmark runs.

Every benchmark that regenerates a paper figure also emits a
``BENCH_<name>.json`` file under ``benchmarks/results/`` containing the
wall-clock time of the run, the number of simulation events executed and the
resulting events/second, plus the figure's latency/throughput series.  The
records are what makes the simulator's performance trajectory visible across
PRs: regressions show up as a drop in ``events_per_second`` between two
checked-in records, without anyone having to eyeball pytest-benchmark output.

The event counts come from :func:`repro.sim.simulator.total_events_executed`,
a process-wide monotonic counter, so the tracker works even though the figure
drivers build their simulators internally.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence

from repro.sim.simulator import total_events_executed

#: Schema version of the emitted JSON records.
PERF_RECORD_VERSION = 1

#: Record fields that vary run-to-run even when the simulation is identical.
#: ``PerfRecord.to_json(stable=True)`` omits them (plus the ``timing`` extra)
#: so that two runs of the same deterministic sweep serialize byte-identically
#: regardless of machine speed or worker count.
VOLATILE_FIELDS = ("wall_seconds", "events_per_second")

#: Key under ``PerfRecord.extra`` where merged records keep their volatile
#: timing detail (per-part walls, speedups); stripped in stable mode.
TIMING_EXTRA_KEY = "timing"


@dataclass
class PerfRecord:
    """One measured benchmark run."""

    name: str
    wall_seconds: float
    events_executed: int
    events_per_second: float
    series: Dict[str, Dict[str, Optional[float]]] = field(default_factory=dict)
    extra: Dict[str, object] = field(default_factory=dict)

    def to_json(self, stable: bool = False) -> Dict[str, object]:
        """JSON-serializable form of the record.

        Args:
            stable: omit wall-clock-derived fields so the serialized record
                depends only on the (deterministic) simulation outputs.
        """
        record = {
            "version": PERF_RECORD_VERSION,
            "name": self.name,
            "wall_seconds": round(self.wall_seconds, 3),
            "events_executed": self.events_executed,
            "events_per_second": round(self.events_per_second, 1),
            "python": platform.python_version(),
            "series": self.series,
            **({"extra": self.extra} if self.extra else {}),
        }
        if stable:
            for volatile in VOLATILE_FIELDS:
                record.pop(volatile, None)
            extra = record.get("extra")
            if isinstance(extra, dict) and TIMING_EXTRA_KEY in extra:
                extra = {key: value for key, value in extra.items()
                         if key != TIMING_EXTRA_KEY}
                if extra:
                    record["extra"] = extra
                else:
                    record.pop("extra")
        return record


def merge_partial_records(name: str, partials: Sequence[PerfRecord],
                          wall_seconds: Optional[float] = None) -> PerfRecord:
    """Combine per-cell partial records into one aggregate record.

    A parallel sweep measures each cell inside its worker process and hands
    the partial records back to the coordinator.  The merged record sums the
    cells' event counts, takes ``wall_seconds`` as the *observed* wall time of
    the whole sweep (summing the partials instead when it is not given, i.e.
    the serial-equivalent cost), and keeps the per-part walls under
    ``extra["timing"]`` so parallel efficiency stays inspectable.
    """
    events = sum(partial.events_executed for partial in partials)
    cell_wall = sum(partial.wall_seconds for partial in partials)
    wall = cell_wall if wall_seconds is None else wall_seconds
    return PerfRecord(
        name=name,
        wall_seconds=wall,
        events_executed=events,
        events_per_second=(events / wall) if wall > 0 else 0.0,
        extra={TIMING_EXTRA_KEY: {
            "parts": len(partials),
            "cell_wall_seconds": round(cell_wall, 3),
        }},
    )


class PerfTracker:
    """Measures wall time and simulator events across a benchmark body."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._started_wall = 0.0
        self._started_events = 0
        self.record: Optional[PerfRecord] = None

    def __enter__(self) -> "PerfTracker":
        self._started_events = total_events_executed()
        self._started_wall = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        wall = time.perf_counter() - self._started_wall
        events = total_events_executed() - self._started_events
        self.record = PerfRecord(
            name=self.name,
            wall_seconds=wall,
            events_executed=events,
            events_per_second=(events / wall) if wall > 0 else 0.0,
        )


def measure(name: str, fn: Callable, *args, **kwargs):
    """Run ``fn`` under a :class:`PerfTracker`; returns ``(result, record)``."""
    with PerfTracker(name) as tracker:
        result = fn(*args, **kwargs)
    return result, tracker.record


def write_record(record: PerfRecord, results_dir: Path, stable: bool = False) -> Path:
    """Persist ``record`` as ``BENCH_<name>.json`` under ``results_dir``."""
    results_dir.mkdir(parents=True, exist_ok=True)
    path = results_dir / f"BENCH_{record.name}.json"
    path.write_text(json.dumps(record.to_json(stable=stable), indent=2, sort_keys=True) + "\n")
    return path


def read_record(path: Path) -> Dict[str, object]:
    """Load a previously written BENCH_*.json record."""
    return json.loads(path.read_text())
