"""Packaging metadata for the CAESAR reproduction.

Kept as a plain ``setup.py`` (no build-system table) so ``pip install -e .``
works with the stock setuptools baked into minimal CI images.
"""
from setuptools import find_packages, setup

setup(
    name="caesar-repro",
    version="0.2.0",
    description="Reproduction of CAESAR (Speeding up Consensus by Chasing Fast "
                "Decisions, DSN 2017) on a deterministic simulated WAN substrate",
    author="caesar-repro contributors",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages("src"),
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
            # Historical alias from before the CLI gained the sweep
            # orchestrator; prints a deprecation notice, then behaves
            # identically.
            "caesar-repro = repro.cli:main_deprecated",
        ],
    },
)
