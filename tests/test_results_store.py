"""Tests for the persistent results store, its report renderer, and the
store-backed perf-gate baseline lookup."""

from __future__ import annotations

import importlib.util
import pathlib

from repro.metrics.report import render_report
from repro.metrics.store import (GIT_COMMIT_ENV_VAR, ResultsStore,
                                 current_git_commit)


def make_store() -> ResultsStore:
    return ResultsStore(":memory:")


class TestRecordAndQuery:
    def test_run_roundtrip(self):
        with make_store() as store:
            run_id = store.record_run(
                "overload", "caesar-sweep", protocol="caesar", substrate="sim",
                seed=7, config={"offered_loads": [100, 200]},
                metrics={"peak_goodput": 95.0}, git_commit="abc1234",
                created_at="2026-08-07T00:00:00+00:00")
            run = store.latest_run()
            assert run.run_id == run_id
            assert run.kind == "overload"
            assert run.label == "caesar-sweep"
            assert run.protocol == "caesar"
            assert run.substrate == "sim"
            assert run.seed == 7
            assert run.git_commit == "abc1234"
            assert run.config == {"offered_loads": [100, 200]}
            assert run.metrics == {"peak_goodput": 95.0}

    def test_runs_newest_first_with_filters_and_limit(self):
        with make_store() as store:
            store.record_run("experiment", "fig7", git_commit="c1")
            store.record_run("overload", "knee", git_commit="c2")
            store.record_run("overload", "knee", git_commit="c3")
            assert [run.git_commit for run in store.runs()] == ["c3", "c2", "c1"]
            assert [run.git_commit for run in store.runs(kind="overload")] == ["c3", "c2"]
            assert len(store.runs(kind="overload", label="knee", limit=1)) == 1
            assert store.runs(label="missing") == []
            assert store.latest_run(kind="experiment").label == "fig7"
            assert store.latest_run(kind="bench") is None

    def test_load_points_in_sweep_order(self):
        with make_store() as store:
            run_id = store.record_run("overload", "knee")
            store.record_load_point(run_id, 1, offered_per_second=200.0,
                                    completed=150, goodput_per_second=150.0,
                                    p99_ms=80.0, extra={"admission": None})
            store.record_load_point(run_id, 0, offered_per_second=100.0,
                                    completed=99, goodput_per_second=99.0,
                                    p99_ms=40.0)
            points = store.load_points(run_id)
            assert [point.point_index for point in points] == [0, 1]
            assert points[1].offered_per_second == 200.0
            assert points[1].extra == {"admission": None}
            assert store.load_points(run_id + 1) == []

    def test_labels_are_distinct_and_sorted(self):
        with make_store() as store:
            store.record_run("bench", "BENCH_b.json")
            store.record_run("bench", "BENCH_a.json")
            store.record_run("bench", "BENCH_a.json")
            store.record_run("overload", "knee")
            assert store.labels() == ["BENCH_a.json", "BENCH_b.json", "knee"]
            assert store.labels(kind="bench") == ["BENCH_a.json", "BENCH_b.json"]

    def test_trend_is_oldest_first_with_missing_keys_none(self):
        with make_store() as store:
            store.record_run("overload", "knee", metrics={"peak_goodput": 90.0},
                             git_commit="old")
            store.record_run("overload", "knee", metrics={"peak_goodput": 95.0,
                                                          "p99_latency_ms": 120.0},
                             git_commit="new")
            trend = store.trend("knee", ["peak_goodput", "p99_latency_ms"])
            assert [entry["git_commit"] for entry in trend] == ["old", "new"]
            assert trend[0]["p99_latency_ms"] is None
            assert trend[1]["peak_goodput"] == 95.0

    def test_persists_across_reopen(self, tmp_path):
        path = tmp_path / "nested" / "store.db"
        with ResultsStore(path) as store:
            store.record_run("loadgen", "tcp", metrics={"completed": 42})
        with ResultsStore(path) as store:
            assert store.latest_run(kind="loadgen").metrics["completed"] == 42


class TestGitCommit:
    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv(GIT_COMMIT_ENV_VAR, "deadbeef")
        assert current_git_commit() == "deadbeef"

    def test_recorded_runs_pick_up_the_override(self, monkeypatch):
        monkeypatch.setenv(GIT_COMMIT_ENV_VAR, "cafef00d")
        with make_store() as store:
            store.record_run("experiment", "fig7")
            assert store.latest_run().git_commit == "cafef00d"

    def test_outside_a_checkout_falls_back_to_unknown(self, monkeypatch, tmp_path):
        monkeypatch.delenv(GIT_COMMIT_ENV_VAR, raising=False)
        assert current_git_commit(cwd=tmp_path) == "unknown"


class TestRenderReport:
    def test_empty_store_renders_a_friendly_line(self):
        with make_store() as store:
            assert "no stored runs" in render_report(store)

    def test_runs_and_trend_tables_render(self):
        with make_store() as store:
            run_id = store.record_run(
                "overload", "knee", protocol="caesar", substrate="sim",
                metrics={"peak_goodput": 95.0, "p99_latency_ms": 120.0},
                git_commit="abc1234")
            store.record_load_point(run_id, 0, offered_per_second=100.0,
                                    completed=95, goodput_per_second=95.0,
                                    p99_ms=120.0)
            text = render_report(store, kind="overload", points=True)
            assert "knee" in text
            assert "abc1234" in text
            assert "caesar" in text
            assert "100" in text  # the load point's offered rate

    def test_label_filter_narrows_the_report(self):
        with make_store() as store:
            store.record_run("overload", "wanted", git_commit="aaa1111")
            store.record_run("overload", "other", git_commit="bbb2222")
            text = render_report(store, label="wanted")
            assert "aaa1111" in text
            assert "bbb2222" not in text


def load_compare_perf():
    """Import benchmarks/compare_perf.py by path (it is not a package)."""
    path = pathlib.Path(__file__).resolve().parents[1] / "benchmarks" / "compare_perf.py"
    spec = importlib.util.spec_from_file_location("compare_perf", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestPerfGateStoreBaselines:
    def test_latest_bench_row_per_label_wins(self, tmp_path):
        compare_perf = load_compare_perf()
        path = tmp_path / "store.db"
        with ResultsStore(path) as store:
            store.record_run("bench", "BENCH_fig7.json",
                             metrics={"events_per_second": 100.0})
            store.record_run("bench", "BENCH_fig7.json",
                             metrics={"events_per_second": 200.0})
            store.record_run("overload", "knee", metrics={"events_per_second": 1.0})
        records = compare_perf.store_baseline_records(path)
        assert set(records) == {"BENCH_fig7.json"}
        assert records["BENCH_fig7.json"]["events_per_second"] == 200.0

    def test_missing_store_yields_no_baselines(self, tmp_path):
        compare_perf = load_compare_perf()
        assert compare_perf.store_baseline_records(None) == {}
        assert compare_perf.store_baseline_records(tmp_path / "absent.db") == {}

    def test_store_overrides_the_baseline_directory(self, tmp_path, capsys):
        import json

        compare_perf = load_compare_perf()
        baseline_dir = tmp_path / "baseline"
        current_dir = tmp_path / "current"
        baseline_dir.mkdir()
        current_dir.mkdir()
        # File baseline says 1000 ev/s (current's 90 would fail the gate);
        # the store's fresher 100 ev/s baseline must win and pass it.
        (baseline_dir / "BENCH_fig7.json").write_text(
            json.dumps({"events_per_second": 1000.0}))
        (current_dir / "BENCH_fig7.json").write_text(
            json.dumps({"events_per_second": 90.0}))
        store_path = tmp_path / "store.db"
        with ResultsStore(store_path) as store:
            store.record_run("bench", "BENCH_fig7.json",
                             metrics={"events_per_second": 100.0})
        exit_code = compare_perf.compare_records(
            baseline_dir, current_dir, max_drop=0.30, store=store_path)
        assert exit_code == 0
        without_store = compare_perf.compare_records(
            baseline_dir, current_dir, max_drop=0.30)
        assert without_store == 1
