"""Property-based tests of Generalized-Consensus invariants across protocols.

Hypothesis generates random workloads (command interleavings, conflict
patterns, submission sites and times) and the tests check, for every
protocol, the core correctness properties the paper's Section III specifies:

* **Nontriviality** — only proposed commands are executed;
* **Liveness** — every proposed command is eventually executed everywhere;
* **Consistency** — any two replicas execute conflicting commands in the same
  relative order (equivalently: all state machines converge);
* **Exactly-once execution** on every replica.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines.epaxos import EPaxosReplica
from repro.baselines.m2paxos import M2PaxosReplica
from repro.baselines.mencius import MenciusReplica
from repro.baselines.multipaxos import MultiPaxosReplica
from repro.consensus.command import Command
from repro.consensus.quorums import QuorumSystem
from repro.core.caesar import CaesarReplica
from repro.core.config import CaesarConfig
from repro.kvstore.store import KeyValueStore
from repro.sim.network import Network, NetworkConfig
from repro.sim.simulator import Simulator
from repro.sim.topology import ec2_five_sites

#: A workload step: (origin replica, key index, delay before submission in ms).
workload_steps = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 3), st.floats(0.0, 120.0)),
    min_size=1, max_size=25)


def build_cluster(protocol: str, seed: int):
    sim = Simulator(seed=seed)
    network = Network(sim, ec2_five_sites(), NetworkConfig(jitter_ms=2.0))
    quorums = QuorumSystem.for_cluster(5)
    store = KeyValueStore
    if protocol == "caesar":
        replicas = [CaesarReplica(i, sim, network, quorums, store(),
                                  config=CaesarConfig(recovery_enabled=False))
                    for i in range(5)]
    elif protocol == "epaxos":
        replicas = [EPaxosReplica(i, sim, network, quorums, store(), recovery_enabled=False)
                    for i in range(5)]
    elif protocol == "multipaxos":
        replicas = [MultiPaxosReplica(i, sim, network, quorums, store(),
                                      recovery_enabled=False) for i in range(5)]
    elif protocol == "mencius":
        replicas = [MenciusReplica(i, sim, network, quorums, store()) for i in range(5)]
    elif protocol == "m2paxos":
        replicas = [M2PaxosReplica(i, sim, network, quorums, store()) for i in range(5)]
    else:  # pragma: no cover - defensive
        raise ValueError(protocol)
    return sim, replicas


def executed_everywhere(replicas, ids):
    """Cheap-gated completion predicate: every replica executed every id.

    The per-replica execution counter is O(1) and reaches ``len(ids)`` only
    when a replica may have executed everything (exactly-once + nontriviality
    bound it from above), so the expensive exact membership scan runs only
    near completion instead of after every event.
    """
    need = len(set(ids))

    def predicate():
        for replica in replicas:
            if replica.commands_executed < need:
                return False
        return all(r.has_executed(cid) for r in replicas for cid in ids)

    return predicate


def run_workload(protocol: str, steps, seed: int = 1):
    """Submit the generated workload and run until every command is executed everywhere."""
    sim, replicas = build_cluster(protocol, seed)
    submitted = []
    for index, (origin, key_index, delay) in enumerate(steps):
        command = Command(command_id=(origin, index), key=f"key-{key_index}",
                          operation="put", value=f"v{index}", origin=origin)
        submitted.append(command)
        sim.schedule(delay, lambda replica=replicas[origin], c=command: replica.submit(c))
    ids = [c.command_id for c in submitted]
    finished = sim.run_until(executed_everywhere(replicas, ids),
                             deadline=300000, check_every=8)
    return replicas, submitted, finished


def check_invariants(replicas, submitted, finished):
    submitted_ids = {c.command_id for c in submitted}
    assert finished, "liveness violated: some command never executed everywhere"
    for replica in replicas:
        executed_ids = [c.command_id for c in replica.execution_log]
        # Nontriviality: nothing executed that was not submitted.
        assert set(executed_ids) <= submitted_ids
        # Exactly once.
        assert len(executed_ids) == len(set(executed_ids)) == len(submitted_ids)
    # Consistency: conflicting commands ordered identically, state machines converge.
    for i, first in enumerate(replicas):
        for second in replicas[i + 1:]:
            assert first.execution_log.conflicting_order_violations(
                second.execution_log) == []
    snapshots = [r.state_machine.snapshot() for r in replicas]
    assert all(snapshot == snapshots[0] for snapshot in snapshots)


COMMON_SETTINGS = dict(max_examples=12, deadline=None,
                       suppress_health_check=[HealthCheck.too_slow])


class TestCaesarProperties:
    @given(steps=workload_steps, seed=st.integers(0, 2**16))
    @settings(**COMMON_SETTINGS)
    def test_random_workloads_satisfy_generalized_consensus(self, steps, seed):
        replicas, submitted, finished = run_workload("caesar", steps, seed)
        check_invariants(replicas, submitted, finished)

    @given(steps=workload_steps)
    @settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_wait_condition_disabled_still_consistent(self, steps):
        """The ablation (immediate NACK instead of waiting) must stay correct."""
        sim = Simulator(seed=3)
        network = Network(sim, ec2_five_sites(), NetworkConfig(jitter_ms=2.0))
        quorums = QuorumSystem.for_cluster(5)
        config = CaesarConfig(recovery_enabled=False, wait_condition_enabled=False)
        replicas = [CaesarReplica(i, sim, network, quorums, KeyValueStore(), config=config)
                    for i in range(5)]
        submitted = []
        for index, (origin, key_index, delay) in enumerate(steps):
            command = Command(command_id=(origin, index), key=f"key-{key_index}",
                              operation="put", value=f"v{index}", origin=origin)
            submitted.append(command)
            sim.schedule(delay, lambda replica=replicas[origin], c=command: replica.submit(c))
        ids = [c.command_id for c in submitted]
        finished = sim.run_until(executed_everywhere(replicas, ids),
                                 deadline=300000, check_every=8)
        check_invariants(replicas, submitted, finished)


class TestBaselineProperties:
    @given(steps=workload_steps, seed=st.integers(0, 2**16))
    @settings(**COMMON_SETTINGS)
    def test_epaxos_random_workloads(self, steps, seed):
        replicas, submitted, finished = run_workload("epaxos", steps, seed)
        check_invariants(replicas, submitted, finished)

    @given(steps=workload_steps)
    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_multipaxos_random_workloads(self, steps):
        replicas, submitted, finished = run_workload("multipaxos", steps)
        check_invariants(replicas, submitted, finished)

    @given(steps=workload_steps)
    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_mencius_random_workloads(self, steps):
        replicas, submitted, finished = run_workload("mencius", steps)
        check_invariants(replicas, submitted, finished)

    @given(steps=workload_steps)
    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_m2paxos_random_workloads(self, steps):
        replicas, submitted, finished = run_workload("m2paxos", steps)
        check_invariants(replicas, submitted, finished)
