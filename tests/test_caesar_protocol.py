"""Integration tests for the CAESAR protocol on the simulated substrate.

These tests run real five-node clusters and check the paper's claims at the
protocol level: fast decisions in two communication delays, slow decisions
when timestamps are rejected, Generalized-Consensus consistency, and the
behaviour of the wait condition.
"""

from __future__ import annotations

import pytest

from repro.consensus.command import Command
from repro.consensus.interface import DecisionKind
from repro.core.history import CommandStatus
from tests.conftest import build_caesar_cluster, make_command


def submit_and_run(sim, replicas, commands, deadline_ms=30000):
    """Submit (replica_index, command) pairs and run until all are executed everywhere."""
    for origin, command in commands:
        replicas[origin].submit(command)
    ids = [c.command_id for _, c in commands]
    done = sim.run_until(
        lambda: all(r.has_executed(cid) for r in replicas if not r.crashed for cid in ids),
        deadline=deadline_ms)
    return done


class TestFastPath:
    def test_single_command_decided_fast(self, caesar_cluster):
        sim, _, replicas = caesar_cluster()
        command = make_command(0, 0, key="a", origin=0)
        assert submit_and_run(sim, replicas, [(0, command)])
        decision = replicas[0].decisions[command.command_id]
        assert decision.kind is DecisionKind.FAST
        assert replicas[0].stats.fast_decisions == 1
        assert replicas[0].stats.slow_decisions == 0

    def test_fast_decision_latency_is_two_delays(self, caesar_cluster, topology):
        """A non-conflicting command completes in about one fast-quorum round trip."""
        sim, _, replicas = caesar_cluster()
        command = make_command(0, 0, key="a", origin=0)
        assert submit_and_run(sim, replicas, [(0, command)])
        latency = replicas[0].decisions[command.command_id].latency_ms
        expected = topology.quorum_latency(0, 4)  # fast quorum of 4 from Virginia
        assert latency == pytest.approx(expected, rel=0.15)

    def test_non_conflicting_commands_all_fast(self, caesar_cluster):
        sim, _, replicas = caesar_cluster()
        commands = [(i, make_command(i, 0, key=f"key-{i}", origin=i)) for i in range(5)]
        assert submit_and_run(sim, replicas, commands)
        total_fast = sum(r.stats.fast_decisions for r in replicas)
        assert total_fast == 5
        assert sum(r.stats.slow_decisions for r in replicas) == 0

    def test_all_replicas_execute_every_command(self, caesar_cluster):
        sim, _, replicas = caesar_cluster()
        commands = [(i, make_command(i, 0, key="same", origin=i)) for i in range(5)]
        assert submit_and_run(sim, replicas, commands)
        for replica in replicas:
            assert replica.commands_executed == 5

    def test_client_callback_receives_result(self, caesar_cluster):
        sim, _, replicas = caesar_cluster()
        results = []
        first = make_command(0, 0, key="k", origin=0)
        second = Command(command_id=(0, 1), key="k", operation="get", origin=0)
        replicas[0].submit(first, callback=lambda r: results.append(r))
        sim.run_until(lambda: len(results) == 1, deadline=10000)
        replicas[0].submit(second, callback=lambda r: results.append(r))
        sim.run_until(lambda: len(results) == 2, deadline=20000)
        assert results[0].value is None            # first write saw no prior value
        assert results[1].value == "v0.0"          # read observes the write


class TestConflictingCommands:
    def test_conflicting_commands_same_order_everywhere(self, caesar_cluster):
        sim, _, replicas = caesar_cluster()
        commands = []
        for i in range(5):
            for k in range(4):
                commands.append((i, make_command(i, k, key=f"hot-{k % 2}", origin=i)))
        assert submit_and_run(sim, replicas, commands)
        for i in range(5):
            for j in range(i + 1, 5):
                assert replicas[i].execution_log.conflicting_order_violations(
                    replicas[j].execution_log) == []

    def test_state_machines_converge(self, caesar_cluster):
        sim, _, replicas = caesar_cluster()
        commands = []
        for i in range(5):
            for k in range(5):
                commands.append((i, make_command(i, k, key=f"hot-{k % 3}", origin=i)))
        assert submit_and_run(sim, replicas, commands)
        snapshots = [r.state_machine.snapshot() for r in replicas]
        assert all(snapshot == snapshots[0] for snapshot in snapshots)

    def test_conflicting_pair_ordered_by_final_timestamps(self, caesar_cluster):
        sim, _, replicas = caesar_cluster()
        first = make_command(0, 0, key="x", origin=0)
        second = make_command(4, 0, key="x", origin=4)
        assert submit_and_run(sim, replicas, [(0, first), (4, second)])
        ts_first = replicas[0].history.get(first.command_id).timestamp
        ts_second = replicas[0].history.get(second.command_id).timestamp
        expected = [first.command_id, second.command_id] if ts_first < ts_second \
            else [second.command_id, first.command_id]
        for replica in replicas:
            order = [c.command_id for c in replica.execution_log
                     if c.command_id in (first.command_id, second.command_id)]
            assert order == expected

    def test_predecessor_invariant_for_stable_conflicting_commands(self, caesar_cluster):
        """Theorem 1: conflicting stable commands with T' < T imply predecessor membership."""
        sim, _, replicas = caesar_cluster()
        commands = []
        for i in range(5):
            for k in range(4):
                commands.append((i, make_command(i, k, key="single-hot-key", origin=i)))
        assert submit_and_run(sim, replicas, commands)
        for replica in replicas:
            stable = list(replica.history.stable_entries())
            for first in stable:
                for second in stable:
                    if first is second:
                        continue
                    if not first.command.conflicts_with(second.command):
                        continue
                    if first.timestamp < second.timestamp:
                        # BREAKLOOP may have pruned the edge only if already delivered
                        # in order; the delivery order itself is checked elsewhere.
                        pos_first = replica.execution_log.position(first.command_id)
                        pos_second = replica.execution_log.position(second.command_id)
                        assert pos_first is not None and pos_second is not None
                        assert pos_first < pos_second

    def test_heavy_single_key_contention_completes(self, caesar_cluster):
        sim, _, replicas = caesar_cluster()
        commands = [(i, make_command(i, k, key="the-one-key", origin=i))
                    for i in range(5) for k in range(10)]
        assert submit_and_run(sim, replicas, commands, deadline_ms=120000)
        assert all(r.commands_executed == 50 for r in replicas)
        violations = sum(
            len(replicas[i].execution_log.conflicting_order_violations(replicas[j].execution_log))
            for i in range(5) for j in range(i + 1, 5))
        assert violations == 0


class TestSlowPath:
    def test_rejection_leads_to_retry_and_slow_decision(self, caesar_cluster):
        """Figure 2(b): a rejected timestamp forces the retry phase (slow decision)."""
        sim, network, replicas = caesar_cluster()
        # Force heavy contention from every site on one key at the same instant,
        # with the wait condition disabled rejections become much more likely.
        sim2, network2, replicas2 = build_caesar_cluster(wait_condition=False)
        commands = [(i, make_command(i, k, key="hot", origin=i))
                    for i in range(5) for k in range(6)]
        for origin, command in commands:
            replicas2[origin].submit(command)
        ids = [c.command_id for _, c in commands]
        assert sim2.run_until(
            lambda: all(r.has_executed(cid) for r in replicas2 for cid in ids),
            deadline=120000)
        assert sum(r.stats.slow_decisions for r in replicas2) > 0
        assert sum(r.stats.retries for r in replicas2) > 0

    def test_slow_decisions_preserve_consistency(self):
        sim, _, replicas = build_caesar_cluster(wait_condition=False)
        commands = [(i, make_command(i, k, key=f"hot-{k % 2}", origin=i))
                    for i in range(5) for k in range(6)]
        for origin, command in commands:
            replicas[origin].submit(command)
        ids = [c.command_id for _, c in commands]
        assert sim.run_until(
            lambda: all(r.has_executed(cid) for r in replicas for cid in ids),
            deadline=120000)
        violations = sum(
            len(replicas[i].execution_log.conflicting_order_violations(replicas[j].execution_log))
            for i in range(5) for j in range(i + 1, 5))
        assert violations == 0

    def test_wait_condition_reduces_slow_decisions(self):
        """The paper's key claim: the wait condition avoids slow decisions under conflicts."""
        def run(wait_condition: bool) -> float:
            sim, _, replicas = build_caesar_cluster(wait_condition=wait_condition, seed=7)
            commands = [(i, make_command(i, k, key=f"hot-{k % 3}", origin=i))
                        for i in range(5) for k in range(8)]
            for origin, command in commands:
                replicas[origin].submit(command)
            ids = [c.command_id for _, c in commands]
            assert sim.run_until(
                lambda: all(r.has_executed(cid) for r in replicas for cid in ids),
                deadline=200000)
            slow = sum(r.stats.slow_decisions for r in replicas)
            fast = sum(r.stats.fast_decisions for r in replicas)
            return slow / (slow + fast)

        with_wait = run(True)
        without_wait = run(False)
        assert with_wait <= without_wait

    def test_wait_times_recorded_for_parked_proposals(self, caesar_cluster):
        sim, _, replicas = caesar_cluster()
        commands = [(i, make_command(i, k, key="contended", origin=i))
                    for i in range(5) for k in range(6)]
        assert submit_and_run(sim, replicas, commands, deadline_ms=120000)
        total_samples = sum(len(r.wait_time_samples) for r in replicas)
        assert total_samples > 0
        assert all(sample >= 0 for r in replicas for sample in r.wait_time_samples)


class TestBallotFiltering:
    def test_stale_ballot_messages_ignored(self, caesar_cluster, make_cmd):
        sim, _, replicas = caesar_cluster()
        command = make_cmd(0, 0, key="x", origin=0)
        assert submit_and_run(sim, replicas, [(0, command)])
        # Pretend a higher ballot exists for this command on replica 1.
        from repro.consensus.ballots import Ballot
        replicas[1].ballots[command.command_id] = Ballot(5, 1)
        entry_before = replicas[1].history.get(command.command_id)
        from repro.core.messages import FastPropose
        from repro.consensus.timestamps import LogicalTimestamp
        replicas[1].handle_message(0, FastPropose(command=command, ballot=Ballot(0, 0),
                                                  timestamp=LogicalTimestamp(99, 0),
                                                  whitelist=None))
        entry_after = replicas[1].history.get(command.command_id)
        assert entry_after.timestamp == entry_before.timestamp
        assert entry_after.status is CommandStatus.STABLE
