"""The ``repro.api`` facade: one import surface for external callers."""

from __future__ import annotations

import argparse

from repro import api


class TestFacadeSurface:
    def test_every_exported_name_resolves(self):
        for name in api.__all__:
            assert getattr(api, name) is not None, name

    def test_all_is_sorted_within_sections(self):
        # Entry points, configs, and building blocks are distinct sections;
        # just assert no duplicates and everything public is listed.
        assert len(api.__all__) == len(set(api.__all__))

    def test_entry_points_are_callable(self):
        for name in ("run_experiment", "run_sweep", "run_chaos",
                     "serve_cluster", "run_loadgen", "serve_replica"):
            assert callable(getattr(api, name)), name

    def test_protocol_registry_is_exposed(self):
        for protocol in ("caesar", "epaxos", "multipaxos", "mencius", "m2paxos"):
            assert protocol in api.PROTOCOLS


class TestFromArgs:
    """Every CLI-mapped config builds from an argparse namespace."""

    def _namespace(self, **extra):
        base = dict(protocol="caesar", seed=9, clients=4, conflicts=25.0,
                    duration=4000.0, recovery=False, no_retransmit=False)
        base.update(extra)
        return argparse.Namespace(**base)

    def test_experiment_config_from_args(self):
        config = api.ExperimentConfig.from_args(self._namespace())
        assert config.protocol == "caesar"
        assert config.seed == 9
        assert config.clients_per_site == 4
        assert config.conflict_rate == 0.25
        assert config.duration_ms == 4000.0

    def test_experiment_config_overrides_win(self):
        config = api.ExperimentConfig.from_args(
            self._namespace(), protocol="mencius", seed=1)
        assert config.protocol == "mencius"
        assert config.seed == 1

    def test_chaos_config_from_args(self):
        args = self._namespace(nemesis="minority-partition", fault_at=None,
                               hold=None, quick=True)
        config = api.ChaosConfig.from_args(args)
        assert config.schedule == "minority-partition"
        assert config.seed == 9
        assert config.retransmit_enabled

    def test_serve_config_from_args(self):
        args = self._namespace(replicas=5, host="0.0.0.0", peer=None)
        config = api.ServeConfig.from_args(args)
        assert config.replicas == 5
        assert config.host == "0.0.0.0"
        assert config.retransmit

    def test_cluster_config_from_args(self):
        config = api.ClusterConfig.from_args(self._namespace())
        assert config.protocol == "caesar"
        assert config.seed == 9

    def test_run_experiment_smoke_through_facade(self):
        result = api.run_experiment(api.ExperimentConfig(
            protocol="multipaxos", clients_per_site=2, duration_ms=1200,
            warmup_ms=200, seed=5))
        assert result.metrics.count > 0
        assert result.throughput_per_second > 0
        assert result.consistency_violations == 0
