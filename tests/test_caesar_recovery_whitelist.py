"""Unit tests for the recovery dispatch rules and whitelist reconstruction.

These drive :class:`repro.core.recovery.RecoveryManager` directly with
hand-built RECOVERYR replies, covering the five dispatch cases of Figure 5
and the whitelist computation used when a command may already have been
decided on the fast path.
"""

from __future__ import annotations

from repro.consensus.ballots import Ballot
from repro.consensus.timestamps import LogicalTimestamp
from repro.core.history import CommandStatus
from repro.core.messages import Recovery, RecoveryReply
from repro.core.recovery import RecoveryAttempt
from repro.runtime.kernel import QuorumTracker
from tests.conftest import build_caesar_cluster, make_command


def ts(counter: int, node: int = 0) -> LogicalTimestamp:
    return LogicalTimestamp(counter, node)


def make_reply(command_id, ballot, status, timestamp, predecessors=(), forced=False,
               entry_ballot=None):
    return RecoveryReply(command_id=command_id, ballot=ballot, known=True,
                         entry_ballot=entry_ballot or Ballot.initial(0),
                         timestamp=timestamp, predecessors=frozenset(predecessors),
                         status=status.value, forced=forced)


class RecoveryHarness:
    """A replica whose recovery manager is driven with synthetic replies."""

    def __init__(self):
        _, _, self.replicas = build_caesar_cluster(recovery=False, seed=2)
        self.replica = self.replicas[1]
        self.manager = self.replica.recovery
        self.command = make_command(0, 0, key="x", origin=0)
        self.ballot = Ballot(1, self.replica.node_id)
        self.attempt = RecoveryAttempt(
            command=self.command, ballot=self.ballot,
            votes=QuorumTracker(self.replica.quorums.classic))
        self.manager._attempts[self.command.command_id] = self.attempt
        self.replica.ballots[self.command.command_id] = self.ballot

    def dispatch(self, replies):
        for src, reply in enumerate(replies, start=2):
            self.attempt.votes.vote(src, reply)
        self.manager._dispatch(self.attempt)
        return self.replica.leader_states.get(self.command.command_id)


class TestDispatchCases:
    def test_stable_reply_rebroadcasts_stable(self):
        harness = RecoveryHarness()
        reply = make_reply(harness.command.command_id, harness.ballot, CommandStatus.STABLE,
                           ts(5), predecessors={(9, 9)})
        state = harness.dispatch([reply])
        assert state is not None
        assert state.phase == "done"
        assert state.timestamp == ts(5)
        assert state.predecessors == {(9, 9)}

    def test_accepted_reply_resumes_via_retry(self):
        harness = RecoveryHarness()
        reply = make_reply(harness.command.command_id, harness.ballot, CommandStatus.ACCEPTED,
                           ts(7), predecessors={(8, 8)})
        state = harness.dispatch([reply])
        assert state is not None
        assert state.phase == "retry"
        assert state.timestamp == ts(7)

    def test_rejected_reply_restarts_fast_proposal_with_fresh_timestamp(self):
        harness = RecoveryHarness()
        reply = make_reply(harness.command.command_id, harness.ballot, CommandStatus.REJECTED,
                           ts(3))
        state = harness.dispatch([reply])
        assert state is not None
        assert state.phase == "fast_proposal"
        assert state.whitelist is None
        assert state.timestamp.node_id == harness.replica.node_id

    def test_slow_pending_reply_resumes_slow_proposal(self):
        harness = RecoveryHarness()
        reply = make_reply(harness.command.command_id, harness.ballot,
                           CommandStatus.SLOW_PENDING, ts(4), predecessors={(7, 7)})
        state = harness.dispatch([reply])
        assert state is not None
        assert state.phase == "slow_proposal"

    def test_all_unknown_restarts_from_scratch(self):
        harness = RecoveryHarness()
        unknown = RecoveryReply(command_id=harness.command.command_id, ballot=harness.ballot,
                                known=False)
        state = harness.dispatch([unknown, unknown])
        assert state is not None
        assert state.phase == "fast_proposal"
        assert state.whitelist is None

    def test_higher_status_wins_over_fast_pending(self):
        harness = RecoveryHarness()
        pending = make_reply(harness.command.command_id, harness.ballot,
                             CommandStatus.FAST_PENDING, ts(5))
        accepted = make_reply(harness.command.command_id, harness.ballot,
                              CommandStatus.ACCEPTED, ts(6))
        state = harness.dispatch([pending, accepted])
        assert state.phase == "retry"


class TestWhitelistReconstruction:
    def test_majority_agreement_forces_whitelist(self):
        """Predecessors reported by enough of the quorum are forced (Figure 5, line 22)."""
        harness = RecoveryHarness()
        cid = harness.command.command_id
        common = (9, 9)
        rare = (8, 8)
        replies = [
            make_reply(cid, harness.ballot, CommandStatus.FAST_PENDING, ts(5),
                       predecessors={common, rare}),
            make_reply(cid, harness.ballot, CommandStatus.FAST_PENDING, ts(5),
                       predecessors={common}),
        ]
        state = harness.dispatch(replies)
        assert state.phase == "fast_proposal"
        assert state.timestamp == ts(5)
        # recovery_majority for CQ=3 is 2: 'common' is missing from 0 replies,
        # 'rare' is missing from 1 < 2, so both survive the filter... unless a
        # majority of tuples lack it.  With these two replies both are kept.
        assert common in state.whitelist
        assert rare in state.whitelist

    def test_predecessor_missing_from_majority_excluded(self):
        harness = RecoveryHarness()
        cid = harness.command.command_id
        shaky = (8, 8)
        replies = [
            make_reply(cid, harness.ballot, CommandStatus.FAST_PENDING, ts(5),
                       predecessors={shaky}),
            make_reply(cid, harness.ballot, CommandStatus.FAST_PENDING, ts(5),
                       predecessors=set()),
            make_reply(cid, harness.ballot, CommandStatus.FAST_PENDING, ts(5),
                       predecessors=set()),
        ]
        state = harness.dispatch(replies)
        # 'shaky' is absent from 2 >= floor(CQ/2)+1 = 2 tuples: it cannot have
        # been part of a fast decision, so it is not forced.
        assert shaky not in state.whitelist

    def test_forced_reply_propagates_whitelist(self):
        harness = RecoveryHarness()
        cid = harness.command.command_id
        forced_pred = (7, 7)
        replies = [
            make_reply(cid, harness.ballot, CommandStatus.FAST_PENDING, ts(5),
                       predecessors={forced_pred}, forced=True),
        ]
        state = harness.dispatch(replies)
        assert state.whitelist == frozenset({forced_pred})

    def test_too_few_fast_pending_tuples_yield_no_whitelist(self):
        harness = RecoveryHarness()
        cid = harness.command.command_id
        replies = [
            make_reply(cid, harness.ballot, CommandStatus.FAST_PENDING, ts(5),
                       predecessors={(9, 9)}),
        ]
        state = harness.dispatch(replies)
        # A single tuple (< floor(CQ/2)+1 = 2) cannot witness a fast decision.
        assert state.whitelist is None

    def test_stale_ballot_recovery_reply_ignored(self):
        harness = RecoveryHarness()
        cid = harness.command.command_id
        stale = RecoveryReply(command_id=cid, ballot=Ballot(0, 3), known=True,
                              entry_ballot=Ballot.initial(0), timestamp=ts(5),
                              predecessors=frozenset(), status="fast-pending")
        harness.manager.on_recovery_reply(2, stale)
        assert harness.attempt.votes.payloads() == []


class TestRecoveryMessageSide:
    def test_acceptor_answers_higher_ballot_with_local_tuple(self):
        harness = RecoveryHarness()
        acceptor = harness.replicas[2]
        command = harness.command
        acceptor.history.update(command, ts(4), {(6, 6)}, CommandStatus.FAST_PENDING,
                                Ballot.initial(0))
        sent = []
        acceptor.send = lambda dst, msg, size_bytes=64: sent.append((dst, msg))
        acceptor.recovery.on_recovery_message(1, Recovery(command=command,
                                                          ballot=Ballot(3, 1)))
        assert len(sent) == 1
        reply = sent[0][1]
        assert reply.known
        assert reply.timestamp == ts(4)
        assert reply.predecessors == frozenset({(6, 6)})
        assert acceptor.ballots[command.command_id] == Ballot(3, 1)

    def test_acceptor_answers_nop_when_command_unknown(self):
        harness = RecoveryHarness()
        acceptor = harness.replicas[3]
        sent = []
        acceptor.send = lambda dst, msg, size_bytes=64: sent.append((dst, msg))
        acceptor.recovery.on_recovery_message(1, Recovery(command=harness.command,
                                                          ballot=Ballot(3, 1)))
        assert len(sent) == 1
        assert not sent[0][1].known
