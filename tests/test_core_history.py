"""Unit tests for the per-node command history H_i."""

from __future__ import annotations

import pytest

from repro.consensus.ballots import Ballot
from repro.consensus.timestamps import LogicalTimestamp
from repro.core.history import CommandHistory, CommandStatus
from tests.conftest import make_command


def ts(counter: int, node: int = 0) -> LogicalTimestamp:
    return LogicalTimestamp(counter, node)


class TestUpdateAndLookup:
    def test_update_inserts_entry(self):
        history = CommandHistory()
        command = make_command(0, 0, key="x")
        history.update(command, ts(1), set(), CommandStatus.FAST_PENDING, Ballot.initial(0))
        entry = history.get(command.command_id)
        assert entry is not None
        assert entry.status is CommandStatus.FAST_PENDING
        assert entry.timestamp == ts(1)
        assert command.command_id in history

    def test_update_replaces_existing_entry(self):
        history = CommandHistory()
        command = make_command(0, 0, key="x")
        history.update(command, ts(1), set(), CommandStatus.FAST_PENDING, Ballot.initial(0))
        history.update(command, ts(5), {(9, 9)}, CommandStatus.STABLE, Ballot.initial(0))
        assert len(history) == 1
        entry = history.get(command.command_id)
        assert entry.status is CommandStatus.STABLE
        assert entry.timestamp == ts(5)
        assert entry.predecessors == {(9, 9)}

    def test_get_unknown_returns_none(self):
        assert CommandHistory().get((1, 2)) is None

    def test_predecessors_of_unknown_is_empty(self):
        assert CommandHistory().predecessors_of((1, 2)) == set()

    def test_status_of(self):
        history = CommandHistory()
        command = make_command(0, 0)
        history.update(command, ts(1), set(), CommandStatus.ACCEPTED, Ballot.initial(0))
        assert history.status_of(command.command_id) is CommandStatus.ACCEPTED
        assert history.status_of((9, 9)) is None

    def test_remove_cleans_key_index(self):
        history = CommandHistory()
        command = make_command(0, 0, key="x")
        other = make_command(1, 0, key="x")
        history.update(command, ts(1), set(), CommandStatus.STABLE, Ballot.initial(0))
        history.remove(command.command_id)
        assert command.command_id not in history
        assert list(history.conflicting_with(other)) == []


class TestConflictIndex:
    def test_conflicting_with_same_key(self):
        history = CommandHistory()
        first = make_command(0, 0, key="x")
        second = make_command(1, 0, key="x")
        unrelated = make_command(2, 0, key="y")
        for i, command in enumerate([first, second, unrelated]):
            history.update(command, ts(i), set(), CommandStatus.FAST_PENDING, Ballot.initial(0))
        conflicting = {entry.command_id for entry in history.conflicting_with(first)}
        assert conflicting == {second.command_id}

    def test_conflicting_excludes_self(self):
        history = CommandHistory()
        command = make_command(0, 0, key="x")
        history.update(command, ts(1), set(), CommandStatus.FAST_PENDING, Ballot.initial(0))
        assert list(history.conflicting_with(command)) == []

    def test_reads_do_not_conflict(self):
        history = CommandHistory()
        read_one = make_command(0, 0, key="x", operation="get")
        read_two = make_command(1, 0, key="x", operation="get")
        history.update(read_one, ts(1), set(), CommandStatus.FAST_PENDING, Ballot.initial(0))
        assert list(history.conflicting_with(read_two)) == []

    def test_stable_entries_iterator(self):
        history = CommandHistory()
        stable = make_command(0, 0, key="a")
        pending = make_command(1, 0, key="b")
        history.update(stable, ts(1), set(), CommandStatus.STABLE, Ballot.initial(0))
        history.update(pending, ts(2), set(), CommandStatus.FAST_PENDING, Ballot.initial(0))
        assert {e.command_id for e in history.stable_entries()} == {stable.command_id}


class TestStatusFlags:
    @pytest.mark.parametrize("status,finalizing", [
        (CommandStatus.FAST_PENDING, False),
        (CommandStatus.SLOW_PENDING, False),
        (CommandStatus.REJECTED, False),
        (CommandStatus.ACCEPTED, True),
        (CommandStatus.STABLE, True),
    ])
    def test_is_finalizing(self, status, finalizing):
        assert status.is_finalizing == finalizing

    @pytest.mark.parametrize("status,survived", [
        (CommandStatus.FAST_PENDING, False),
        (CommandStatus.REJECTED, False),
        (CommandStatus.SLOW_PENDING, True),
        (CommandStatus.ACCEPTED, True),
        (CommandStatus.STABLE, True),
    ])
    def test_survived_proposal(self, status, survived):
        assert status.survived_proposal == survived
