"""Unit tests for the event queue primitives."""

from __future__ import annotations

from repro.sim.events import EventQueue


class TestEventOrdering:
    def test_events_ordered_by_time(self):
        queue = EventQueue()
        fired = []
        queue.push(5.0, lambda: fired.append("b"))
        queue.push(1.0, lambda: fired.append("a"))
        queue.push(9.0, lambda: fired.append("c"))
        while True:
            event = queue.pop()
            if event is None:
                break
            event.callback()
        assert fired == ["a", "b", "c"]

    def test_same_time_fifo(self):
        queue = EventQueue()
        fired = []
        for name in ["first", "second", "third"]:
            queue.push(3.0, lambda n=name: fired.append(n))
        while (event := queue.pop()) is not None:
            event.callback()
        assert fired == ["first", "second", "third"]

    def test_priority_breaks_ties_before_sequence(self):
        queue = EventQueue()
        fired = []
        queue.push(3.0, lambda: fired.append("low-priority"), priority=5)
        queue.push(3.0, lambda: fired.append("high-priority"), priority=0)
        while (event := queue.pop()) is not None:
            event.callback()
        assert fired == ["high-priority", "low-priority"]

    def test_peek_time_returns_earliest(self):
        queue = EventQueue()
        queue.push(7.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert queue.peek_time() == 2.0

    def test_peek_time_empty_queue(self):
        assert EventQueue().peek_time() is None


class TestCancellation:
    def test_cancelled_event_not_returned(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        event.cancel()
        assert queue.pop() is None

    def test_cancel_only_affects_target(self):
        queue = EventQueue()
        fired = []
        keep = queue.push(1.0, lambda: fired.append("keep"))
        drop = queue.push(2.0, lambda: fired.append("drop"))
        drop.cancel()
        while (event := queue.pop()) is not None:
            event.callback()
        assert fired == ["keep"]
        assert not keep.cancelled

    def test_peek_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(5.0, lambda: None)
        first.cancel()
        assert queue.peek_time() == 5.0

    def test_clear_empties_queue(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        queue.clear()
        assert queue.pop() is None
        assert len(queue) == 0

    def test_len_counts_pushed_events(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2
        queue.pop()
        assert len(queue) == 1
