"""Cheap unit tests for reporting helpers, configs and small data structures.

These cover corner cases not exercised by the experiment-level tests and run
in microseconds (no simulation involved).
"""

from __future__ import annotations

import pytest

from repro.consensus.ballots import Ballot
from repro.consensus.timestamps import LogicalTimestamp
from repro.core.config import CaesarConfig
from repro.core.messages import FastPropose, FastProposeReply, Stable
from repro.harness.experiment import ExperimentConfig, ExperimentResult
from repro.harness.report import format_series, format_table
from repro.metrics.collector import MetricsCollector
from repro.sim.batching import BatchingConfig
from repro.sim.costs import CostModel, zero_cost_model
from tests.conftest import make_command


class TestFormatTable:
    def test_empty_rows(self):
        table = format_table("Empty", ["col"], [])
        assert "Empty" in table
        assert "col" in table

    def test_wide_cell_expands_column(self):
        table = format_table("T", ["x"], [["a-very-long-cell-value"]])
        header_line = table.splitlines()[1]
        assert len(header_line) >= len("a-very-long-cell-value")

    def test_float_formatting_one_decimal(self):
        table = format_table("T", ["x"], [[3.14159]])
        assert "3.1" in table and "3.14159" not in table

    def test_format_series_preserves_first_seen_x_order(self):
        series = {"a": {"z": 1.0, "y": 2.0}, "b": {"x": 3.0}}
        lines = format_series("T", series).splitlines()
        data_lines = lines[3:]
        first_column = [line.split("|")[0].strip() for line in data_lines]
        assert first_column == ["z", "y", "x"]


class TestConfigs:
    def test_caesar_config_defaults_match_paper_setup(self):
        config = CaesarConfig()
        assert config.wait_condition_enabled
        assert config.recovery_enabled
        assert config.fast_proposal_timeout_ms > 0

    def test_experiment_config_default_topology_is_none(self):
        config = ExperimentConfig()
        assert config.topology is None
        assert config.protocol == "caesar"
        assert 0.0 <= config.conflict_rate <= 1.0

    def test_zero_cost_model_is_free(self):
        model = zero_cost_model()
        assert model.message_cost("anything") == 0.0
        assert model.dependency_cost(100) == 0.0

    def test_self_message_discount_applied(self):
        model = CostModel(default_cost_ms=1.0, self_message_factor=0.5)
        assert model.message_cost("m", local=True) == pytest.approx(0.5)
        assert model.message_cost("m", local=False) == pytest.approx(1.0)

    def test_batching_config_defaults_sane(self):
        config = BatchingConfig()
        assert config.window_ms > 0
        assert config.max_messages > 1
        assert 0 < config.marginal_cost_factor < 1


class TestMessages:
    def test_messages_are_immutable(self):
        message = FastPropose(command=make_command(0, 0), ballot=Ballot.initial(0),
                              timestamp=LogicalTimestamp(1, 0))
        with pytest.raises(AttributeError):
            message.timestamp = LogicalTimestamp(2, 0)  # type: ignore[misc]

    def test_fast_propose_defaults_to_no_whitelist(self):
        message = FastPropose(command=make_command(0, 0), ballot=Ballot.initial(0),
                              timestamp=LogicalTimestamp(1, 0))
        assert message.whitelist is None

    def test_reply_round_trips_predecessor_set(self):
        predecessors = frozenset({(1, 2), (3, 4)})
        reply = FastProposeReply(command_id=(0, 0), ballot=Ballot.initial(0),
                                 timestamp=LogicalTimestamp(1, 0),
                                 predecessors=predecessors, ok=True)
        assert reply.predecessors == predecessors

    def test_stable_carries_command_body(self):
        command = make_command(0, 0, key="k")
        message = Stable(command=command, ballot=Ballot.initial(0),
                         timestamp=LogicalTimestamp(1, 0), predecessors=frozenset())
        assert message.command.key == "k"


class TestExperimentResultHelpers:
    def build_result(self, fast: int, slow: int) -> ExperimentResult:
        return ExperimentResult(config=ExperimentConfig(), cluster=None,
                                metrics=MetricsCollector(), measured_duration_ms=1000.0,
                                per_site_latency={}, overall_latency=None,
                                throughput_per_second=0.0, fast_decisions=fast,
                                slow_decisions=slow, consistency_violations=0)

    def test_slow_path_ratio(self):
        assert self.build_result(3, 1).slow_path_ratio == pytest.approx(0.25)

    def test_slow_path_ratio_none_without_decisions(self):
        assert self.build_result(0, 0).slow_path_ratio is None

    def test_site_mean_latency_missing_site(self):
        assert self.build_result(1, 0).site_mean_latency("virginia") is None
