"""Deterministic regression tests for ownership/contention livelocks.

Hypothesis found a genuine liveness bug in the M²Paxos implementation: three
replicas submitting a command for the same key at the same instant all start
an ownership acquisition at the same epoch, refuse each other, and retry in
lockstep forever while a deposed owner's in-flight accept round is silently
dropped — so one command never executes anywhere.  The falsifying example is
pinned here *without* Hypothesis so the exact interleaving is replayed on
every run, together with the symmetric cases for the other protocols.
"""

from __future__ import annotations

import pytest

from repro.baselines.m2paxos import M2PaxosReplica
from repro.consensus.command import Command
from test_properties_consistency import check_invariants, run_workload

#: The Hypothesis falsifying example: replicas 0, 1 and 2 each submit a
#: command for key-0 at t=0, producing a three-way ownership fight.
PINNED_STEPS = [(0, 0, 0.0), (1, 0, 0.0), (2, 0, 0.0)]


class TestPinnedM2PaxosLivelock:
    def test_three_way_ownership_contention_converges(self):
        replicas, submitted, finished = run_workload("m2paxos", PINNED_STEPS)
        check_invariants(replicas, submitted, finished)

    def test_contention_resolved_by_backoff_not_starvation(self):
        """The losers must fall back to forwarding, not retry forever."""
        replicas, _, finished = run_workload("m2paxos", PINNED_STEPS)
        assert finished
        acquisitions = sum(r.stats.acquisitions for r in replicas)
        # Convergence: bounded number of acquisition rounds, not an unbounded
        # retry storm (the livelocked implementation kept acquiring).
        assert acquisitions <= 3 * len(PINNED_STEPS)
        # Exactly one replica ends up owning the contended key everywhere.
        owners = {r.owners.get("key-0") for r in replicas if isinstance(r, M2PaxosReplica)}
        assert len(owners) == 1

    def test_five_way_contention_converges(self):
        steps = [(origin, 0, 0.0) for origin in range(5)]
        replicas, submitted, finished = run_workload("m2paxos", steps)
        check_invariants(replicas, submitted, finished)

    def test_staggered_contention_converges(self):
        """Requests arriving one network-delay apart also converge."""
        steps = [(0, 0, 0.0), (1, 0, 40.0), (2, 0, 80.0), (0, 0, 120.0)]
        replicas, submitted, finished = run_workload("m2paxos", steps)
        check_invariants(replicas, submitted, finished)


class TestPinnedSplitVoteForwardCycle:
    """Regression for the split-vote forwarding cycle.

    With three-plus contenders at the same epoch the grant vote can split so
    that *nobody* wins ownership, while each loser learns a different
    "current owner" from refusal gossip.  Two replicas then believe the
    other one owns the key and bounce ForwardCommand between themselves
    forever (found by randomized stress after the original livelock fix).
    The hop limit in ``_on_forward`` must break the cycle by falling back to
    a fresh acquisition.
    """

    # Stress-discovered interleaving: four-way contention on key-0 whose
    # epoch-1 vote splits 2/2 between replicas 0 and 2.
    STEPS = [(4, 1, 23.483964414289474), (1, 1, 37.93099633529382),
             (0, 1, 26.11326531493), (3, 0, 32.30050874152132),
             (2, 1, 28.163268053264495), (0, 0, 2.014211529583787),
             (4, 1, 50.11693501125954), (1, 1, 6.62429174723899),
             (2, 0, 21.098615645243893), (0, 0, 50.35301607659274),
             (1, 1, 58.60248221056623), (2, 1, 7.0415574824996074)]
    SEED = 39260

    def test_split_vote_forward_cycle_converges(self):
        replicas, submitted, finished = run_workload("m2paxos", self.STEPS,
                                                     seed=self.SEED)
        check_invariants(replicas, submitted, finished)


class TestPinnedSymmetricCases:
    """The same interleaving must stay live for every other protocol."""

    @pytest.mark.parametrize("protocol", ["mencius", "epaxos", "multipaxos", "caesar"])
    def test_three_way_contention(self, protocol):
        replicas, submitted, finished = run_workload(protocol, PINNED_STEPS)
        check_invariants(replicas, submitted, finished)


class TestPinnedM2PaxosPartitionHeal:
    """M2Paxos ownership acquisition across a partition-then-heal nemesis.

    Both sides of a queue-mode partition contend for the same key while the
    cut is up; acquisition rounds from the minority side arrive in a burst at
    the heal.  The ownership machinery must converge within a bounded number
    of simulation events — an acquisition retry storm after the heal is the
    regression this pins (non-Hypothesis: the interleaving replays exactly).
    """

    #: Event budget: the pinned run takes ~206 events; a livelock regression
    #: burns the 300s virtual-time deadline instead (hundreds of thousands).
    MAX_EVENTS = 5_000

    def test_ownership_contention_across_partition_heal_converges(self):
        from repro.chaos.nemesis import Nemesis, NemesisPlan, PartitionFault
        from repro.harness.cluster import ClusterConfig, build_cluster

        cluster = build_cluster(ClusterConfig(protocol="m2paxos", seed=11))
        plan = NemesisPlan("partition-heal", (
            PartitionFault(at_ms=40.0, heal_at_ms=400.0, groups=((0, 1, 2), (3, 4))),))
        Nemesis(cluster, plan)

        submitted = []
        # Same-key contention from both sides of the cut, before and during
        # the partition (origins 3 and 4 are in the minority).
        for index, (origin, delay) in enumerate([(0, 0.0), (3, 0.0), (1, 60.0),
                                                 (4, 80.0), (2, 200.0), (3, 250.0)]):
            command = Command(command_id=(origin, index), key="key-0", operation="put",
                              value=f"v{index}", origin=origin)
            submitted.append(command)
            cluster.sim.schedule(delay, lambda r=cluster.replicas[origin],
                                 c=command: r.submit(c))

        ids = [c.command_id for c in submitted]
        finished = cluster.run_until_executed(ids, deadline_ms=300_000)
        assert finished, "m2paxos did not converge after the partition healed"
        assert cluster.sim.steps_executed < self.MAX_EVENTS
        assert cluster.check_consistency() == []
        owners = {r.owners.get("key-0") for r in cluster.replicas
                  if isinstance(r, M2PaxosReplica)}
        assert len(owners) == 1
