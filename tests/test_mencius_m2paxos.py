"""Integration tests for the Mencius and M2Paxos baselines."""

from __future__ import annotations

import pytest

from repro.baselines.m2paxos import M2PaxosReplica
from repro.baselines.mencius import MenciusReplica
from repro.consensus.quorums import QuorumSystem
from repro.kvstore.store import KeyValueStore
from repro.sim.network import Network
from repro.sim.simulator import Simulator
from repro.sim.topology import ec2_five_sites, uniform_topology
from tests.conftest import make_command


def build_cluster(cls, n: int = 5, seed: int = 1):
    topology = ec2_five_sites() if n == 5 else uniform_topology(n, rtt_ms=40.0)
    sim = Simulator(seed=seed)
    network = Network(sim, topology)
    quorums = QuorumSystem.for_cluster(n)
    replicas = [cls(i, sim, network, quorums, KeyValueStore()) for i in range(n)]
    return sim, network, replicas


def submit_and_run(sim, replicas, commands, deadline_ms=60000):
    for origin, command in commands:
        replicas[origin].submit(command)
    ids = [c.command_id for _, c in commands]
    return sim.run_until(
        lambda: all(r.has_executed(cid) for r in replicas for cid in ids),
        deadline=deadline_ms)


class TestMencius:
    def test_single_command_delivered_everywhere(self):
        sim, _, replicas = build_cluster(MenciusReplica)
        command = make_command(0, 0, key="a", origin=0)
        assert submit_and_run(sim, replicas, [(0, command)])
        assert all(r.commands_executed == 1 for r in replicas)

    def test_latency_governed_by_slowest_peer(self):
        """A Mencius leader must hear from every node, so latency tracks the farthest RTT."""
        topology = ec2_five_sites()
        sim, _, replicas = build_cluster(MenciusReplica)
        virginia = topology.index_of("virginia")
        command = make_command(0, 0, key="a", origin=virginia)
        assert submit_and_run(sim, replicas, [(virginia, command)])
        latency = replicas[virginia].decisions[command.command_id].latency_ms
        farthest = max(topology.rtt(virginia, other) for other in range(5))
        assert latency == pytest.approx(farthest, rel=0.15)

    def test_total_order_identical_on_all_replicas(self):
        sim, _, replicas = build_cluster(MenciusReplica)
        commands = [(i, make_command(i, k, key=f"k{k}", origin=i))
                    for i in range(5) for k in range(4)]
        assert submit_and_run(sim, replicas, commands)
        reference = [c.command_id for c in replicas[0].execution_log]
        for replica in replicas[1:]:
            assert [c.command_id for c in replica.execution_log] == reference

    def test_skips_fill_unused_slots(self):
        """An idle replica's slots are skipped so others can still deliver."""
        sim, _, replicas = build_cluster(MenciusReplica)
        # Only replica 0 and 1 propose; slots owned by 2, 3, 4 must be skipped.
        commands = [(0, make_command(0, k, key=f"a{k}", origin=0)) for k in range(5)]
        commands += [(1, make_command(1, k, key=f"b{k}", origin=1)) for k in range(5)]
        assert submit_and_run(sim, replicas, commands)
        assert sum(r.stats.slots_skipped for r in replicas) > 0

    def test_conflicting_commands_consistent(self):
        sim, _, replicas = build_cluster(MenciusReplica)
        commands = [(i, make_command(i, k, key="hot", origin=i))
                    for i in range(5) for k in range(3)]
        assert submit_and_run(sim, replicas, commands)
        for i in range(5):
            for j in range(i + 1, 5):
                assert replicas[i].execution_log.conflicting_order_violations(
                    replicas[j].execution_log) == []


class TestM2Paxos:
    def test_first_access_acquires_ownership(self):
        sim, _, replicas = build_cluster(M2PaxosReplica)
        command = make_command(0, 0, key="mine", origin=0)
        assert submit_and_run(sim, replicas, [(0, command)])
        assert replicas[0].stats.acquisitions == 1
        assert replicas[0].owners["mine"] == 0

    def test_owner_orders_without_new_acquisition(self):
        sim, _, replicas = build_cluster(M2PaxosReplica)
        commands = [(0, make_command(0, k, key="mine", origin=0)) for k in range(4)]
        assert submit_and_run(sim, replicas, commands)
        assert replicas[0].stats.acquisitions == 1
        assert replicas[0].stats.local_decisions == 4

    def test_non_owner_forwards_to_owner(self):
        sim, _, replicas = build_cluster(M2PaxosReplica)
        first = make_command(0, 0, key="shared", origin=0)
        assert submit_and_run(sim, replicas, [(0, first)])
        second = make_command(1, 0, key="shared", origin=1)
        assert submit_and_run(sim, replicas, [(1, second)])
        assert replicas[1].stats.commands_forwarded >= 1
        # The forwarded command is ordered by the owner (replica 0).
        assert replicas[0].stats.local_decisions == 2

    def test_forwarded_commands_cost_more_latency(self):
        """The forwarding hop is what degrades M2Paxos under conflicts (Figure 6)."""
        sim, _, replicas = build_cluster(M2PaxosReplica)
        local = make_command(0, 0, key="shared", origin=0)
        assert submit_and_run(sim, replicas, [(0, local)])
        remote = make_command(4, 0, key="shared", origin=4)
        assert submit_and_run(sim, replicas, [(4, remote)])
        local_latency = replicas[0].decisions[local.command_id].latency_ms
        remote_latency = replicas[4].decisions[remote.command_id].latency_ms
        assert remote_latency > local_latency

    def test_per_key_order_consistent_across_replicas(self):
        sim, _, replicas = build_cluster(M2PaxosReplica)
        commands = [(i, make_command(i, k, key="hot", origin=i))
                    for i in range(5) for k in range(3)]
        assert submit_and_run(sim, replicas, commands)
        for i in range(5):
            for j in range(i + 1, 5):
                assert replicas[i].execution_log.conflicting_order_violations(
                    replicas[j].execution_log) == []

    def test_different_keys_independent(self):
        sim, _, replicas = build_cluster(M2PaxosReplica)
        commands = [(i, make_command(i, 0, key=f"key-{i}", origin=i)) for i in range(5)]
        assert submit_and_run(sim, replicas, commands)
        assert all(r.commands_executed == 5 for r in replicas)

    def test_state_machines_converge(self):
        sim, _, replicas = build_cluster(M2PaxosReplica)
        commands = [(i, make_command(i, k, key=f"hot-{k % 2}", origin=i))
                    for i in range(5) for k in range(3)]
        assert submit_and_run(sim, replicas, commands)
        snapshots = [r.state_machine.snapshot() for r in replicas]
        assert all(s == snapshots[0] for s in snapshots)

    def test_concurrent_acquisition_single_winner(self):
        """Two replicas racing for an unowned key converge on one owner."""
        sim, _, replicas = build_cluster(M2PaxosReplica)
        first = make_command(0, 0, key="contested", origin=0)
        second = make_command(4, 0, key="contested", origin=4)
        replicas[0].submit(first)
        replicas[4].submit(second)
        assert sim.run_until(
            lambda: all(r.has_executed(first.command_id) and r.has_executed(second.command_id)
                        for r in replicas),
            deadline=60000)
        owners = {r.owners.get("contested") for r in replicas}
        assert len(owners) == 1
