"""Unit tests for stable-command delivery and BREAKLOOP."""

from __future__ import annotations

from repro.consensus.ballots import Ballot
from repro.consensus.timestamps import LogicalTimestamp
from repro.core.delivery import DeliveryManager
from repro.core.history import CommandHistory, CommandStatus
from tests.conftest import make_command


def ts(counter: int, node: int = 0) -> LogicalTimestamp:
    return LogicalTimestamp(counter, node)


BALLOT = Ballot.initial(0)


class DeliveryHarness:
    """History + delivery manager + a list capturing execution order."""

    def __init__(self) -> None:
        self.history = CommandHistory()
        self.executed = []
        self.manager = DeliveryManager(self.history, lambda c: self.executed.append(c.command_id))

    def stable(self, command, timestamp, predecessors=()):
        self.history.update(command, timestamp, set(predecessors), CommandStatus.STABLE, BALLOT)
        return self.manager.on_stable(command)


class TestBasicDelivery:
    def test_command_without_predecessors_delivered_immediately(self):
        harness = DeliveryHarness()
        command = make_command(0, 0, key="x")
        delivered = harness.stable(command, ts(1))
        assert [c.command_id for c in delivered] == [command.command_id]
        assert harness.manager.is_delivered(command.command_id)
        assert harness.manager.delivered_count == 1

    def test_command_waits_for_predecessor(self):
        harness = DeliveryHarness()
        first = make_command(0, 0, key="x")
        second = make_command(1, 0, key="x")
        harness.stable(second, ts(5), predecessors={first.command_id})
        assert harness.executed == []
        assert harness.manager.pending_count() == 1
        harness.stable(first, ts(1))
        assert harness.executed == [first.command_id, second.command_id]

    def test_duplicate_stable_is_ignored(self):
        harness = DeliveryHarness()
        command = make_command(0, 0, key="x")
        harness.stable(command, ts(1))
        assert harness.stable(command, ts(1)) == []
        assert harness.executed == [command.command_id]

    def test_delivery_respects_timestamp_order_among_ready(self):
        harness = DeliveryHarness()
        late = make_command(0, 0, key="x")
        early = make_command(1, 0, key="y")
        blocker = make_command(2, 0, key="z")
        # Make both late and early wait on the same predecessor, then release it.
        harness.stable(late, ts(9), predecessors={blocker.command_id})
        harness.stable(early, ts(2), predecessors={blocker.command_id})
        harness.stable(blocker, ts(1))
        assert harness.executed == [blocker.command_id, early.command_id, late.command_id]

    def test_on_delivered_hook_invoked(self):
        history = CommandHistory()
        hook_calls = []
        manager = DeliveryManager(history, lambda c: None,
                                  on_delivered=lambda c: hook_calls.append(c.command_id))
        command = make_command(0, 0, key="x")
        history.update(command, ts(1), set(), CommandStatus.STABLE, BALLOT)
        manager.on_stable(command)
        assert hook_calls == [command.command_id]

    def test_retry_pending_after_external_change(self):
        harness = DeliveryHarness()
        first = make_command(0, 0, key="x")
        second = make_command(1, 0, key="x")
        harness.stable(second, ts(5), predecessors={first.command_id})
        # Simulate the predecessor being garbage-collected / delivered elsewhere:
        entry = harness.history.get(second.command_id)
        entry.pred_mask = 0
        delivered = harness.manager.retry_pending()
        assert [c.command_id for c in delivered] == [second.command_id]


class TestBreakLoop:
    def test_mutual_reference_lower_timestamp_first(self):
        """c1(ts1) <-> c2(ts4): whoever arrives second, both must deliver, c1 first."""
        harness = DeliveryHarness()
        c1 = make_command(0, 0, key="x")
        c2 = make_command(1, 0, key="x")
        harness.stable(c1, ts(1), predecessors={c2.command_id})
        assert harness.executed == []  # c2 not stable yet
        harness.stable(c2, ts(4), predecessors={c1.command_id})
        assert harness.executed == [c1.command_id, c2.command_id]

    def test_mutual_reference_higher_timestamp_first(self):
        harness = DeliveryHarness()
        c1 = make_command(0, 0, key="x")
        c2 = make_command(1, 0, key="x")
        harness.stable(c2, ts(4), predecessors={c1.command_id})
        assert harness.executed == []
        harness.stable(c1, ts(1), predecessors={c2.command_id})
        assert harness.executed == [c1.command_id, c2.command_id]

    def test_three_way_loop_resolved_by_timestamps(self):
        harness = DeliveryHarness()
        a = make_command(0, 0, key="x")
        b = make_command(1, 0, key="x")
        c = make_command(2, 0, key="x")
        harness.stable(a, ts(1), predecessors={b.command_id, c.command_id})
        harness.stable(b, ts(2), predecessors={a.command_id, c.command_id})
        harness.stable(c, ts(3), predecessors={a.command_id, b.command_id})
        assert harness.executed == [a.command_id, b.command_id, c.command_id]

    def test_break_loop_does_not_touch_unrelated_edges(self):
        harness = DeliveryHarness()
        a = make_command(0, 0, key="x")
        b = make_command(1, 0, key="x")
        c = make_command(2, 0, key="x")
        # b depends on a (legitimately earlier), and on c which is later: only
        # the (b -> c) edge should be cut.
        harness.stable(b, ts(5), predecessors={a.command_id, c.command_id})
        harness.stable(c, ts(9), predecessors={a.command_id, b.command_id})
        assert harness.executed == []  # both still wait for a
        harness.stable(a, ts(1))
        assert harness.executed == [a.command_id, b.command_id, c.command_id]
