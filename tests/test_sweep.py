"""Tests for the parallel sweep orchestrator (repro.harness.sweep).

The two load-bearing properties:

* **Determinism** — a sweep fanned out across worker processes produces
  byte-identical BENCH JSON and figure tables to a serial in-process run.
* **Failure visibility** — a cell that raises, or a worker process that
  dies outright, fails the sweep with a :class:`SweepError` naming the
  cell instead of hanging the suite.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pathlib
import subprocess
import sys

import pytest

from repro.harness.experiment import ExperimentConfig
from repro.harness.figures import figure6_latency_vs_conflicts
from repro.harness.sweep import (
    SweepCell,
    SweepError,
    key_string,
    matches_any,
    product_grid,
    resolve_workers,
    run_sweep,
    sweep_cell,
)
from repro.metrics.perf import PerfRecord, merge_partial_records, write_record
from repro.sim.random import DeterministicRandom, derive_seed, stable_label

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

#: A grid small enough for the unit suite: 4 cells of ~0.2 s each.
SMALL_GRID = dict(conflict_rates=(0.0, 0.3), protocols=("caesar", "epaxos"),
                  clients_per_site=2, duration_ms=1200.0, warmup_ms=300.0)


def tiny_config(**overrides) -> ExperimentConfig:
    defaults = dict(protocol="caesar", clients_per_site=1, duration_ms=400.0,
                    warmup_ms=100.0, drain_ms=200.0)
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


# -- runners for the failure tests; top-level so worker processes can
# unpickle them by reference.

def raising_runner(config):
    raise ValueError("injected cell failure")


def dying_runner(config):
    os._exit(13)


class TestStableCellKeying:
    def test_stable_label_canonicalizes_primitives(self):
        assert stable_label("caesar") == "caesar"
        assert stable_label(10) == "10"
        assert stable_label(0.1) == "0.1"
        assert stable_label(True) == "True"

    def test_stable_label_rejects_unhashable_coordinates(self):
        with pytest.raises(TypeError):
            stable_label(["not", "primitive"])

    def test_derive_seed_depends_on_every_coordinate(self):
        base = derive_seed(11, ("fig9", "caesar", 0.1))
        assert derive_seed(11, ("fig9", "caesar", 0.3)) != base
        assert derive_seed(11, ("fig9", "epaxos", 0.1)) != base
        assert derive_seed(12, ("fig9", "caesar", 0.1)) != base

    def test_composite_keys_do_not_collide_by_concatenation(self):
        assert derive_seed(1, ("ab", "c")) != derive_seed(1, ("a", "bc"))

    def test_fork_cell_matches_derive_seed(self):
        rng = DeterministicRandom(7)
        assert rng.fork_cell(("x", 1)).seed == derive_seed(7, ("x", 1))

    def test_fork_single_label_unchanged_from_pr1(self):
        # fork() seeds existing client/network streams; the sweep refactor
        # must not shift them (that would silently change every experiment).
        assert DeterministicRandom(0).fork("client-0").seed == 882420389

    def test_sweep_cell_derives_config_seed_from_key(self):
        cell = sweep_cell(("fig", "caesar", 0.1), tiny_config(), base_seed=3)
        assert cell.config.seed == derive_seed(3, ("fig", "caesar", 0.1))
        aliased = sweep_cell(("fig", "caesar", 0.3), tiny_config(), base_seed=3,
                             seed_key=("fig", "caesar"))
        assert aliased.config.seed == derive_seed(3, ("fig", "caesar"))


class TestGridHelpers:
    def test_product_grid_varies_last_axis_fastest(self):
        combos = list(product_grid({"p": ("a", "b"), "r": (1, 2)}))
        assert combos == [{"p": "a", "r": 1}, {"p": "a", "r": 2},
                          {"p": "b", "r": 1}, {"p": "b", "r": 2}]

    def test_key_string_and_matching(self):
        key = ("fig9", "caesar", 0.1)
        assert key_string(key) == "fig9/caesar/0.1"
        assert matches_any(key, ["fig9/caesar/*"])
        assert matches_any(key, ["*/0.1"])
        assert not matches_any(key, ["fig9/epaxos/*"])

    def test_resolve_workers(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_WORKERS", raising=False)
        assert resolve_workers(None, 8) == 1
        assert resolve_workers(4, 8) == 4
        assert resolve_workers(4, 2) == 2  # capped at the cell count
        assert resolve_workers("auto", 64) == min(os.cpu_count() or 1, 64)
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "3")
        assert resolve_workers(None, 8) == 3
        with pytest.raises(ValueError):
            resolve_workers(-1, 8)


class TestSweepDeterminism:
    def test_parallel_matches_serial_byte_identically(self, tmp_path):
        serial = figure6_latency_vs_conflicts(serial=True, **SMALL_GRID)
        parallel = figure6_latency_vs_conflicts(workers=4, **SMALL_GRID)

        assert parallel.series == serial.series
        assert parallel.table == serial.table
        assert (parallel.extra["sweep"].events_executed
                == serial.extra["sweep"].events_executed)

        # The figure table and the stable BENCH record serialize to the very
        # same bytes regardless of worker count.
        paths = {}
        for label, result in (("serial", serial), ("parallel", parallel)):
            out = tmp_path / label
            out.mkdir()
            (out / "figure6.txt").write_text(result.table + "\n")
            record = result.extra["sweep"].perf_record("figure6")
            record.series = {name: {str(x): y for x, y in points.items()}
                             for name, points in result.series.items()}
            write_record(record, out, stable=True)
            paths[label] = out
        for name in ("figure6.txt", "BENCH_figure6.json"):
            assert ((paths["serial"] / name).read_bytes()
                    == (paths["parallel"] / name).read_bytes()), name

    def test_filtered_cells_report_none_payloads(self):
        result = figure6_latency_vs_conflicts(cell_filter=["fig6/caesar/*"], **SMALL_GRID)
        assert all(value is not None for value in result.series["caesar"].values())
        assert all(value is None for value in result.series["epaxos"].values())
        assert result.extra["sweep"].skipped == 2

    def test_cells_are_order_independent(self):
        cells = [sweep_cell(("t", protocol, rate), tiny_config(protocol=protocol,
                                                               conflict_rate=rate),
                            base_seed=5)
                 for protocol in ("caesar", "epaxos") for rate in (0.0, 0.5)]
        forward = run_sweep(cells, serial=True)
        backward = run_sweep(list(reversed(cells)), serial=True)
        for cell in cells:
            assert forward.payload(cell.key) == backward.payload(cell.key)


class TestSweepFailures:
    @pytest.mark.skipif(not HAVE_FORK, reason="needs the fork start method to "
                        "dispatch test-module runners to workers")
    @pytest.mark.deadline(60)
    def test_raising_cell_fails_sweep_with_cell_name(self):
        cells = [SweepCell(key=("t", "ok"), config=tiny_config()),
                 SweepCell(key=("t", "bad"), config=tiny_config(), runner=raising_runner)]
        with pytest.raises(SweepError, match="t/bad"):
            run_sweep(cells, workers=2)

    @pytest.mark.skipif(not HAVE_FORK, reason="needs the fork start method to "
                        "dispatch test-module runners to workers")
    @pytest.mark.deadline(60)
    def test_dead_worker_fails_sweep_instead_of_hanging(self):
        cells = [SweepCell(key=("t", "dies"), config=tiny_config(), runner=dying_runner),
                 SweepCell(key=("t", "ok"), config=tiny_config())]
        with pytest.raises(SweepError, match="worker process died"):
            run_sweep(cells, workers=2)

    def test_serial_failure_also_named(self):
        cells = [SweepCell(key=("t", "bad"), config=tiny_config(), runner=raising_runner)]
        with pytest.raises(SweepError, match="t/bad.*injected cell failure"):
            run_sweep(cells, serial=True)


class TestPerfRecordMerging:
    def test_merge_partial_records_sums_events(self):
        parts = [PerfRecord(name="a", wall_seconds=1.0, events_executed=100,
                            events_per_second=100.0),
                 PerfRecord(name="b", wall_seconds=3.0, events_executed=300,
                            events_per_second=100.0)]
        merged = merge_partial_records("sweep", parts, wall_seconds=2.0)
        assert merged.events_executed == 400
        assert merged.events_per_second == pytest.approx(200.0)
        assert merged.extra["timing"]["cell_wall_seconds"] == pytest.approx(4.0)

    def test_stable_json_drops_wall_clock_fields(self):
        record = PerfRecord(name="x", wall_seconds=1.23, events_executed=10,
                            events_per_second=8.1,
                            extra={"timing": {"workers": 4}, "cells": 2})
        stable = record.to_json(stable=True)
        assert "wall_seconds" not in stable
        assert "events_per_second" not in stable
        assert "timing" not in stable.get("extra", {})
        assert stable["extra"]["cells"] == 2
        assert stable["events_executed"] == 10


class TestPerfGateScript:
    SCRIPT = pathlib.Path(__file__).parent.parent / "benchmarks" / "compare_perf.py"

    def run_gate(self, baseline_dir, current_dir, *extra):
        return subprocess.run(
            [sys.executable, str(self.SCRIPT), "--baseline", str(baseline_dir),
             "--current", str(current_dir), *extra],
            capture_output=True, text=True)

    def write(self, directory, name, events_per_second):
        directory.mkdir(exist_ok=True)
        (directory / name).write_text(json.dumps(
            {"name": name, "events_per_second": events_per_second}))

    def test_within_budget_passes(self, tmp_path):
        self.write(tmp_path / "base", "BENCH_x.json", 100_000)
        self.write(tmp_path / "cur", "BENCH_x.json", 80_000)
        proc = self.run_gate(tmp_path / "base", tmp_path / "cur")
        assert proc.returncode == 0, proc.stdout

    def test_regression_fails(self, tmp_path):
        self.write(tmp_path / "base", "BENCH_x.json", 100_000)
        self.write(tmp_path / "cur", "BENCH_x.json", 60_000)
        proc = self.run_gate(tmp_path / "base", tmp_path / "cur")
        assert proc.returncode == 1
        assert "FAIL BENCH_x.json" in proc.stdout

    def test_no_comparable_records_is_a_usage_error(self, tmp_path):
        (tmp_path / "base").mkdir()
        (tmp_path / "cur").mkdir()
        proc = self.run_gate(tmp_path / "base", tmp_path / "cur")
        assert proc.returncode == 2
