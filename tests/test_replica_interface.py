"""Focused tests for the ConsensusReplica base class and EPaxos attribute logic."""

from __future__ import annotations

import pytest

from repro.baselines.epaxos import EPaxosReplica, InstanceStatus, PreAccept
from repro.consensus.ballots import Ballot
from repro.consensus.interface import DecisionKind
from repro.consensus.quorums import QuorumSystem
from repro.kvstore.store import KeyValueStore
from repro.sim.network import Network
from repro.sim.simulator import Simulator
from repro.sim.topology import uniform_topology
from tests.conftest import build_caesar_cluster, make_command


class TestConsensusReplicaBase:
    def test_submit_on_crashed_replica_is_dropped(self):
        _, _, replicas = build_caesar_cluster()
        replicas[0].crash()
        command = make_command(0, 0, key="x", origin=0)
        replicas[0].submit(command, callback=lambda r: pytest.fail("must not complete"))
        assert command.command_id not in replicas[0].decisions

    def test_decision_recorded_on_submit(self):
        _, _, replicas = build_caesar_cluster()
        command = make_command(0, 0, key="x", origin=0)
        replicas[0].submit(command)
        decision = replicas[0].decisions[command.command_id]
        assert decision.proposer == 0
        assert decision.submitted_at == pytest.approx(0.0, abs=1.0)
        assert decision.kind is None

    def test_record_decided_only_once(self):
        _, _, replicas = build_caesar_cluster()
        command = make_command(0, 0, key="x", origin=0)
        replicas[0].submit(command)
        replicas[0].record_decided(command.command_id, DecisionKind.FAST)
        first_time = replicas[0].decisions[command.command_id].decided_at
        replicas[0].record_decided(command.command_id, DecisionKind.SLOW)
        decision = replicas[0].decisions[command.command_id]
        assert decision.decided_at == first_time
        assert decision.kind is DecisionKind.FAST

    def test_record_phase_time_accumulates(self):
        _, _, replicas = build_caesar_cluster()
        command = make_command(0, 0, key="x", origin=0)
        replicas[0].submit(command)
        replicas[0].record_phase_time(command.command_id, "propose", 10.0)
        replicas[0].record_phase_time(command.command_id, "propose", 5.0)
        assert replicas[0].decisions[command.command_id].phase_times["propose"] == 15.0

    def test_fast_path_ratio_none_without_decisions(self):
        _, _, replicas = build_caesar_cluster()
        assert replicas[0].fast_path_ratio() is None

    def test_fast_path_ratio_after_run(self, caesar_cluster):
        sim, _, replicas = caesar_cluster()
        commands = [make_command(0, k, key=f"k{k}", origin=0) for k in range(4)]
        for command in commands:
            replicas[0].submit(command)
        sim.run_until(lambda: all(replicas[0].has_executed(c.command_id) for c in commands),
                      deadline=30000)
        assert replicas[0].fast_path_ratio() == pytest.approx(1.0)
        assert replicas[0].slow_path_ratio() == pytest.approx(0.0)

    def test_execute_command_twice_rejected(self):
        _, _, replicas = build_caesar_cluster()
        command = make_command(0, 0, key="x", origin=0)
        replicas[0].execute_command(command)
        with pytest.raises(ValueError):
            replicas[0].execute_command(command)


class TestEPaxosAttributes:
    def build_replica(self):
        sim = Simulator(seed=1)
        network = Network(sim, uniform_topology(5, rtt_ms=20.0))
        quorums = QuorumSystem.for_cluster(5)
        return EPaxosReplica(0, sim, network, quorums, KeyValueStore(),
                             recovery_enabled=False), sim

    def test_first_command_has_no_dependencies_and_seq_one(self):
        replica, _ = self.build_replica()
        replica.propose(make_command(0, 0, key="x", origin=0))
        instance = replica.instances[(0, 0)]
        assert instance.deps == set()
        assert instance.seq == 1
        assert instance.status is InstanceStatus.PRE_ACCEPTED

    def test_second_conflicting_command_depends_on_first(self):
        replica, _ = self.build_replica()
        replica.propose(make_command(0, 0, key="x", origin=0))
        replica.propose(make_command(0, 1, key="x", origin=0))
        second = replica.instances[(0, 1)]
        assert (0, 0) in second.deps
        assert second.seq == 2

    def test_non_conflicting_commands_independent(self):
        replica, _ = self.build_replica()
        replica.propose(make_command(0, 0, key="x", origin=0))
        replica.propose(make_command(0, 1, key="y", origin=0))
        second = replica.instances[(0, 1)]
        assert second.deps == set()
        assert second.seq == 1

    def test_pre_accept_reply_reports_changed_attributes(self):
        replica, sim = self.build_replica()
        # The acceptor already knows a conflicting local instance.
        replica.propose(make_command(0, 0, key="x", origin=0))
        sent = []
        replica.send = lambda dst, msg, size_bytes=64: sent.append((dst, msg))
        remote = make_command(1, 0, key="x", origin=1)
        replica._on_pre_accept(1, PreAccept(instance_id=(1, 0), command=remote, seq=1,
                                            deps=frozenset(), ballot=Ballot.initial(1)))
        reply = sent[-1][1]
        assert reply.changed
        assert (0, 0) in set(reply.deps)
        assert reply.seq == 2

    def test_pre_accept_reply_unchanged_when_no_local_conflicts(self):
        replica, _ = self.build_replica()
        sent = []
        replica.send = lambda dst, msg, size_bytes=64: sent.append((dst, msg))
        remote = make_command(1, 0, key="fresh", origin=1)
        replica._on_pre_accept(1, PreAccept(instance_id=(1, 0), command=remote, seq=1,
                                            deps=frozenset(), ballot=Ballot.initial(1)))
        reply = sent[-1][1]
        assert not reply.changed
        assert reply.seq == 1
