"""Unit and property tests for logical timestamps (Section V-A)."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.consensus.timestamps import LogicalTimestamp, TimestampGenerator


class TestOrdering:
    def test_counter_dominates(self):
        assert LogicalTimestamp(1, 4) < LogicalTimestamp(2, 0)

    def test_node_id_breaks_ties(self):
        assert LogicalTimestamp(3, 1) < LogicalTimestamp(3, 2)

    def test_equality(self):
        assert LogicalTimestamp(5, 2) == LogicalTimestamp(5, 2)

    def test_total_ordering_helpers(self):
        low = LogicalTimestamp(1, 1)
        high = LogicalTimestamp(2, 0)
        assert low <= high
        assert high > low
        assert high >= low

    def test_str_shows_counter_and_node(self):
        assert str(LogicalTimestamp(7, 3)) == "<7,3>"

    def test_next_for_lower_node_increments_counter(self):
        ts = LogicalTimestamp(4, 3)
        nxt = ts.next_for(1)
        assert nxt > ts
        assert nxt.node_id == 1

    def test_next_for_higher_node_keeps_counter(self):
        ts = LogicalTimestamp(4, 1)
        nxt = ts.next_for(3)
        assert nxt > ts
        assert nxt.counter == 4


class TestGenerator:
    def test_initial_value_is_zero(self):
        assert TimestampGenerator(2).current == LogicalTimestamp(0, 2)

    def test_next_timestamp_strictly_increases(self):
        gen = TimestampGenerator(1)
        first = gen.next_timestamp()
        second = gen.next_timestamp()
        assert second > first
        assert second.node_id == 1

    def test_observe_advances_past_foreign_timestamp(self):
        gen = TimestampGenerator(0)
        gen.observe(LogicalTimestamp(10, 3))
        assert gen.next_timestamp() > LogicalTimestamp(10, 3)

    def test_observe_smaller_timestamp_is_noop(self):
        gen = TimestampGenerator(4)
        gen.next_timestamp()
        gen.next_timestamp()
        before = gen.current
        gen.observe(LogicalTimestamp(0, 0))
        assert gen.current == before

    def test_suggestion_greater_than(self):
        gen = TimestampGenerator(2)
        suggestion = gen.suggestion_greater_than(LogicalTimestamp(42, 4))
        assert suggestion > LogicalTimestamp(42, 4)
        assert suggestion.node_id == 2


class TestProperties:
    @given(st.integers(0, 1000), st.integers(0, 9), st.integers(0, 1000), st.integers(0, 9))
    def test_order_is_total_and_antisymmetric(self, k1, i1, k2, i2):
        a = LogicalTimestamp(k1, i1)
        b = LogicalTimestamp(k2, i2)
        assert (a < b) or (b < a) or (a == b)
        if a < b:
            assert not b < a

    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 4)), min_size=1, max_size=30))
    def test_generators_never_collide_across_nodes(self, observations):
        """Two generators on different nodes never emit equal timestamps."""
        gen_a = TimestampGenerator(0)
        gen_b = TimestampGenerator(1)
        emitted = set()
        for counter, node in observations:
            foreign = LogicalTimestamp(counter, node)
            gen_a.observe(foreign)
            gen_b.observe(foreign)
            emitted.add(gen_a.next_timestamp())
            emitted.add(gen_b.next_timestamp())
        assert len(emitted) == 2 * len(observations)

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=50))
    def test_generator_monotonic_under_observations(self, counters):
        gen = TimestampGenerator(3)
        previous = gen.current
        for counter in counters:
            gen.observe(LogicalTimestamp(counter, 1))
            fresh = gen.next_timestamp()
            assert fresh > previous
            previous = fresh
