"""Tests for the overload / saturation sweep driver.

Covers the config plumbing, the knee estimate, the in-window goodput
accounting, persistence into the results store, and the headline claim of
the overload-to-SLO study: past the knee, admission control bounds the p99
tail at a small (<10%) goodput cost relative to the unprotected baseline's
peak.
"""

from __future__ import annotations

import argparse

import pytest

from repro.harness.overload import (KNEE_GOODPUT_FRACTION, LoadPoint,
                                    OverloadConfig, OverloadResult,
                                    run_overload_sweep, store_overload_result)
from repro.metrics.store import ResultsStore


def make_point(offered: float, goodput: float, **overrides) -> LoadPoint:
    kwargs = dict(offered_per_second=offered, submitted=int(offered),
                  completed=int(goodput), rejected=0,
                  goodput_per_second=goodput, mean_latency_ms=50.0,
                  p50_latency_ms=40.0, p99_latency_ms=90.0,
                  p999_latency_ms=120.0)
    kwargs.update(overrides)
    return LoadPoint(**kwargs)


class TestConfig:
    def test_from_args_maps_cli_flags(self):
        args = argparse.Namespace(protocol="epaxos", substrate="tcp", seed=9,
                                  clients=5, replicas=4, duration=1500.0,
                                  admission="inflight:8", workers=2,
                                  offered=["100", "400"], conflicts=10.0,
                                  warmup_ms=250.0)
        config = OverloadConfig.from_args(args)
        assert config.protocol == "epaxos"
        assert config.substrate == "tcp"
        assert config.offered_loads == (100.0, 400.0)
        assert config.conflict_rate == pytest.approx(0.10)
        assert config.warmup_ms == 250.0
        assert config.clients == 5
        assert config.clients_per_site == 5
        assert config.replicas == 4
        assert config.admission == "inflight:8"

    def test_from_args_defaults_survive_missing_flags(self):
        config = OverloadConfig.from_args(argparse.Namespace())
        assert config.protocol == "caesar"
        assert config.substrate == "sim"
        assert config.offered_loads == (200.0, 400.0, 800.0, 1600.0)

    def test_unknown_substrate_rejected(self):
        with pytest.raises(ValueError, match="unknown substrate"):
            run_overload_sweep(OverloadConfig(substrate="carrier-pigeon"))


class TestResultShape:
    def test_saturation_flag_and_knee(self):
        result = OverloadResult(config=OverloadConfig(), points=[
            make_point(100.0, 99.0),
            make_point(200.0, 150.0),  # 0.75 of offered: saturated
            make_point(400.0, 160.0),
        ])
        assert not result.points[0].saturated
        assert result.points[1].saturated
        assert result.knee_offered_per_second == 200.0
        assert result.peak_goodput == 160.0
        assert result.point_at(400.0) is result.points[2]
        assert result.point_at(999.0) is None

    def test_knee_is_none_when_never_saturated(self):
        result = OverloadResult(config=OverloadConfig(), points=[
            make_point(100.0, 99.0)])
        assert result.knee_offered_per_second is None
        assert "never saturated" in result.table()

    def test_table_and_summary_metrics(self):
        result = OverloadResult(config=OverloadConfig(admission="deadline:200"),
                                points=[make_point(100.0, 99.0),
                                        make_point(400.0, 300.0, rejected=80)])
        table = result.table()
        assert "deadline:200" in table
        assert "goodput/s" in table
        metrics = result.summary_metrics()
        assert metrics["points"] == 2
        assert metrics["peak_goodput"] == 300.0
        assert metrics["knee_offered_per_second"] == 400.0
        assert metrics["max_offered_per_second"] == 400.0
        assert metrics["rejected"] == 80

    def test_point_as_dict_is_json_shaped(self):
        payload = make_point(100.0, 99.0).as_dict()
        assert payload["offered_per_second"] == 100.0
        assert payload["goodput_per_second"] == 99.0
        assert "p999_latency_ms" in payload


class TestSimSweep:
    def test_quick_point_counts_and_baseline_accounting(self):
        config = OverloadConfig(offered_loads=(150.0,), duration_ms=800.0,
                                warmup_ms=200.0, seed=2)
        result = run_overload_sweep(config)
        (point,) = result.points
        assert point.submitted > 0
        assert 0 < point.completed <= point.submitted
        assert point.goodput_per_second > 0
        assert point.p50_latency_ms <= point.p99_latency_ms <= point.p999_latency_ms
        # The driver installs the counting baseline so even an admission-free
        # sweep reports submitted/rejected.
        assert point.admission["policy"] == "none"
        assert point.rejected == 0

    def test_sweep_is_deterministic(self):
        config = OverloadConfig(offered_loads=(150.0,), duration_ms=800.0,
                                warmup_ms=200.0, seed=2)
        first = run_overload_sweep(config)
        second = run_overload_sweep(config)
        assert [p.as_dict() for p in first.points] == [p.as_dict() for p in second.points]


@pytest.mark.slow
class TestOverloadToSlo:
    """The study's acceptance criterion, pinned as a regression test."""

    def run(self, admission):
        return run_overload_sweep(OverloadConfig(
            offered_loads=(600.0, 1200.0), duration_ms=2000.0, warmup_ms=500.0,
            seed=3, admission=admission))

    def test_admission_bounds_p99_past_the_knee_at_small_goodput_cost(self):
        baseline = self.run(None)
        guarded = self.run("deadline:200")

        # The unprotected sweep saturates: in-window goodput at 1200 offered/s
        # falls below the knee fraction and the tail blows up into seconds.
        assert baseline.knee_offered_per_second == 1200.0
        overloaded = baseline.point_at(1200.0)
        assert overloaded.goodput_per_second < KNEE_GOODPUT_FRACTION * 1200.0
        assert overloaded.p99_latency_ms > 1000.0

        # With queue-deadline shedding the same offered load keeps a bounded
        # tail (an order of magnitude-ish lower) ...
        protected = guarded.point_at(1200.0)
        assert protected.rejected > 0
        assert protected.p99_latency_ms < 500.0
        assert protected.p99_latency_ms < overloaded.p99_latency_ms / 2
        # ... while goodput stays within 10% of the baseline's peak.
        assert protected.goodput_per_second >= 0.9 * baseline.peak_goodput


class TestStorePersistence:
    def test_store_overload_result_roundtrip(self):
        result = OverloadResult(
            config=OverloadConfig(admission="inflight:4", seed=11),
            points=[make_point(100.0, 99.0),
                    make_point(400.0, 310.0, rejected=50,
                               admission={"policy": "inflight:4"})])
        with ResultsStore(":memory:") as store:
            run_id = store_overload_result(store, result, label="knee-study")
            run = store.latest_run(kind="overload")
            assert run.run_id == run_id
            assert run.label == "knee-study"
            assert run.protocol == "caesar"
            assert run.seed == 11
            assert run.config["admission"] == "inflight:4"
            assert run.metrics["knee_offered_per_second"] == 400.0
            points = store.load_points(run_id)
            assert [p.offered_per_second for p in points] == [100.0, 400.0]
            assert points[1].rejected == 50
            assert points[1].extra["admission"] == {"policy": "inflight:4"}
