"""Tests for the transport seam: batching determinism and wire accounting."""

from __future__ import annotations

import pytest

from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.runtime.transport import SimulatorTransport
from repro.sim.batching import BatchingConfig
from repro.sim.network import Network, NetworkConfig
from repro.sim.node import Node
from repro.sim.simulator import Simulator
from repro.sim.topology import uniform_topology


def _delivery_order(result) -> list:
    """Per-replica executed-command sequences — the observable delivery order."""
    return [[command.command_id for command in replica.execution_log]
            for replica in result.cluster.replicas]


class TestBatchingDeterminism:
    """Transport batching must not cost reproducibility or change outcomes."""

    CONFIG = dict(protocol="caesar", conflict_rate=0.2, clients_per_site=3,
                  duration_ms=2000.0, warmup_ms=500.0, seed=21)

    def test_same_seed_same_delivery_order_with_batching(self):
        """Batching on: two same-seed runs deliver byte-identically."""
        batching = BatchingConfig(window_ms=2.0, max_messages=16)
        first = run_experiment(ExperimentConfig(batching=batching, **self.CONFIG))
        second = run_experiment(ExperimentConfig(batching=batching, **self.CONFIG))
        assert _delivery_order(first) == _delivery_order(second)

    def test_same_seed_same_delivery_order_without_batching(self):
        """Batching off: same-seed runs are equally reproducible."""
        first = run_experiment(ExperimentConfig(**self.CONFIG))
        second = run_experiment(ExperimentConfig(**self.CONFIG))
        assert _delivery_order(first) == _delivery_order(second)

    def test_batching_on_off_agree_on_outcome(self):
        """Batching changes timing, never correctness: the same fixed workload
        under the same seed executes the same command set everywhere, with
        zero cross-replica conflicting-order violations, in both modes."""
        from repro.consensus.command import Command
        from repro.harness.cluster import ClusterConfig, build_cluster

        outcomes = {}
        for label, batching in (("off", None),
                                ("on", BatchingConfig(window_ms=2.0, max_messages=16))):
            cluster = build_cluster(ClusterConfig(protocol="caesar", seed=21,
                                                  batching=batching))
            commands = [Command(command_id=(origin, n), key=f"k{n % 3}",
                                operation="put", value=str(n), origin=origin)
                        for origin in range(cluster.size) for n in range(4)]
            for command in commands:
                cluster.replica(command.origin).submit(command)
            done = cluster.run_until_executed([c.command_id for c in commands],
                                              deadline_ms=60000)
            assert done, f"batching {label}: workload did not complete"
            assert cluster.check_consistency() == []
            outcomes[label] = {c.command_id
                               for c in cluster.replicas[0].execution_log}
        assert outcomes["off"] == outcomes["on"]


class _Probe(Node):
    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.seen = []

    def handle_message(self, src: int, message: object) -> None:
        self.seen.append(message)


class TestWireAccounting:
    def build(self, wire_accounting: bool):
        sim = Simulator(seed=3)
        network = Network(sim, uniform_topology(2, rtt_ms=10.0),
                          NetworkConfig(wire_accounting=wire_accounting))
        sender = _Probe(0, sim, network)
        receiver = _Probe(1, sim, network)
        return sim, network, sender, receiver

    def test_codec_bytes_recorded_when_enabled(self):
        from repro.sim.failures import Heartbeat

        sim, network, sender, _ = self.build(wire_accounting=True)
        message = Heartbeat(sender=0, sequence=1)
        sender.send(1, message)
        sim.run()
        from repro.runtime.registry import WIRE
        assert network.stats.codec_bytes_sent == WIRE.wire_size(message)
        assert network.stats.per_type_codec_bytes == {"Heartbeat": WIRE.wire_size(message)}

    def test_accounting_off_by_default(self):
        from repro.sim.failures import Heartbeat

        sim, network, sender, _ = self.build(wire_accounting=False)
        sender.send(1, Heartbeat(sender=0, sequence=1))
        sim.run()
        assert network.stats.codec_bytes_sent == 0
        assert network.stats.per_type_codec_bytes == {}

    def test_batched_wire_bytes_measure_the_envelope(self):
        from repro.sim.failures import Heartbeat

        sim, network, sender, receiver = self.build(wire_accounting=True)
        sender.enable_batching(BatchingConfig(window_ms=5.0, max_messages=10))
        messages = [Heartbeat(sender=0, sequence=n) for n in range(3)]
        for message in messages:
            sender.send(1, message)
        sim.run()
        assert receiver.seen == messages
        from repro.runtime.registry import WIRE
        inner_total = sum(WIRE.wire_size(m) for m in messages)
        # One batch on the wire: envelope bytes exceed the payload sum.
        assert network.stats.codec_bytes_sent > inner_total
        assert set(network.stats.per_type_codec_bytes) == {"MessageBatch"}


class TestTransportSeam:
    def test_node_owns_a_simulator_transport(self):
        sim = Simulator(seed=1)
        network = Network(sim, uniform_topology(2, rtt_ms=10.0))
        node = _Probe(0, sim, network)
        assert isinstance(node.transport, SimulatorTransport)
        assert node.transport.node_ids == [0]

    def test_transport_broadcast_respects_include_self(self):
        sim = Simulator(seed=1)
        network = Network(sim, uniform_topology(3, rtt_ms=10.0))
        nodes = [_Probe(i, sim, network) for i in range(3)]
        nodes[0].transport.broadcast("hello", include_self=False)
        sim.run()
        assert nodes[0].seen == []
        assert nodes[1].seen == ["hello"]
        assert nodes[2].seen == ["hello"]

    def test_quorum_tracker_threshold_semantics(self):
        from repro.runtime.kernel import QuorumTracker

        tracker = QuorumTracker(3, extra_votes=1)
        assert not tracker.vote(1, "a")
        assert tracker.vote(2, "b")
        assert tracker.reached
        assert tracker.payloads() == ["a", "b"]
        assert tracker.voters() == [1, 2]
        # Re-votes replace, never double count.
        tracker2 = QuorumTracker(3)
        tracker2.vote(1, "x")
        assert not tracker2.vote(1, "y")
        assert tracker2.payloads() == ["y"]

    def test_kernel_rejects_unknown_message_types(self):
        from repro.harness.cluster import build_cluster

        cluster = build_cluster()
        with pytest.raises(TypeError):
            cluster.replicas[0].handle_message(1, object())
