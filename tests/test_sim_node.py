"""Unit tests for the simulated node (CPU model, timers, crash semantics)."""

from __future__ import annotations

import pytest

from repro.sim.costs import CostModel
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.simulator import Simulator
from repro.sim.topology import uniform_topology


class EchoNode(Node):
    """Test node that records handled messages and can reply."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.handled = []

    def handle_message(self, src: int, message: object) -> None:
        self.handled.append((src, message, self.sim.now))
        if message == "ping":
            self.send(src, "pong")


def build_pair(cost: float = 0.0):
    sim = Simulator(seed=1)
    network = Network(sim, uniform_topology(2, rtt_ms=10.0))
    cost_model = CostModel(default_cost_ms=cost)
    a = EchoNode(0, sim, network, cost_model)
    b = EchoNode(1, sim, network, cost_model)
    return sim, a, b


class TestMessaging:
    def test_request_reply_round_trip(self):
        sim, a, b = build_pair()
        a.send(1, "ping")
        sim.run()
        assert b.handled[0][1] == "ping"
        assert a.handled[0][1] == "pong"
        assert sim.now == pytest.approx(10.0, abs=0.5)

    def test_broadcast_includes_self_by_default(self):
        sim, a, b = build_pair()
        a.broadcast("hello")
        sim.run()
        assert any(m == "hello" for _, m, _ in a.handled)
        assert any(m == "hello" for _, m, _ in b.handled)

    def test_messages_handled_counter(self):
        sim, a, b = build_pair()
        a.send(1, "one")
        a.send(1, "two")
        sim.run()
        assert b.messages_handled == 2


class TestCpuModel:
    def test_serial_processing_queues_messages(self):
        sim, a, b = build_pair(cost=5.0)
        a.send(1, "first")
        a.send(1, "second")
        sim.run()
        first_time = b.handled[0][2]
        second_time = b.handled[1][2]
        assert second_time - first_time == pytest.approx(5.0)
        assert b.cpu_busy_ms == pytest.approx(10.0)

    def test_consume_cpu_pushes_backlog(self):
        sim, a, _ = build_pair()
        a.consume_cpu(7.0)
        assert a.cpu_backlog_ms == pytest.approx(7.0)
        assert a.cpu_busy_ms == pytest.approx(7.0)

    def test_consume_cpu_ignores_nonpositive(self):
        _, a, _ = build_pair()
        a.consume_cpu(0.0)
        a.consume_cpu(-3.0)
        assert a.cpu_busy_ms == 0.0


class TestTimers:
    def test_timer_fires_after_delay(self):
        sim, a, _ = build_pair()
        fired = []
        a.set_timer(12.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [12.0]

    def test_cancelled_timer_does_not_fire(self):
        sim, a, _ = build_pair()
        fired = []
        timer = a.set_timer(12.0, lambda: fired.append(1))
        timer.cancel()
        sim.run()
        assert fired == []
        assert timer.cancelled


class TestCrashSemantics:
    def test_crashed_node_stops_receiving(self):
        sim, a, b = build_pair()
        b.crash()
        a.send(1, "ping")
        sim.run()
        assert b.handled == []

    def test_crashed_node_stops_sending(self):
        sim, a, b = build_pair()
        a.crash()
        a.send(1, "ping")
        sim.run()
        assert b.handled == []

    def test_crashed_node_timers_suppressed(self):
        sim, a, _ = build_pair()
        fired = []
        a.set_timer(5.0, lambda: fired.append(1))
        a.crash()
        sim.run()
        assert fired == []

    def test_restart_allows_receiving_again(self):
        sim, a, b = build_pair()
        b.crash()
        b.restart()
        a.send(1, "ping")
        sim.run()
        assert [m for _, m, _ in b.handled] == ["ping"]

    def test_crash_hooks_invoked(self):
        events = []

        class HookNode(EchoNode):
            def on_crash(self):
                events.append("crash")

            def on_restart(self):
                events.append("restart")

        sim = Simulator()
        network = Network(sim, uniform_topology(1, rtt_ms=1.0))
        node = HookNode(0, sim, network)
        node.crash()
        node.restart()
        assert events == ["crash", "restart"]


class TestCostModel:
    def test_per_type_override(self):
        model = CostModel(default_cost_ms=1.0, per_type_ms={"str": 4.0})
        assert model.message_cost("a string") == 4.0
        assert model.message_cost(123) == 1.0

    def test_dependency_cost_scales_linearly(self):
        model = CostModel(per_dependency_ms=0.5)
        assert model.dependency_cost(4) == pytest.approx(2.0)
        assert model.dependency_cost(0) == 0.0
        assert model.dependency_cost(-1) == 0.0

    def test_scaled_model(self):
        model = CostModel(default_cost_ms=1.0, per_type_ms={"str": 2.0},
                          per_dependency_ms=0.1, client_request_ms=0.5)
        scaled = model.scaled(2.0)
        assert scaled.default_cost_ms == 2.0
        assert scaled.per_type_ms["str"] == 4.0
        assert scaled.per_dependency_ms == pytest.approx(0.2)
        assert scaled.client_request_ms == 1.0
