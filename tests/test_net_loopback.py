"""Socket-vs-simulator oracle equivalence, and crash recovery over TCP.

These are the acceptance tests of the real deployment mode: the same seeded
workload is replayed through the discrete-event simulator and over real
localhost TCP sockets, and the decided command sets must be identical for
every protocol.  A second test kills a replica mid-run and shows the PR-6
retransmission + catch-up layer recovering over real sockets.
"""

from __future__ import annotations

import pytest

from repro.net.loopback import run_loopback, run_sim_oracle

PROTOCOLS = ["caesar", "epaxos", "multipaxos", "mencius", "m2paxos"]


@pytest.mark.slow
class TestOracleEquivalence:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_tcp_run_decides_the_same_commands_as_the_simulator(self, protocol):
        net = run_loopback(protocol, replicas=3, clients=3, commands_per_client=5,
                           conflict_rate=0.3, seed=1, timeout_s=60.0)
        sim = run_sim_oracle(protocol, replicas=3, clients=3, commands_per_client=5,
                             conflict_rate=0.3, seed=1)

        assert net.completed == net.expected, \
            f"TCP run completed {net.completed}/{net.expected} commands"
        assert sim.completed == sim.expected
        # Same decided command set on every replica, across substrates.
        assert net.executed_sets == sim.executed_sets
        # Generalized-consensus consistency on both substrates.
        assert net.violations == 0
        assert sim.violations == 0

    def test_real_messages_crossed_the_wire(self):
        net = run_loopback("caesar", replicas=3, clients=2, commands_per_client=3,
                           seed=3, timeout_s=60.0)
        assert net.completed == net.expected
        for node_id, stats in net.stats.items():
            assert stats["network"]["messages_sent"] > 0, node_id
            assert stats["network"]["codec_bytes_sent"] > 0, node_id


@pytest.mark.slow
class TestCrashRecoveryOverSockets:
    def test_killing_a_replica_mid_run_does_not_stop_the_cluster(self):
        """Clients fail over; survivors finish the workload consistently.

        Messages lost around the crash are re-sent by the retransmission
        layer, and commands the dead replica was *leading* mid-protocol are
        finalized by CAESAR's recovery protocol (without it the survivors
        can stall behind an undecided command forever) — the socket-world
        equivalent of the crash nemesis.
        """
        run = run_loopback("caesar", replicas=3, clients=3, commands_per_client=8,
                           conflict_rate=0.3, seed=2, timeout_s=90.0,
                           kill_replica=1, kill_after_commands=6, recovery=True)
        assert run.completed == run.expected, \
            f"only {run.completed}/{run.expected} commands after the kill"
        # Only the survivors are compared; both executed everything.
        assert sorted(run.executed) == [0, 2]
        for node_id in (0, 2):
            assert len(run.executed[node_id]) >= run.expected
        assert run.violations == 0
