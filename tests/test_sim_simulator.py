"""Unit tests for the discrete-event simulator."""

from __future__ import annotations

import pytest

from repro.sim.simulator import SimulationError, Simulator


class TestScheduling:
    def test_time_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_schedule_and_run_advances_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(10.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [10.0]
        assert sim.now == 10.0

    def test_schedule_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(25.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [25.0]

    def test_schedule_at_in_the_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        times = []

        def outer():
            times.append(sim.now)
            sim.schedule(5.0, lambda: times.append(sim.now))

        sim.schedule(10.0, outer)
        sim.run()
        assert times == [10.0, 15.0]

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(3.0, lambda: fired.append(1))
        handle.cancel()
        sim.run()
        assert fired == []


class TestRunBounds:
    def test_run_until_time_bound(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append("early"))
        sim.schedule(50.0, lambda: fired.append("late"))
        sim.run(until=10.0)
        assert fired == ["early"]
        assert sim.now == 10.0

    def test_run_resumes_after_bound(self):
        sim = Simulator()
        fired = []
        sim.schedule(50.0, lambda: fired.append("late"))
        sim.run(until=10.0)
        sim.run(until=100.0)
        assert fired == ["late"]

    def test_run_until_predicate(self):
        sim = Simulator()
        counter = []
        for i in range(10):
            sim.schedule(float(i + 1), lambda i=i: counter.append(i))
        satisfied = sim.run_until(lambda: len(counter) >= 3)
        assert satisfied
        assert len(counter) == 3

    def test_run_until_predicate_deadline(self):
        sim = Simulator()
        satisfied = sim.run_until(lambda: False, deadline=100.0)
        assert not satisfied
        assert sim.now <= 100.0

    def test_run_until_predicate_already_true(self):
        sim = Simulator()
        assert sim.run_until(lambda: True)

    def test_max_steps_guard(self):
        sim = Simulator()

        def reschedule():
            sim.schedule(1.0, reschedule)

        sim.schedule(1.0, reschedule)
        sim.set_max_steps(50)
        with pytest.raises(SimulationError):
            sim.run()

    def test_steps_executed_counts(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.steps_executed == 5


class TestDeterminism:
    def test_same_seed_same_rng_sequence(self):
        first = Simulator(seed=7)
        second = Simulator(seed=7)
        assert [first.rng.random() for _ in range(5)] == [second.rng.random() for _ in range(5)]

    def test_forked_streams_are_independent(self):
        sim = Simulator(seed=7)
        fork_a = sim.rng.fork("a")
        fork_b = sim.rng.fork("a")
        assert [fork_a.random() for _ in range(3)] == [fork_b.random() for _ in range(3)]
        assert sim.rng.fork("a").seed != sim.rng.fork("b").seed
