"""Unit tests for ballots and quorum-size arithmetic."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.consensus.ballots import Ballot
from repro.consensus.quorums import (
    QuorumSystem,
    classic_quorum_size,
    epaxos_fast_quorum_size,
    fast_quorum_size,
    max_failures,
)


class TestBallots:
    def test_initial_ballot_round_zero(self):
        assert Ballot.initial(3) == Ballot(0, 3)

    def test_ordering_by_round_then_node(self):
        assert Ballot(0, 4) < Ballot(1, 0)
        assert Ballot(2, 1) < Ballot(2, 3)

    def test_next_for_supersedes(self):
        current = Ballot(1, 4)
        successor = current.next_for(0)
        assert successor > current
        assert successor.node_id == 0

    def test_str_format(self):
        assert str(Ballot(2, 1)) == "b(2,1)"

    @given(st.integers(0, 100), st.integers(0, 9), st.integers(0, 9))
    def test_next_for_always_greater(self, round_, node_a, node_b):
        ballot = Ballot(round_, node_a)
        assert ballot.next_for(node_b) > ballot


class TestQuorumSizes:
    @pytest.mark.parametrize("n,expected", [(3, 2), (4, 3), (5, 3), (6, 4), (7, 4), (9, 5)])
    def test_classic_quorum_is_majority(self, n, expected):
        assert classic_quorum_size(n) == expected

    @pytest.mark.parametrize("n,expected", [(3, 3), (4, 3), (5, 4), (6, 5), (7, 6), (8, 6)])
    def test_fast_quorum_is_three_quarters(self, n, expected):
        assert fast_quorum_size(n) == expected

    @pytest.mark.parametrize("n,expected", [(3, 1), (5, 2), (7, 3), (9, 4)])
    def test_max_failures_minority(self, n, expected):
        assert max_failures(n) == expected

    def test_paper_deployment_sizes(self):
        """For the 5-node evaluation: CQ=3, FQ=4, EPaxos fast quorum=3."""
        quorums = QuorumSystem.for_cluster(5)
        assert quorums.classic == 3
        assert quorums.fast == 4
        assert quorums.f == 2
        assert epaxos_fast_quorum_size(5) == 3

    def test_caesar_needs_one_more_node_than_epaxos_on_five(self):
        assert fast_quorum_size(5) == epaxos_fast_quorum_size(5) + 1

    def test_cluster_too_small_rejected(self):
        with pytest.raises(ValueError):
            QuorumSystem.for_cluster(2)

    def test_quorum_predicates(self):
        quorums = QuorumSystem.for_cluster(5)
        assert quorums.is_classic_quorum(3)
        assert not quorums.is_classic_quorum(2)
        assert quorums.is_fast_quorum(4)
        assert not quorums.is_fast_quorum(3)

    def test_recovery_majority_is_half_classic_plus_one(self):
        assert QuorumSystem.for_cluster(5).recovery_majority == 2
        assert QuorumSystem.for_cluster(7).recovery_majority == 3

    @given(st.integers(3, 101))
    def test_classic_quorums_intersect(self, n):
        assert 2 * classic_quorum_size(n) > n

    @given(st.integers(3, 101))
    def test_fast_quorum_intersection_property(self, n):
        """Two fast quorums and one classic quorum always intersect (Section III).

        |FQ1 ∩ FQ2 ∩ CQ| >= 2*FQ + CQ - 2*N > 0 is the worst-case bound.
        """
        fq = fast_quorum_size(n)
        cq = classic_quorum_size(n)
        assert 2 * fq + cq - 2 * n >= 1

    @given(st.integers(3, 101))
    def test_fast_quorum_classic_overlap_majority(self, n):
        """A fast quorum overlaps any classic quorum in at least floor(CQ/2)+1 nodes."""
        fq = fast_quorum_size(n)
        cq = classic_quorum_size(n)
        worst_overlap = fq + cq - n
        assert worst_overlap >= cq // 2 + 1
