"""The runtime retransmission + catch-up layer.

Three angles:

* **property** — under generated lossy schedules (message loss, crashes with
  restart) every protocol recovers after the heal: retransmission re-drives
  quorum-pending rounds and catch-up fills execution gaps;
* **idempotency** — a fully duplicated message stream (every message sent
  twice) changes nothing: every replica executes every command exactly once
  and records the same decisions as a duplication-free run;
* **byte-neutrality** — on loss-free runs the layer is pure bookkeeping:
  every client-visible metric is identical with the layer enabled and
  disabled, and the retransmission / catch-up counters stay at zero.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chaos.nemesis import DuplicationFault, Nemesis, NemesisPlan, random_plan
from repro.consensus.command import Command
from repro.harness.chaos import ChaosConfig, run_chaos
from repro.harness.cluster import ClusterConfig, build_cluster
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.sim.random import DeterministicRandom

PROTOCOLS = ("caesar", "epaxos", "m2paxos", "mencius", "multipaxos")


class TestLossyScheduleProperty:
    """Any random lossy plan heals into progress, on every protocol."""

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    @settings(max_examples=2, deadline=None, derandomize=True,
              suppress_health_check=list(HealthCheck))
    @given(index=st.integers(min_value=0, max_value=10_000))
    def test_random_lossy_schedule_recovers(self, protocol, index):
        root = DeterministicRandom(1234)
        plan = random_plan(root.fork_cell(("retransmit-property", index)),
                           5, 1000.0, 2000.0, include_lossy=True)
        result = run_chaos(ChaosConfig(protocol=protocol, plan=plan, seed=index + 1))
        assert result.ok, (f"{protocol} did not recover from {plan.describe()}: "
                           f"{result.verdict()} — probes {result.probes_completed}/"
                           f"{result.probes_submitted}")


DUP_EVERYTHING = NemesisPlan("dup-everything", (
    DuplicationFault(at_ms=0.0, until_ms=20000.0, probability=1.0),))


def _run_fixed_workload(protocol, plan=None, seed=5):
    """Submit a fixed command set (two per site, three shared keys) and run
    until every replica executed all of it; returns (cluster, commands, done)."""
    cluster = build_cluster(ClusterConfig(protocol=protocol, seed=seed))
    if plan is not None:
        Nemesis(cluster, plan)
    commands = [Command(command_id=(900 + origin, i), key=f"k{i % 3}",
                        operation="put", value=f"v{origin}.{i}", origin=origin)
                for origin in range(cluster.size) for i in range(2)]
    cluster.start()
    for command in commands:
        cluster.replica(command.origin).submit(command)
    done = cluster.run_until_executed([c.command_id for c in commands],
                                      deadline_ms=30000.0)
    return cluster, commands, done


class TestDuplicateIdempotency:
    """Duplicating every message must not change executions or decisions."""

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_duplicated_stream_executes_each_command_once(self, protocol):
        dup_cluster, commands, dup_done = _run_fixed_workload(protocol,
                                                              plan=DUP_EVERYTHING)
        assert dup_done
        clean_cluster, _, clean_done = _run_fixed_workload(protocol, plan=None)
        assert clean_done
        for dup_replica, clean_replica in zip(dup_cluster.replicas,
                                              clean_cluster.replicas):
            # ExecutionLog raises on double-execution, so reaching here with
            # equal counts means every duplicate was absorbed silently.
            assert dup_replica.commands_executed == len(commands)
            assert dup_replica.commands_executed == clean_replica.commands_executed
            assert (len(list(dup_replica.completed_decisions()))
                    == len(list(clean_replica.completed_decisions())))
        assert dup_cluster.check_consistency() == []


class TestByteNeutrality:
    """On loss-free runs the layer must not change a single client metric."""

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_loss_free_metrics_identical_and_counters_zero(self, protocol):
        base = dict(protocol=protocol, conflict_rate=0.3, clients_per_site=3,
                    duration_ms=2500.0, warmup_ms=500.0, seed=7)
        enabled = run_experiment(ExperimentConfig(retransmit=True, **base))
        disabled = run_experiment(ExperimentConfig(retransmit=False, **base))

        assert enabled.metrics.count == disabled.metrics.count
        assert enabled.throughput_per_second == disabled.throughput_per_second
        assert enabled.fast_decisions == disabled.fast_decisions
        assert enabled.slow_decisions == disabled.slow_decisions
        assert enabled.consistency_violations == 0
        assert set(enabled.per_site_latency) == set(disabled.per_site_latency)
        for site, summary in enabled.per_site_latency.items():
            other = disabled.per_site_latency[site]
            assert summary.mean == other.mean
            assert summary.p95 == other.p95

        # A clean run never resends and never asks for catch-up.
        for replica in enabled.cluster.replicas:
            assert replica.stats.retransmissions_sent == 0
            assert replica.stats.catchup_requests == 0
            assert replica.stats.catchup_replies == 0
