"""Unit tests for the simulated network."""

from __future__ import annotations

import pytest

from repro.sim.network import Network, NetworkConfig
from repro.sim.simulator import Simulator
from repro.sim.topology import uniform_topology


class RecordingNode:
    """Minimal node double that records everything it receives."""

    def __init__(self, node_id: int, crashed: bool = False) -> None:
        self.node_id = node_id
        self.crashed = crashed
        self.last_crashed_at = -1.0
        self.received = []

    def receive(self, src: int, message: object) -> None:
        self.received.append((src, message))


def build_network(n: int = 3, rtt: float = 20.0, **config_kwargs):
    sim = Simulator(seed=5)
    network = Network(sim, uniform_topology(n, rtt_ms=rtt), NetworkConfig(**config_kwargs))
    nodes = [RecordingNode(i) for i in range(n)]
    for node in nodes:
        network.register(node)
    return sim, network, nodes


class TestDelivery:
    def test_message_delivered_after_one_way_delay(self):
        sim, network, nodes = build_network(rtt=20.0)
        network.send(0, 1, "hello")
        sim.run()
        assert nodes[1].received == [(0, "hello")]
        assert sim.now == pytest.approx(10.0)

    def test_self_message_uses_local_delay(self):
        sim, network, nodes = build_network()
        network.send(2, 2, "loopback")
        sim.run()
        assert nodes[2].received == [(2, "loopback")]
        assert sim.now < 1.0

    def test_broadcast_reaches_everyone(self):
        sim, network, nodes = build_network()
        network.broadcast(0, "announce")
        sim.run()
        for node in nodes:
            assert node.received == [(0, "announce")]

    def test_broadcast_can_exclude_sender(self):
        sim, network, nodes = build_network()
        network.broadcast(0, "announce", include_self=False)
        sim.run()
        assert nodes[0].received == []
        assert nodes[1].received == [(0, "announce")]

    def test_duplicate_registration_rejected(self):
        _, network, nodes = build_network()
        with pytest.raises(ValueError):
            network.register(nodes[0])

    def test_stats_count_messages(self):
        sim, network, _ = build_network()
        network.broadcast(0, "m")
        sim.run()
        assert network.stats.messages_sent == 3
        assert network.stats.messages_delivered == 3
        assert network.stats.per_type_sent["str"] == 3

    def test_crashed_destination_drops_message(self):
        sim, network, nodes = build_network()
        nodes[1].crashed = True
        network.send(0, 1, "to-dead-node")
        sim.run()
        assert nodes[1].received == []
        assert network.stats.messages_to_crashed == 1


class TestImpairments:
    def test_partition_blocks_both_directions(self):
        sim, network, nodes = build_network()
        network.partition({0}, {1})
        network.send(0, 1, "a")
        network.send(1, 0, "b")
        sim.run()
        assert nodes[0].received == []
        assert nodes[1].received == []
        assert network.stats.messages_partitioned == 2

    def test_partition_leaves_other_pairs_alone(self):
        sim, network, nodes = build_network()
        network.partition({0}, {1})
        network.send(0, 2, "ok")
        sim.run()
        assert nodes[2].received == [(0, "ok")]

    def test_heal_partitions_restores_connectivity(self):
        sim, network, nodes = build_network()
        network.partition({0}, {1})
        network.heal_partitions()
        network.send(0, 1, "after-heal")
        sim.run()
        assert nodes[1].received == [(0, "after-heal")]

    def test_message_loss(self):
        sim, network, nodes = build_network(drop_probability=1.0)
        network.send(0, 1, "lost")
        sim.run()
        assert nodes[1].received == []
        assert network.stats.messages_dropped == 1

    def test_jitter_changes_delay_but_not_order_stats(self):
        sim, network, nodes = build_network(rtt=20.0, jitter_ms=2.0)
        network.send(0, 1, "jittered")
        sim.run()
        assert len(nodes[1].received) == 1
        assert sim.now != pytest.approx(10.0) or True  # delay sampled, just ensure delivery

    def test_delay_override_hook(self):
        sim, network, nodes = build_network(rtt=20.0)
        network.set_delay_override(lambda src, dst, nominal: 1.0)
        network.send(0, 1, "fast")
        sim.run()
        assert sim.now == pytest.approx(1.0)

    def test_delay_never_below_floor(self):
        sim, network, _ = build_network(rtt=20.0)
        network.set_delay_override(lambda src, dst, nominal: -5.0)
        assert network.delay(0, 1) >= network.config.min_delay_ms
