"""Unit tests for the workload generators and simulated clients."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.consensus.quorums import QuorumSystem
from repro.core.caesar import CaesarReplica
from repro.core.config import CaesarConfig
from repro.kvstore.store import KeyValueStore
from repro.metrics.collector import MetricsCollector
from repro.sim.network import Network
from repro.sim.random import DeterministicRandom
from repro.sim.simulator import Simulator
from repro.sim.topology import uniform_topology
from repro.workload.clients import ClientPool, ClosedLoopClient, OpenLoopClient
from repro.workload.generator import (
    ConflictWorkload,
    WorkloadConfig,
    ZipfWorkload,
    ZipfWorkloadConfig,
    build_workload,
)


class TestWorkloadConfig:
    def test_invalid_conflict_rate_rejected(self):
        with pytest.raises(ValueError):
            WorkloadConfig(conflict_rate=1.5)
        with pytest.raises(ValueError):
            WorkloadConfig(conflict_rate=-0.1)

    def test_empty_pools_rejected(self):
        with pytest.raises(ValueError):
            WorkloadConfig(shared_pool_size=0)
        with pytest.raises(ValueError):
            WorkloadConfig(private_pool_size=0)


class TestConflictWorkload:
    def make(self, conflict_rate: float, client_id: int = 0, seed: int = 1):
        return ConflictWorkload(client_id=client_id, origin=0,
                                config=WorkloadConfig(conflict_rate=conflict_rate),
                                rng=DeterministicRandom(seed))

    def test_zero_conflict_rate_never_uses_shared_pool(self):
        workload = self.make(0.0)
        keys = {workload.next_command().key for _ in range(200)}
        assert all(key.startswith("private-0-") for key in keys)
        assert workload.observed_conflict_rate == 0.0

    def test_full_conflict_rate_always_uses_shared_pool(self):
        workload = self.make(1.0)
        keys = {workload.next_command().key for _ in range(200)}
        assert all(key.startswith("shared-") for key in keys)
        assert workload.observed_conflict_rate == 1.0

    def test_intermediate_rate_close_to_target(self):
        workload = self.make(0.3)
        for _ in range(2000):
            workload.next_command()
        assert workload.observed_conflict_rate == pytest.approx(0.3, abs=0.05)

    def test_command_ids_unique_and_sequential(self):
        workload = self.make(0.5, client_id=7)
        ids = [workload.next_command().command_id for _ in range(10)]
        assert ids == [(7, i) for i in range(10)]

    def test_private_pools_disjoint_across_clients(self):
        first = self.make(0.0, client_id=1)
        second = self.make(0.0, client_id=2)
        keys_first = {first.next_command().key for _ in range(100)}
        keys_second = {second.next_command().key for _ in range(100)}
        assert keys_first.isdisjoint(keys_second)

    def test_same_seed_same_commands(self):
        first = self.make(0.4, seed=9)
        second = self.make(0.4, seed=9)
        assert [first.next_command() for _ in range(20)] == \
               [second.next_command() for _ in range(20)]

    def test_write_fraction_zero_generates_reads(self):
        workload = ConflictWorkload(client_id=0, origin=0,
                                    config=WorkloadConfig(write_fraction=0.0),
                                    rng=DeterministicRandom(1))
        assert all(workload.next_command().operation == "get" for _ in range(20))

    @given(st.floats(min_value=0.0, max_value=1.0), st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_generated_keys_always_from_known_pools(self, rate, seed):
        workload = ConflictWorkload(client_id=3, origin=0,
                                    config=WorkloadConfig(conflict_rate=rate),
                                    rng=DeterministicRandom(seed))
        for _ in range(50):
            command = workload.next_command()
            assert command.key.startswith("shared-") or command.key.startswith("private-3-")


def build_single_replica():
    """One-node CAESAR 'cluster' used to exercise clients cheaply."""
    sim = Simulator(seed=2)
    network = Network(sim, uniform_topology(3, rtt_ms=10.0))
    quorums = QuorumSystem.for_cluster(3)
    config = CaesarConfig(recovery_enabled=False)
    replicas = [CaesarReplica(i, sim, network, quorums, KeyValueStore(), config=config)
                for i in range(3)]
    return sim, replicas


class TestClosedLoopClient:
    def test_keeps_one_outstanding_command(self):
        sim, replicas = build_single_replica()
        metrics = MetricsCollector()
        workload = ConflictWorkload(0, 0, WorkloadConfig(), DeterministicRandom(1))
        client = ClosedLoopClient(0, replicas[0], workload, sim, metrics)
        client.start()
        sim.run(until=500.0)
        client.stop()
        sim.run(until=600.0)
        assert client.completed > 1
        # Closed loop: generated commands never exceed completed + 1 outstanding.
        assert workload.generated <= client.completed + 1

    def test_latency_samples_recorded(self):
        sim, replicas = build_single_replica()
        metrics = MetricsCollector()
        workload = ConflictWorkload(0, 1, WorkloadConfig(), DeterministicRandom(1))
        client = ClosedLoopClient(0, replicas[1], workload, sim, metrics)
        client.start()
        sim.run(until=300.0)
        client.stop()
        sim.run(until=400.0)
        assert metrics.count == client.completed
        assert all(sample.latency_ms > 0 for sample in metrics.samples)
        assert all(sample.origin == 1 for sample in metrics.samples)

    def test_think_time_slows_submission(self):
        sim, replicas = build_single_replica()
        metrics = MetricsCollector()
        fast_workload = ConflictWorkload(0, 0, WorkloadConfig(), DeterministicRandom(1))
        slow_workload = ConflictWorkload(1, 0, WorkloadConfig(), DeterministicRandom(1))
        fast_client = ClosedLoopClient(0, replicas[0], fast_workload, sim, metrics)
        slow_client = ClosedLoopClient(1, replicas[0], slow_workload, sim, metrics,
                                       think_time_ms=50.0)
        fast_client.start()
        slow_client.start()
        sim.run(until=1000.0)
        assert fast_client.completed > slow_client.completed

    def test_reconnects_to_fallback_after_crash(self):
        sim, replicas = build_single_replica()
        metrics = MetricsCollector()
        workload = ConflictWorkload(0, 0, WorkloadConfig(), DeterministicRandom(1))
        client = ClosedLoopClient(0, replicas[0], workload, sim, metrics,
                                  reconnect_timeout_ms=100.0,
                                  fallback_replicas=[replicas[1], replicas[2]])
        client.start()
        sim.run(until=200.0)
        replicas[0].crash()
        sim.run(until=2000.0)
        assert client.timeouts >= 1
        assert client.replica is replicas[1]
        assert client.completed > 0


class TestOpenLoopClient:
    def test_injects_at_configured_rate(self):
        sim, replicas = build_single_replica()
        metrics = MetricsCollector()
        workload = ConflictWorkload(0, 0, WorkloadConfig(), DeterministicRandom(1))
        client = OpenLoopClient(0, replicas[0], workload, sim, metrics,
                                rate_per_second=100.0, rng=DeterministicRandom(5))
        client.start()
        sim.run(until=2000.0)
        client.stop()
        # 100/s over 2 virtual seconds ~ 200 commands (Poisson, generous bounds).
        assert 120 <= client.submitted <= 300

    def test_stop_after_ms_bounds_injection(self):
        sim, replicas = build_single_replica()
        metrics = MetricsCollector()
        workload = ConflictWorkload(0, 0, WorkloadConfig(), DeterministicRandom(1))
        client = OpenLoopClient(0, replicas[0], workload, sim, metrics,
                                rate_per_second=100.0, rng=DeterministicRandom(5),
                                stop_after_ms=500.0)
        client.start()
        sim.run(until=3000.0)
        assert client.submitted <= 80

    def test_completions_tracked(self):
        sim, replicas = build_single_replica()
        metrics = MetricsCollector()
        workload = ConflictWorkload(0, 0, WorkloadConfig(), DeterministicRandom(1))
        client = OpenLoopClient(0, replicas[0], workload, sim, metrics,
                                rate_per_second=50.0, rng=DeterministicRandom(5))
        client.start()
        sim.run(until=1000.0)
        client.stop()
        sim.run(until=1500.0)
        assert client.completed > 0
        assert client.completed <= client.submitted

    def test_fails_over_when_target_replica_crashes(self):
        # Regression: open-loop clients used to keep injecting into a dead
        # replica forever, silently zeroing throughput for the rest of the
        # run instead of reconnecting like the closed-loop clients do.
        sim, replicas = build_single_replica()
        metrics = MetricsCollector()
        workload = ConflictWorkload(0, 0, WorkloadConfig(), DeterministicRandom(1))
        client = OpenLoopClient(0, replicas[0], workload, sim, metrics,
                                rate_per_second=100.0, rng=DeterministicRandom(5),
                                fallback_replicas=[replicas[1], replicas[2]])
        client.start()
        sim.run(until=300.0)
        replicas[0].crash()
        completed_before_crash = client.completed
        sim.run(until=1500.0)
        client.stop()
        sim.run(until=2000.0)
        assert client.replica is replicas[1]
        assert client.retargets == 1
        assert client.completed > completed_before_crash

    def test_origin_rewritten_after_retarget(self):
        # Regression: after a failover the workload kept stamping commands
        # with the dead replica's id, so per-origin latency was attributed to
        # a node that never proposed them.
        sim, replicas = build_single_replica()
        metrics = MetricsCollector()
        workload = ConflictWorkload(0, 0, WorkloadConfig(), DeterministicRandom(1))
        client = OpenLoopClient(0, replicas[0], workload, sim, metrics,
                                rate_per_second=100.0, rng=DeterministicRandom(5),
                                fallback_replicas=[replicas[1], replicas[2]])
        client.start()
        sim.run(until=300.0)
        replicas[0].crash()
        sim.run(until=1500.0)
        client.stop()
        sim.run(until=2000.0)
        # Anything completing well after the crash was proposed by the
        # fallback, and both the sample's origin and proposer must say so.
        late = [sample for sample in metrics.samples if sample.completed_at > 500.0]
        assert late
        assert all(sample.origin == 1 for sample in late)
        assert all(sample.proposer == 1 for sample in late)


class TestClientPool:
    def test_start_stop_all_and_totals(self):
        sim, replicas = build_single_replica()
        metrics = MetricsCollector()
        pool = ClientPool()
        for i in range(3):
            workload = ConflictWorkload(i, 0, WorkloadConfig(), DeterministicRandom(i))
            pool.add(ClosedLoopClient(i, replicas[0], workload, sim, metrics))
        pool.start_all()
        sim.run(until=300.0)
        pool.stop_all()
        sim.run(until=400.0)
        assert pool.total_completed == sum(c.completed for c in pool.clients)
        assert pool.total_completed > 0


class TestZipfWorkload:
    def _workload(self, s: float, seed: int = 5, **config) -> ZipfWorkload:
        defaults = dict(key_space=100, hot_keys=10)
        defaults.update(config)
        return ZipfWorkload(client_id=0, origin=0,
                            config=ZipfWorkloadConfig(s=s, **defaults),
                            rng=DeterministicRandom(seed))

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            ZipfWorkloadConfig(s=-0.1)
        with pytest.raises(ValueError):
            ZipfWorkloadConfig(key_space=0)
        with pytest.raises(ValueError):
            ZipfWorkloadConfig(key_space=10, hot_keys=11)

    def test_keys_stay_within_key_space(self):
        workload = self._workload(s=1.2, key_space=30)
        for _ in range(200):
            command = workload.next_command()
            assert command.key.startswith("zipf-")
            assert 0 <= int(command.key.split("-")[1]) < 30

    def test_same_seed_same_stream(self):
        first = [self._workload(s=0.9).next_command() for _ in range(1)]
        a = self._workload(s=0.9, seed=11)
        b = self._workload(s=0.9, seed=11)
        assert ([a.next_command() for _ in range(50)]
                == [b.next_command() for _ in range(50)])
        assert first  # silence "unused" while keeping the smoke draw

    def test_skew_concentrates_traffic_on_hot_keys(self):
        flat = self._workload(s=0.0)
        skewed = self._workload(s=1.5)
        for _ in range(400):
            flat.next_command()
            skewed.next_command()
        # s=0 is uniform: ~10% of draws hit the 10-of-100 hot pool; s=1.5
        # concentrates most of the mass there.
        assert skewed.observed_hot_rate > flat.observed_hot_rate + 0.3
        assert flat.observed_hot_rate < 0.3

    def test_command_ids_are_sequential(self):
        workload = self._workload(s=1.0)
        ids = [workload.next_command().command_id for _ in range(5)]
        assert ids == [(0, seq) for seq in range(5)]


class TestBuildWorkload:
    def test_dispatches_on_config_type(self):
        rng = DeterministicRandom(1)
        assert isinstance(build_workload(0, 0, WorkloadConfig(), rng), ConflictWorkload)
        assert isinstance(build_workload(0, 0, ZipfWorkloadConfig(), rng), ZipfWorkload)

    def test_rejects_unknown_config(self):
        with pytest.raises(TypeError):
            build_workload(0, 0, object(), DeterministicRandom(1))
