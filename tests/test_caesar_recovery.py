"""Failure-injection tests for CAESAR's recovery phase (Section V-E)."""

from __future__ import annotations

from repro.consensus.interface import DecisionKind
from repro.core.history import CommandStatus
from tests.conftest import build_caesar_cluster, make_command


def run_until_executed_on_live(sim, replicas, command_ids, deadline_ms=60000):
    """Run until every live replica has executed every given command."""
    return sim.run_until(
        lambda: all(r.has_executed(cid)
                    for r in replicas if not r.crashed for cid in command_ids),
        deadline=deadline_ms)


class TestLeaderCrashRecovery:
    def test_command_recovered_after_leader_crash_post_propose(self):
        """The leader crashes right after broadcasting FASTPROPOSE; a peer finishes it."""
        sim, network, replicas = build_caesar_cluster(recovery=True, seed=3)
        command = make_command(0, 0, key="x", origin=0)
        replicas[0].submit(command)
        # Let the FASTPROPOSE reach the other nodes, then crash the leader
        # before it can send STABLE (well under one round trip to the quorum).
        sim.run(until=sim.now + 40.0)
        replicas[0].crash()
        assert run_until_executed_on_live(sim, replicas, [command.command_id])
        recoveries = sum(r.stats.recoveries_started for r in replicas if not r.crashed)
        assert recoveries >= 1
        for replica in replicas[1:]:
            assert replica.has_executed(command.command_id)

    def test_command_recovered_when_leader_crashes_before_any_propose_is_lost(self):
        """Crash after STABLE was sent: peers just deliver normally, no recovery needed."""
        sim, network, replicas = build_caesar_cluster(recovery=True, seed=4)
        command = make_command(0, 0, key="x", origin=0)
        replicas[0].submit(command)
        # Run past the full fast decision (fast quorum RTT is 90 ms from Virginia).
        sim.run(until=sim.now + 400.0)
        replicas[0].crash()
        assert run_until_executed_on_live(sim, replicas, [command.command_id])

    def test_recovery_preserves_conflicting_order(self):
        """Commands decided before/after a crash never violate consistency."""
        sim, network, replicas = build_caesar_cluster(recovery=True, seed=5)
        early = [(i, make_command(i, 0, key="hot", origin=i)) for i in range(5)]
        for origin, command in early:
            replicas[origin].submit(command)
        sim.run(until=sim.now + 60.0)
        replicas[0].crash()
        late = [(i, make_command(i, 1, key="hot", origin=i)) for i in range(1, 5)]
        for origin, command in late:
            replicas[origin].submit(command)
        all_ids = [c.command_id for _, c in early + late]
        assert run_until_executed_on_live(sim, replicas, all_ids, deadline_ms=120000)
        live = [r for r in replicas if not r.crashed]
        for i, first in enumerate(live):
            for second in live[i + 1:]:
                assert first.execution_log.conflicting_order_violations(
                    second.execution_log) == []

    def test_multiple_pending_commands_recovered(self):
        sim, network, replicas = build_caesar_cluster(recovery=True, seed=6)
        commands = [make_command(0, k, key=f"k{k}", origin=0) for k in range(5)]
        for command in commands:
            replicas[0].submit(command)
        sim.run(until=sim.now + 50.0)
        replicas[0].crash()
        ids = [c.command_id for c in commands]
        assert run_until_executed_on_live(sim, replicas, ids, deadline_ms=120000)

    def test_crash_of_non_leader_does_not_block_decisions(self):
        sim, network, replicas = build_caesar_cluster(recovery=True, seed=7)
        replicas[4].crash()
        commands = [make_command(0, k, key="x", origin=0) for k in range(3)]
        for command in commands:
            replicas[0].submit(command)
        ids = [c.command_id for c in commands]
        assert run_until_executed_on_live(sim, replicas, ids, deadline_ms=60000)

    def test_two_crashes_still_make_progress_with_classic_quorum(self):
        """With f=2 failures the fast quorum is unavailable but CQ=3 still decides."""
        sim, network, replicas = build_caesar_cluster(recovery=True, seed=8,
                                                      fast_timeout_ms=300.0)
        replicas[3].crash()
        replicas[4].crash()
        command = make_command(0, 0, key="x", origin=0)
        replicas[0].submit(command)
        assert run_until_executed_on_live(sim, replicas, [command.command_id],
                                          deadline_ms=60000)
        decision = replicas[0].decisions[command.command_id]
        # The decision had to go through the slow proposal phase (no fast quorum).
        assert decision.kind is not DecisionKind.FAST
        assert replicas[0].stats.slow_proposals >= 1


class TestRecoveryMessageHandling:
    def test_recovery_reply_carries_local_state(self):
        sim, network, replicas = build_caesar_cluster(recovery=True, seed=9)
        command = make_command(0, 0, key="x", origin=0)
        replicas[0].submit(command)
        sim.run(until=sim.now + 70.0)  # FASTPROPOSE received at the EU/US sites
        entry = replicas[2].history.get(command.command_id)
        assert entry is not None
        assert entry.status is CommandStatus.FAST_PENDING

    def test_acceptor_ignores_lower_ballot_recovery(self):
        from repro.consensus.ballots import Ballot
        from repro.core.messages import Recovery

        sim, network, replicas = build_caesar_cluster(recovery=True, seed=10)
        command = make_command(0, 0, key="x", origin=0)
        replicas[0].submit(command)
        sim.run(until=sim.now + 400.0)
        # Replica 1 already processed ballot (0, 0); an equal-ballot recovery is ignored.
        before = replicas[1].ballots[command.command_id]
        replicas[1].recovery.on_recovery_message(2, Recovery(command=command,
                                                             ballot=Ballot(0, 0)))
        assert replicas[1].ballots[command.command_id] == before

    def test_suspected_node_recovery_is_staggered(self):
        sim, network, replicas = build_caesar_cluster(recovery=True, seed=11)
        delays = [replicas[i].recovery._stagger_delay() for i in range(1, 5)]
        assert delays == sorted(delays)
        assert len(set(delays)) == len(delays)
