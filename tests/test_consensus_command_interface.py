"""Unit tests for commands, the conflict relation, and the replica interface."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.consensus.command import Command, commands_conflict
from repro.consensus.interface import Decision, DecisionKind, ExecutionLog
from tests.conftest import make_command


class TestConflictRelation:
    def test_same_key_writes_conflict(self):
        assert make_command(0, 0, key="x").conflicts_with(make_command(1, 0, key="x"))

    def test_different_keys_commute(self):
        assert not make_command(0, 0, key="x").conflicts_with(make_command(1, 0, key="y"))

    def test_reads_of_same_key_commute(self):
        a = make_command(0, 0, key="x", operation="get")
        b = make_command(1, 0, key="x", operation="get")
        assert not a.conflicts_with(b)

    def test_read_write_same_key_conflicts(self):
        a = make_command(0, 0, key="x", operation="get")
        b = make_command(1, 0, key="x", operation="put")
        assert a.conflicts_with(b)
        assert b.conflicts_with(a)

    def test_module_level_helper_matches_method(self):
        a = make_command(0, 0, key="x")
        b = make_command(1, 0, key="x")
        assert commands_conflict(a, b) == a.conflicts_with(b)

    def test_is_write(self):
        assert make_command(0, 0).is_write
        assert not make_command(0, 0, operation="get").is_write

    def test_str_mentions_key_and_id(self):
        text = str(make_command(3, 7, key="alpha"))
        assert "alpha" in text and "3.7" in text

    @given(st.text(min_size=1, max_size=5), st.text(min_size=1, max_size=5))
    def test_conflict_relation_is_symmetric(self, key_a, key_b):
        a = Command(command_id=(0, 0), key=key_a, operation="put", value="1")
        b = Command(command_id=(1, 0), key=key_b, operation="put", value="2")
        assert a.conflicts_with(b) == b.conflicts_with(a)


class TestDecision:
    def test_latency_none_until_executed(self):
        decision = Decision(command_id=(0, 0), proposer=1, submitted_at=10.0)
        assert decision.latency_ms is None
        assert not decision.is_complete

    def test_latency_computed_from_execution(self):
        decision = Decision(command_id=(0, 0), proposer=1, submitted_at=10.0,
                            executed_at=95.0, kind=DecisionKind.FAST)
        assert decision.latency_ms == pytest.approx(85.0)
        assert decision.is_complete


class TestExecutionLog:
    def test_append_and_position(self):
        log = ExecutionLog()
        first = make_command(0, 0, key="a")
        second = make_command(0, 1, key="b")
        log.append(first)
        log.append(second)
        assert log.position(first.command_id) == 0
        assert log.position(second.command_id) == 1
        assert len(log) == 2
        assert log.contains(first.command_id)

    def test_double_execution_rejected(self):
        log = ExecutionLog()
        command = make_command(0, 0)
        log.append(command)
        with pytest.raises(ValueError):
            log.append(command)

    def test_no_violation_when_orders_agree(self):
        log_a, log_b = ExecutionLog(), ExecutionLog()
        first = make_command(0, 0, key="x")
        second = make_command(1, 0, key="x")
        for log in (log_a, log_b):
            log.append(first)
            log.append(second)
        assert log_a.conflicting_order_violations(log_b) == []

    def test_violation_detected_for_conflicting_reorder(self):
        log_a, log_b = ExecutionLog(), ExecutionLog()
        first = make_command(0, 0, key="x")
        second = make_command(1, 0, key="x")
        log_a.append(first)
        log_a.append(second)
        log_b.append(second)
        log_b.append(first)
        assert log_a.conflicting_order_violations(log_b) == [
            (first.command_id, second.command_id)]

    def test_commuting_reorder_is_allowed(self):
        log_a, log_b = ExecutionLog(), ExecutionLog()
        first = make_command(0, 0, key="x")
        second = make_command(1, 0, key="y")
        log_a.append(first)
        log_a.append(second)
        log_b.append(second)
        log_b.append(first)
        assert log_a.conflicting_order_violations(log_b) == []

    def test_commands_copy_is_isolated(self):
        log = ExecutionLog()
        log.append(make_command(0, 0))
        commands = log.commands
        commands.clear()
        assert len(log) == 1
