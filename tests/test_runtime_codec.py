"""Property tests for the runtime message registry and codec.

Two invariants hold for *every* registered wire-message type (the strategies
are derived from the registered field codecs, so newly registered messages
are covered automatically):

* encode -> decode is the identity;
* the encoding is canonical — re-encoding the same value yields the same
  bytes, so codec-measured wire sizes are stable.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

import repro.harness.protocols  # noqa: F401  (registers every protocol's messages)
from repro.runtime.codec import (
    BoolCodec,
    FrozenSetCodec,
    OptionalCodec,
    SeqCodec,
    SintCodec,
    StrCodec,
    StructCodec,
    TupleCodec,
    UintCodec,
)
from repro.runtime.registry import WIRE, MessageCodec
from repro.sim.batching import MessageBatch
from repro.sim.failures import Heartbeat

#: Keys/operations stay printable but include unicode to exercise UTF-8 paths.
_TEXT = st.text(max_size=24)

#: Inner-message strategy for batch-typed fields (must itself be registered).
_INNER_MESSAGE = st.builds(Heartbeat,
                           sender=st.integers(0, 100), sequence=st.integers(0, 2**20))


def strategy_for(codec) -> st.SearchStrategy:
    """Build a Hypothesis strategy producing values the codec accepts."""
    if isinstance(codec, UintCodec):
        return st.integers(0, 2**48)
    if isinstance(codec, SintCodec):
        return st.integers(-2**48, 2**48)
    if isinstance(codec, BoolCodec):
        return st.booleans()
    if isinstance(codec, StrCodec):
        return _TEXT
    if isinstance(codec, OptionalCodec):
        return st.none() | strategy_for(codec.inner)
    if isinstance(codec, TupleCodec):
        return st.tuples(*(strategy_for(element) for element in codec.elements))
    if isinstance(codec, SeqCodec):
        return st.lists(strategy_for(codec.element), max_size=4).map(tuple)
    if isinstance(codec, FrozenSetCodec):
        return st.frozensets(strategy_for(codec.element), max_size=4)
    if isinstance(codec, StructCodec):
        return st.builds(codec.factory,
                         **{name: strategy_for(field) for name, field in codec.fields})
    if isinstance(codec, MessageCodec):
        return _INNER_MESSAGE
    raise NotImplementedError(f"no strategy for codec {type(codec).__name__}")


def message_strategy(cls) -> st.SearchStrategy:
    """Strategy over fully populated instances of a registered message type."""
    return st.builds(cls, **{name: strategy_for(codec)
                             for name, codec in WIRE.field_codecs(cls).items()})


@pytest.mark.parametrize("cls", WIRE.types(), ids=lambda cls: cls.__name__)
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_encode_decode_roundtrip_and_stable_size(cls, data):
    message = data.draw(message_strategy(cls))
    encoded = WIRE.encode(message)
    assert WIRE.decode_one(encoded) == message
    # Canonical: the same value always produces the same bytes (and size).
    assert WIRE.encode(message) == encoded
    assert WIRE.wire_size(message) == len(encoded)


def test_every_protocol_message_universe_is_registered():
    """The registry covers all five protocols plus the substrate envelopes."""
    names = {cls.__name__ for cls in WIRE.types()}
    expected = {
        # substrate
        "MessageBatch", "Heartbeat",
        # caesar
        "FastPropose", "FastProposeReply", "SlowPropose", "SlowProposeReply",
        "Retry", "RetryReply", "Stable", "Recovery", "RecoveryReply",
        # epaxos
        "PreAccept", "PreAcceptReply", "Accept", "AcceptReply", "Commit",
        "Prepare", "PrepareReply",
        # multipaxos
        "ClientForward", "AcceptSlot", "AcceptSlotReply", "CommitSlot",
        "LeaderPrepare", "LeaderPrepareReply",
        # mencius
        "SlotPropose", "SlotAck", "SlotCommit", "SkipAnnounce",
        # m2paxos
        "AcquireOwnership", "AcquireReply", "ForwardCommand", "AcceptCommand",
        "AcceptCommandReply", "AcceptNack", "DecideCommand",
    }
    assert expected <= names


def test_batch_encoding_nests_registered_messages():
    batch = MessageBatch(messages=(Heartbeat(sender=1, sequence=2),
                                   Heartbeat(sender=3, sequence=4)))
    encoded = WIRE.encode(batch)
    decoded = WIRE.decode_one(encoded)
    assert decoded == batch
    # The envelope costs bytes beyond its payload.
    inner_total = sum(WIRE.wire_size(inner) for inner in batch.messages)
    assert WIRE.wire_size(batch) > inner_total


def test_unregistered_type_is_rejected():
    class NotWire:
        pass

    with pytest.raises(KeyError):
        WIRE.encode(NotWire())
