"""Tests for the sharded keyspace layer (harness/shard.py).

The load-bearing guarantees: routing is process-stable and total (every key
lands on exactly one shard), shard-parallel runs are byte-identical to serial
ones, and a sharded run under zipfian skew on a WAN-scale topology decides
every submitted command with zero conflict-order violations per shard.
"""

from __future__ import annotations

import json
import zlib

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.harness.cluster import ClusterConfig, build_cluster
from repro.harness.experiment import per_site_latency_summaries
from repro.harness.shard import (
    CrossShardCoordinator,
    ScriptedWorkload,
    ShardedConfig,
    ShardRouter,
    generate_streams,
    route_streams,
    run_sharded,
)
from repro.metrics.collector import MetricsCollector
from repro.sim.topology import Topology, uniform_topology, with_replicas_per_site
from repro.workload.generator import WorkloadConfig, ZipfWorkloadConfig


class TestShardRouter:
    def test_routing_is_crc32_stable_across_processes(self):
        # Pinned expectations: CRC32 is process- and version-stable, so these
        # keys must route identically in every interpreter, forever.  (A
        # salted-hash router would shuffle shards every process restart and
        # silently break resharding-free replay.)
        router = ShardRouter(4)
        expected = {key: zlib.crc32(key.encode()) % 4
                    for key in ("zipf-0", "zipf-1", "shared-17", "private-3-2")}
        assert {key: router.shard_of(key) for key in expected} == expected
        assert router.shard_of("zipf-0") == 1  # literal pin, not derived

    def test_single_shard_routes_everything_to_zero(self):
        router = ShardRouter(1)
        assert all(router.shard_of(f"k{i}") == 0 for i in range(50))

    def test_overrides_pin_keys(self):
        router = ShardRouter(4, overrides={"hot": 2})
        assert router.shard_of("hot") == 2

    def test_invalid_override_raises(self):
        with pytest.raises(ValueError):
            ShardRouter(2, overrides={"k": 5})
        with pytest.raises(ValueError):
            ShardRouter(0)

    @given(key=st.text(min_size=1, max_size=40),
           shards=st.integers(min_value=1, max_value=64))
    def test_every_key_routes_to_exactly_one_shard(self, key, shards):
        router = ShardRouter(shards)
        owners = [shard for shard in range(shards)
                  if router.shard_of(key) == shard]
        assert len(owners) == 1
        assert 0 <= owners[0] < shards


class TestStreams:
    def test_scripted_workload_replays_in_order(self):
        config = ShardedConfig(clients=1, commands_per_client=5,
                               workload=WorkloadConfig(conflict_rate=0.5))
        (_, commands), = generate_streams(config)
        workload = ScriptedWorkload(commands)
        assert [workload.next_command() for _ in range(5)] == commands
        with pytest.raises(IndexError):
            workload.next_command()

    def test_streams_independent_of_shard_count(self):
        # A client's global stream must not depend on how many shards exist:
        # a 1-shard run and an 8-shard run submit exactly the same commands.
        one = generate_streams(ShardedConfig(shards=1, clients=4, commands_per_client=6))
        eight = generate_streams(ShardedConfig(shards=8, clients=4, commands_per_client=6))
        assert one == eight

    def test_route_streams_partitions_without_loss(self):
        config = ShardedConfig(clients=5, commands_per_client=8,
                               workload=ZipfWorkloadConfig(s=1.0, key_space=50))
        streams = generate_streams(config)
        per_shard = route_streams(streams, ShardRouter(4))
        all_ids = {cmd.command_id for _, cmds in streams for cmd in cmds}
        routed_ids = [cmd.command_id for shard in per_shard
                      for _, cmds in shard for cmd in cmds]
        assert len(routed_ids) == len(all_ids)  # no duplicates across shards
        assert set(routed_ids) == all_ids       # no losses
        router = ShardRouter(4)
        for index, shard in enumerate(per_shard):
            for _, cmds in shard:
                assert all(router.shard_of(cmd.key) == index for cmd in cmds)


def _small_config(**overrides) -> ShardedConfig:
    defaults = dict(protocol="caesar", shards=2, sites=5, replicas_per_site=1,
                    clients=4, commands_per_client=3,
                    workload=ZipfWorkloadConfig(s=0.8, key_space=40, hot_keys=4),
                    seed=7)
    defaults.update(overrides)
    return ShardedConfig(**defaults)


class TestShardedDeterminism:
    def test_parallel_byte_identical_to_serial(self):
        config = _small_config()
        serial = run_sharded(config, serial=True)
        parallel = run_sharded(config, workers=2)
        as_json = lambda result: json.dumps(result.as_dict(), sort_keys=True)  # noqa: E731
        assert as_json(serial) == as_json(parallel)
        # The decided sets themselves (not just counts) must match per shard.
        assert ([shard["decided_set_crc32"] for shard in serial.shards]
                == [shard["decided_set_crc32"] for shard in parallel.shards])

    def test_rerun_is_byte_identical(self):
        config = _small_config()
        first = run_sharded(config, serial=True)
        second = run_sharded(config, serial=True)
        assert json.dumps(first.as_dict(), sort_keys=True) == \
            json.dumps(second.as_dict(), sort_keys=True)


class TestShardedAcceptance:
    def test_wan_zipf_run_decides_everything(self):
        # The acceptance configuration: >= 4 shards, >= 20 WAN sites per
        # group, zipfian skew.  Every submitted command must decide on every
        # replica of its shard with zero conflict-order violations.
        config = _small_config(shards=4, sites=20, clients=6,
                               commands_per_client=4,
                               workload=ZipfWorkloadConfig(s=0.99, key_space=100,
                                                           hot_keys=8))
        result = run_sharded(config, serial=True)
        assert result.total_submitted == 24
        assert result.all_decided
        assert result.total_undecided == 0
        assert all(shard["violations"] == 0 for shard in result.shards)
        rates = result.per_shard_conflict_rates()
        assert sorted(rates) == list(range(4))
        assert all(0.0 <= rate <= 1.0 for rate in rates.values())
        assert result.aggregate_throughput > 0
        assert result.bottleneck_makespan_ms > 0

    def test_replicas_per_site_scales_the_groups(self):
        config = _small_config(shards=2, sites=4, replicas_per_site=3,
                               clients=3, commands_per_client=2)
        result = run_sharded(config, serial=True)
        assert all(shard["replicas"] == 12 for shard in result.shards)
        assert result.all_decided and result.total_violations == 0

    def test_router_overrides_reach_the_run(self):
        # Pin every key to shard 0: shard 1 must stay empty.
        config = _small_config(shards=2, clients=3, commands_per_client=2)
        keys = {cmd.key for _, cmds in generate_streams(config) for cmd in cmds}
        config.router_overrides = {key: 0 for key in keys}
        result = run_sharded(config, serial=True)
        assert result.shards[0]["submitted"] == 6
        assert result.shards[1]["submitted"] == 0


class TestCrossShardStub:
    def test_shards_for_lists_distinct_owners(self):
        coordinator = CrossShardCoordinator(ShardRouter(4, overrides={"a": 1, "b": 3,
                                                                      "c": 1}))
        assert coordinator.shards_for(["a", "b", "c"]) == [1, 3]

    def test_submit_is_not_implemented(self):
        coordinator = CrossShardCoordinator(ShardRouter(2, overrides={"a": 0, "b": 1}))
        with pytest.raises(NotImplementedError, match="2PC"):
            coordinator.submit(None, ["a", "b"])


class TestPerSiteAggregation:
    def test_multi_replica_sites_pool_their_samples(self):
        # Regression: the per-site summary used to keep only the last node's
        # numbers when several nodes share a site.
        topology = Topology(sites=["a", "b", "a"], rtt_ms={("a", "b"): 10.0})
        metrics = MetricsCollector()
        metrics.record_command(origin=0, proposer=0, latency_ms=10.0,
                               completed_at=1.0, key="k1")
        metrics.record_command(origin=2, proposer=2, latency_ms=30.0,
                               completed_at=2.0, key="k2")
        metrics.record_command(origin=1, proposer=1, latency_ms=50.0,
                               completed_at=3.0, key="k3")
        per_site = per_site_latency_summaries(topology, metrics)
        assert per_site["a"].count == 2
        assert per_site["a"].mean == pytest.approx(20.0)
        assert per_site["b"].count == 1

    def test_cluster_replicas_at_returns_all(self):
        topology = with_replicas_per_site(uniform_topology(3), 2)
        cluster = build_cluster(ClusterConfig(topology=topology))
        replicas = cluster.replicas_at("site0")
        assert [replica.node_id for replica in replicas] == [0, 3]
        with pytest.raises(ValueError):
            cluster.replica_at("site0")


class TestConflictAccounting:
    def test_per_key_counts_and_conflict_rate(self):
        metrics = MetricsCollector()
        for key in ("a", "b", "a", "c", "a"):
            metrics.record_command(origin=0, proposer=0, latency_ms=1.0,
                                   completed_at=1.0, key=key)
        assert metrics.per_key_counts() == {"a": 3, "b": 1, "c": 1}
        # 3 of 5 samples touched a contended key.
        assert metrics.conflict_rate() == pytest.approx(0.6)

    def test_conflict_rate_empty(self):
        assert MetricsCollector().conflict_rate() == 0.0
